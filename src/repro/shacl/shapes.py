"""SHACL-lite shapes: a deterministic dict/JSON shape language.

The subset covers the constraint components the validation workload
needs (W3C SHACL names in ``camelCase`` on the wire):

* **Targets** -- ``targetClass`` (focus nodes are instances of a class)
  or ``targetSubjectsOf`` (focus nodes are subjects of a predicate);
  exactly one per shape.
* **Cardinality** -- ``minCount`` / ``maxCount`` over the *distinct*
  value set of a property path.
* **Value type** -- ``class`` (every value is an instance of a class),
  ``datatype`` (every value is a literal of a datatype; plain literals
  count as ``xsd:string``, per SHACL), ``nodeKind`` (``IRI`` /
  ``Literal`` / ``BlankNode``).
* **Value set** -- ``hasValue`` (the value set contains a given term),
  ``in`` (every value is drawn from a given list).

Terms inside ``hasValue`` / ``in`` are explicit JSON objects --
``{"iri": "..."}`` or ``{"literal": "...", "datatype": "...",
"language": "..."}`` -- never guessed from bare strings.  Unknown keys
anywhere are hard errors: a typoed constraint must fail loudly, not
validate vacuously.

The dict form is the *source of truth*: :meth:`ShapeSet.to_payload`
re-emits it deterministically (sorted keys under ``canonical_json``),
so a shape set round-trips byte-identically -- the property the fixture
corpus under ``examples/shapes/`` pins.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.rdf.terms import Literal, Term, URI
from repro.rdf.vocab import RDF

#: Allowed ``nodeKind`` constraint values.
NODE_KINDS = ("BlankNode", "IRI", "Literal")

#: Shape names feed compiled-query ids and report keys; keep them to a
#: safe token so every downstream rendering is unambiguous.
_NAME_RE = re.compile(r"^[A-Za-z][A-Za-z0-9_.-]*$")


class ShaclError(ValueError):
    """A shape definition is malformed."""


def term_from_payload(payload: Any, where: str) -> Term:
    """Decode one explicit term object (``iri`` or ``literal`` form)."""
    if not isinstance(payload, dict):
        raise ShaclError(
            "%s: terms must be objects like {'iri': ...} or "
            "{'literal': ...}, got %r" % (where, payload)
        )
    unknown = sorted(set(payload) - {"iri", "literal", "datatype", "language"})
    if unknown:
        raise ShaclError(
            "%s: unknown term keys: %s" % (where, ", ".join(unknown))
        )
    if "iri" in payload:
        if len(payload) != 1:
            raise ShaclError(
                "%s: an iri term takes no other keys" % where
            )
        return URI(_require_str(payload["iri"], where + ".iri"))
    if "literal" not in payload:
        raise ShaclError(
            "%s: a term needs either 'iri' or 'literal'" % where
        )
    datatype = payload.get("datatype")
    language = payload.get("language")
    try:
        return Literal(
            _require_str(payload["literal"], where + ".literal"),
            datatype=(
                URI(_require_str(datatype, where + ".datatype"))
                if datatype is not None
                else None
            ),
            language=(
                _require_str(language, where + ".language")
                if language is not None
                else None
            ),
        )
    except ValueError as exc:
        raise ShaclError("%s: %s" % (where, exc)) from exc


def term_to_payload(term: Term) -> Dict[str, Any]:
    """The explicit JSON object for one term (inverse of the decoder)."""
    if isinstance(term, URI):
        return {"iri": term.value}
    if isinstance(term, Literal):
        payload: Dict[str, Any] = {"literal": term.lexical}
        if term.datatype is not None:
            payload["datatype"] = term.datatype.value
        if term.language is not None:
            payload["language"] = term.language
        return payload
    raise ShaclError("blank nodes cannot appear in shape definitions")


def _require_str(value: Any, where: str) -> str:
    if not isinstance(value, str) or not value:
        raise ShaclError("%s must be a non-empty string" % where)
    return value


def _require_count(value: Any, where: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int) or value < 0:
        raise ShaclError("%s must be a non-negative integer" % where)
    return value


@dataclass(frozen=True)
class PropertyShape:
    """One constrained property path of a node shape."""

    path: str  # predicate IRI (bare, not bracketed)
    min_count: int = 0
    max_count: Optional[int] = None
    class_: Optional[str] = None  # value-class IRI
    datatype: Optional[str] = None  # literal datatype IRI
    node_kind: Optional[str] = None  # one of NODE_KINDS
    has_value: Optional[Term] = None
    in_values: Tuple[Term, ...] = ()

    _KEYS = frozenset(
        {
            "path",
            "minCount",
            "maxCount",
            "class",
            "datatype",
            "nodeKind",
            "hasValue",
            "in",
        }
    )

    @classmethod
    def from_payload(cls, payload: Any, where: str) -> "PropertyShape":
        if not isinstance(payload, dict):
            raise ShaclError("%s must be an object" % where)
        unknown = sorted(set(payload) - cls._KEYS)
        if unknown:
            raise ShaclError(
                "%s: unknown constraint keys: %s"
                % (where, ", ".join(unknown))
            )
        if "path" not in payload:
            raise ShaclError("%s: 'path' is required" % where)
        min_count = (
            _require_count(payload["minCount"], where + ".minCount")
            if "minCount" in payload
            else 0
        )
        max_count = (
            _require_count(payload["maxCount"], where + ".maxCount")
            if "maxCount" in payload
            else None
        )
        if max_count is not None and max_count < min_count:
            raise ShaclError(
                "%s: maxCount (%d) below minCount (%d)"
                % (where, max_count, min_count)
            )
        node_kind = payload.get("nodeKind")
        if node_kind is not None and node_kind not in NODE_KINDS:
            raise ShaclError(
                "%s.nodeKind must be one of %s, got %r"
                % (where, "/".join(NODE_KINDS), node_kind)
            )
        in_values: Tuple[Term, ...] = ()
        if "in" in payload:
            if not isinstance(payload["in"], list) or not payload["in"]:
                raise ShaclError(
                    "%s.in must be a non-empty list of terms" % where
                )
            in_values = tuple(
                term_from_payload(item, "%s.in[%d]" % (where, index))
                for index, item in enumerate(payload["in"])
            )
        return cls(
            path=_require_str(payload["path"], where + ".path"),
            min_count=min_count,
            max_count=max_count,
            class_=(
                _require_str(payload["class"], where + ".class")
                if "class" in payload
                else None
            ),
            datatype=(
                _require_str(payload["datatype"], where + ".datatype")
                if "datatype" in payload
                else None
            ),
            node_kind=node_kind,
            has_value=(
                term_from_payload(payload["hasValue"], where + ".hasValue")
                if "hasValue" in payload
                else None
            ),
            in_values=in_values,
        )

    def to_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"path": self.path}
        if self.min_count:
            payload["minCount"] = self.min_count
        if self.max_count is not None:
            payload["maxCount"] = self.max_count
        if self.class_ is not None:
            payload["class"] = self.class_
        if self.datatype is not None:
            payload["datatype"] = self.datatype
        if self.node_kind is not None:
            payload["nodeKind"] = self.node_kind
        if self.has_value is not None:
            payload["hasValue"] = term_to_payload(self.has_value)
        if self.in_values:
            payload["in"] = [term_to_payload(t) for t in self.in_values]
        return payload


@dataclass(frozen=True)
class NodeShape:
    """A named shape: one target declaration plus property constraints."""

    name: str
    target_class: Optional[str] = None
    target_subjects_of: Optional[str] = None
    properties: Tuple[PropertyShape, ...] = ()

    _KEYS = frozenset(
        {"name", "targetClass", "targetSubjectsOf", "properties"}
    )

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ShaclError(
                "shape name %r must match %s"
                % (self.name, _NAME_RE.pattern)
            )
        declared = [
            t
            for t in (self.target_class, self.target_subjects_of)
            if t is not None
        ]
        if len(declared) != 1:
            raise ShaclError(
                "shape %r needs exactly one of targetClass / "
                "targetSubjectsOf" % self.name
            )

    @classmethod
    def from_payload(cls, payload: Any, where: str) -> "NodeShape":
        if not isinstance(payload, dict):
            raise ShaclError("%s must be an object" % where)
        unknown = sorted(set(payload) - cls._KEYS)
        if unknown:
            raise ShaclError(
                "%s: unknown shape keys: %s" % (where, ", ".join(unknown))
            )
        if "name" not in payload:
            raise ShaclError("%s: 'name' is required" % where)
        name = _require_str(payload["name"], where + ".name")
        raw_properties = payload.get("properties", [])
        if not isinstance(raw_properties, list):
            raise ShaclError("%s.properties must be a list" % where)
        properties = tuple(
            PropertyShape.from_payload(
                item, "%s.properties[%d]" % (where, index)
            )
            for index, item in enumerate(raw_properties)
        )
        return cls(
            name=name,
            target_class=(
                _require_str(payload["targetClass"], where + ".targetClass")
                if "targetClass" in payload
                else None
            ),
            target_subjects_of=(
                _require_str(
                    payload["targetSubjectsOf"], where + ".targetSubjectsOf"
                )
                if "targetSubjectsOf" in payload
                else None
            ),
            properties=properties,
        )

    def to_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"name": self.name}
        if self.target_class is not None:
            payload["targetClass"] = self.target_class
        if self.target_subjects_of is not None:
            payload["targetSubjectsOf"] = self.target_subjects_of
        if self.properties:
            payload["properties"] = [
                prop.to_payload() for prop in self.properties
            ]
        return payload


@dataclass(frozen=True)
class ShapeSet:
    """An ordered collection of uniquely-named node shapes."""

    shapes: Tuple[NodeShape, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.shapes:
            raise ShaclError("a shape set needs at least one shape")
        seen: List[str] = []
        for shape in self.shapes:
            if shape.name in seen:
                raise ShaclError("duplicate shape name %r" % shape.name)
            seen.append(shape.name)

    def __len__(self) -> int:
        return len(self.shapes)

    def __iter__(self):
        return iter(self.shapes)

    @classmethod
    def from_payload(cls, payload: Any) -> "ShapeSet":
        if not isinstance(payload, dict):
            raise ShaclError("a shape set must be a JSON object")
        unknown = sorted(set(payload) - {"shapes"})
        if unknown:
            raise ShaclError(
                "unknown shape-set keys: %s" % ", ".join(unknown)
            )
        raw = payload.get("shapes")
        if not isinstance(raw, list) or not raw:
            raise ShaclError("'shapes' must be a non-empty list")
        return cls(
            shapes=tuple(
                NodeShape.from_payload(item, "shapes[%d]" % index)
                for index, item in enumerate(raw)
            )
        )

    @classmethod
    def from_json(cls, text: str) -> "ShapeSet":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ShaclError("shape set is not valid JSON: %s" % exc) from exc
        return cls.from_payload(payload)

    def to_payload(self) -> Dict[str, Any]:
        return {"shapes": [shape.to_payload() for shape in self.shapes]}

    def to_json(self) -> str:
        """Pretty, byte-stable JSON (the ``examples/shapes/*.json`` form)."""
        return (
            json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n"
        )


def load_shapes_file(path: str) -> ShapeSet:
    """Read one shape-set JSON file (:class:`ShaclError` on bad content)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise ShaclError("cannot read shapes file: %s" % exc) from exc
    return ShapeSet.from_json(text)


def default_shapes_for(
    graph, max_classes: int = 3, max_properties: int = 2
) -> ShapeSet:
    """Derive a plausible shape set from *graph* itself.

    For the ``max_classes`` most-populated classes (ties broken by IRI),
    emit a ``targetClass`` shape constraining the ``max_properties``
    most-used predicates of its instances to ``minCount 1``.  Every
    predicate referenced exists in the graph, so the compiled queries
    pass the admission linter (QL004) -- this is what the ``--workload
    shacl`` loadtest profile runs when no shapes file is given.
    """
    class_counts: Dict[str, int] = {}
    for triple in graph.triples((None, RDF.type, None)):
        if isinstance(triple.object, URI):
            value = triple.object.value
            class_counts[value] = class_counts.get(value, 0) + 1
    ranked = sorted(class_counts.items(), key=lambda kv: (-kv[1], kv[0]))
    shapes: List[NodeShape] = []
    for index, (cls_iri, _count) in enumerate(ranked[:max_classes]):
        members = graph.instances_of(URI(cls_iri))
        predicate_counts: Dict[str, int] = {}
        for member in sorted(members, key=lambda t: t.sort_key()):
            for triple in graph.triples((member, None, None)):
                if triple.predicate == RDF.type:
                    continue
                value = triple.predicate.value
                predicate_counts[value] = predicate_counts.get(value, 0) + 1
        top = sorted(
            predicate_counts.items(), key=lambda kv: (-kv[1], kv[0])
        )[:max_properties]
        shapes.append(
            NodeShape(
                name="Shape%d" % index,
                target_class=cls_iri,
                properties=tuple(
                    PropertyShape(path=path, min_count=1)
                    for path, _ in top
                ),
            )
        )
    if not shapes:
        raise ShaclError(
            "graph has no rdf:type triples to derive shapes from"
        )
    return ShapeSet(shapes=tuple(shapes))
