"""SHACL-lite validation compiled to SPARQL (docs/SHACL.md).

A :class:`ShapeSet` (NodeShape/PropertyShape, parsed from a
deterministic dict/JSON form) is compiled into many small SELECT/ASK
queries -- one target query and one values query per shape plus one
class probe per distinct value under an ``sh:class`` constraint -- and a
:class:`ShaclValidator` runs them through any executor (a bare engine, a
:class:`~repro.server.service.QueryService`, or a harvested local
subgraph) and folds the answers into a byte-deterministic
:class:`ValidationReport`.

Validation is deliberately a *bursty, many-small-queries* workload: each
compiled query is billed and admitted individually, which exercises the
plan cache and fair-share admission very differently from the one-shot
analytic benchmarks (the ROADMAP's open item; grounded in the shaclAPI
exemplar of SNIPPETS.md).
"""

from repro.shacl.shapes import (
    NodeShape,
    PropertyShape,
    ShaclError,
    ShapeSet,
    default_shapes_for,
    load_shapes_file,
)
from repro.shacl.compile import (
    CompiledQuery,
    class_probe,
    compile_shape,
    compile_shape_set,
    harvest_queries,
)
from repro.shacl.report import REPORT_FORMAT_VERSION, ValidationReport
from repro.shacl.validator import (
    EngineExecutor,
    LocalGraphExecutor,
    ServiceExecutor,
    ShaclValidator,
    ValidationExecutionError,
)

__all__ = [
    "CompiledQuery",
    "EngineExecutor",
    "LocalGraphExecutor",
    "NodeShape",
    "PropertyShape",
    "REPORT_FORMAT_VERSION",
    "ServiceExecutor",
    "ShaclError",
    "ShaclValidator",
    "ShapeSet",
    "ValidationExecutionError",
    "ValidationReport",
    "class_probe",
    "compile_shape",
    "compile_shape_set",
    "default_shapes_for",
    "harvest_queries",
    "load_shapes_file",
]
