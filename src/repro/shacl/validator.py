"""The SHACL-lite validator: fan out compiled queries, fold conformance.

A :class:`ShaclValidator` owns no execution strategy of its own -- it
drives one of three executors, all of which speak the *canonical wire
form* (:func:`repro.server.protocol.canonical_result`), so the report
body is identical no matter where the queries ran:

* :class:`EngineExecutor` -- a bare warmed engine (any of the survey's
  systems); the byte-identity acceptance check runs one of these per
  engine.
* :class:`ServiceExecutor` -- a :class:`~repro.server.service.QueryService`;
  every compiled query is submitted as its own request, so it is linted,
  admitted, billed, plan-cached, and deadline-checked individually --
  validation as a real serving workload.
* :class:`LocalGraphExecutor` -- the reference algebra evaluator over a
  plain :class:`~repro.rdf.graph.RDFGraph`; what federated remote-first
  validation runs over a harvested :class:`~repro.federation.Subgraph`.

Class probes (``ASK { <value> rdf:type <class> }``) are generated
per *distinct* URI value during validation and memoized per run, so the
same membership question is never executed twice in one validate() call
even when shapes overlap.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.rdf.ntriples import NTriplesParseError, _parse_term
from repro.rdf.terms import BNode, Literal, Term, URI
from repro.shacl.compile import (
    CompiledQuery,
    class_probe,
    target_query,
    values_query,
)
from repro.shacl.report import ValidationReport
from repro.shacl.shapes import NodeShape, PropertyShape, ShapeSet
from repro.server.protocol import canonical_json, canonical_result
from repro.spark.deadline import cost_units

_XSD_STRING = "http://www.w3.org/2001/XMLSchema#string"
_RDF_LANG_STRING = (
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString"
)


class ValidationExecutionError(RuntimeError):
    """A compiled query could not be executed (rejected, deadline, ...)."""


def term_from_n3(text: str) -> Term:
    """Decode one N3-rendered term from a canonical wire row."""
    try:
        term, end = _parse_term(text, 0, 1)
    except NTriplesParseError as exc:
        raise ValueError("not an N3 term: %r (%s)" % (text, exc)) from exc
    if text[end:].strip():
        raise ValueError("trailing content after N3 term: %r" % text)
    return term


def node_kind_of(term: Term) -> str:
    if isinstance(term, URI):
        return "IRI"
    if isinstance(term, BNode):
        return "BlankNode"
    return "Literal"


def effective_datatype(literal: Literal) -> str:
    """The literal's datatype IRI under SHACL conventions.

    Plain literals count as ``xsd:string``; language-tagged literals as
    ``rdf:langString``.
    """
    if literal.language is not None:
        return _RDF_LANG_STRING
    if literal.datatype is not None:
        return literal.datatype.value
    return _XSD_STRING


class EngineExecutor:
    """Run compiled queries on one warmed engine instance."""

    def __init__(self, engine) -> None:
        self.engine = engine
        self.label = engine.profile.name

    def run(
        self, compiled: CompiledQuery
    ) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        from repro.sparql.parser import parse_sparql

        plan = parse_sparql(compiled.text)
        before = self.engine.ctx.metrics.snapshot()
        result = self.engine.execute(plan)
        units = cost_units(self.engine.ctx.metrics.snapshot() - before)
        payload = canonical_result(result, plan)
        return payload, {
            "id": compiled.id,
            "kind": compiled.kind,
            "status": "ok",
            "cache": "none",
            "units": units,
            "engine": self.label,
        }


class ServiceExecutor:
    """Submit each compiled query as its own billed service request."""

    def __init__(
        self,
        service,
        tenant: str = "shacl",
        deadline: Optional[int] = None,
        id_prefix: str = "",
    ) -> None:
        self.service = service
        self.tenant = tenant
        self.deadline = deadline
        self.id_prefix = id_prefix
        self.label = "service:%s" % (
            "routed" if service.route_enabled else service.engine_name
        )

    def run(
        self, compiled: CompiledQuery
    ) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        import json

        from repro.server.service import QueryRequest

        outcome = self.service.submit(
            QueryRequest(
                text=compiled.text,
                tenant=self.tenant,
                id=self.id_prefix + compiled.id,
                deadline=self.deadline,
            )
        )
        if outcome.status != "ok":
            raise ValidationExecutionError(
                "%s: %s%s"
                % (
                    compiled.id,
                    outcome.status,
                    (": " + outcome.error) if outcome.error else "",
                )
            )
        return json.loads(outcome.payload), {
            "id": compiled.id,
            "kind": compiled.kind,
            "status": outcome.status,
            "cache": outcome.cache,
            "units": outcome.service_units,
            "engine": outcome.engine or self.service.engine_name,
        }


class LocalGraphExecutor:
    """The reference algebra evaluator over a plain local graph."""

    label = "local"

    def __init__(self, graph) -> None:
        self.graph = graph

    def run(
        self, compiled: CompiledQuery
    ) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        from repro.sparql.algebra import evaluate
        from repro.sparql.parser import parse_sparql

        plan = parse_sparql(compiled.text)
        payload = canonical_result(evaluate(plan, self.graph), plan)
        return payload, {
            "id": compiled.id,
            "kind": compiled.kind,
            "status": "ok",
            "cache": "none",
            "units": 0,
            "engine": self.label,
        }


class ShaclValidator:
    """Validate a shape set through one executor (see module docstring)."""

    def __init__(self, executor, tracer=None) -> None:
        self.executor = executor
        self.tracer = tracer

    def validate(self, shapes: ShapeSet) -> ValidationReport:
        records: List[Dict[str, Any]] = []
        violations: List[Dict[str, str]] = []
        per_shape: Dict[str, Dict[str, int]] = {}
        probe_cache: Dict[Tuple[str, str], bool] = {}

        def run(compiled: CompiledQuery) -> Dict[str, Any]:
            payload, record = self.executor.run(compiled)
            records.append(record)
            return payload

        for shape in shapes:
            if self.tracer is not None and self.tracer.enabled:
                with self.tracer.span("validate", name=shape.name) as span:
                    found = self._validate_shape(shape, run, probe_cache)
                    if span is not None:
                        span.attrs["focus_nodes"] = found[0]
                        span.attrs["violations"] = len(found[1])
            else:
                found = self._validate_shape(shape, run, probe_cache)
            focus_count, shape_violations = found
            per_shape[shape.name] = {
                "focus_nodes": focus_count,
                "violations": len(shape_violations),
            }
            violations.extend(shape_violations)

        violations.sort(
            key=lambda v: (
                v["shape"],
                v["focus"],
                v["path"],
                v["constraint"],
                v["value"],
            )
        )
        result_hits = sum(1 for r in records if r["cache"] == "result")
        report = ValidationReport(
            conforms=not violations,
            per_shape=per_shape,
            violations=violations,
            queries=len(records),
            accounting={
                "executor": self.executor.label,
                "units": sum(r["units"] for r in records),
                "executed": len(records),
                "cache_hits": result_hits,
                "result_hits": result_hits,
                "plan_hits": sum(
                    1 for r in records if r["cache"] == "plan"
                ),
                "records": records,
            },
        )
        return report

    def _validate_shape(
        self, shape: NodeShape, run, probe_cache
    ) -> Tuple[int, List[Dict[str, str]]]:
        violations: List[Dict[str, str]] = []
        target = run(target_query(shape))
        focuses = sorted({row[0] for row in target["rows"]})
        for index, prop in enumerate(shape.properties):
            values = run(values_query(shape, index))
            pairs = sorted({(row[0], row[1]) for row in values["rows"]})
            by_focus: Dict[str, List[str]] = {}
            for focus, value in pairs:
                by_focus.setdefault(focus, []).append(value)
            violations.extend(
                self._check_property(
                    shape, index, prop, focuses, by_focus, run, probe_cache
                )
            )
        return len(focuses), violations

    def _check_property(
        self,
        shape: NodeShape,
        index: int,
        prop: PropertyShape,
        focuses: List[str],
        by_focus: Dict[str, List[str]],
        run,
        probe_cache: Dict[Tuple[str, str], bool],
    ) -> List[Dict[str, str]]:
        violations: List[Dict[str, str]] = []

        def violation(focus: str, constraint: str, message: str, value=""):
            violations.append(
                {
                    "shape": shape.name,
                    "focus": focus,
                    "path": prop.path,
                    "constraint": constraint,
                    "value": value,
                    "message": message,
                }
            )

        # Cardinality and hasValue are per-focus properties of the
        # (deduplicated) value set.
        for focus in focuses:
            values = by_focus.get(focus, [])
            count = len(values)
            if count < prop.min_count:
                violation(
                    focus,
                    "minCount",
                    "expected at least %d value(s), found %d"
                    % (prop.min_count, count),
                )
            if prop.max_count is not None and count > prop.max_count:
                violation(
                    focus,
                    "maxCount",
                    "expected at most %d value(s), found %d"
                    % (prop.max_count, count),
                )
            if prop.has_value is not None:
                expected = prop.has_value.n3()
                if expected not in values:
                    violation(
                        focus,
                        "hasValue",
                        "required value missing",
                        expected,
                    )

        # Per-value checks; class membership for URI values is deferred
        # to probes so each distinct question is asked exactly once.
        allowed = {t.n3() for t in prop.in_values}
        probe_values: List[str] = []
        for focus in focuses:
            for value in by_focus.get(focus, []):
                term = term_from_n3(value)
                kind = node_kind_of(term)
                if prop.node_kind is not None and kind != prop.node_kind:
                    violation(
                        focus,
                        "nodeKind",
                        "expected %s, got %s" % (prop.node_kind, kind),
                        value,
                    )
                if prop.datatype is not None:
                    if not isinstance(term, Literal):
                        violation(
                            focus,
                            "datatype",
                            "expected a literal of <%s>, got %s"
                            % (prop.datatype, kind),
                            value,
                        )
                    elif effective_datatype(term) != prop.datatype:
                        violation(
                            focus,
                            "datatype",
                            "expected datatype <%s>, got <%s>"
                            % (prop.datatype, effective_datatype(term)),
                            value,
                        )
                if prop.in_values and value not in allowed:
                    violation(
                        focus, "in", "value outside the allowed list", value
                    )
                if prop.class_ is not None:
                    if isinstance(term, URI):
                        if value not in probe_values:
                            probe_values.append(value)
                    else:
                        violation(
                            focus,
                            "class",
                            "a %s is never an instance of <%s>"
                            % (kind.lower(), prop.class_),
                            value,
                        )

        if prop.class_ is not None:
            failed = set()
            for value in sorted(probe_values):
                key = (value, prop.class_)
                if key not in probe_cache:
                    probe = class_probe(
                        shape, index, term_from_n3(value), prop.class_
                    )
                    probe_cache[key] = bool(run(probe)["value"])
                if not probe_cache[key]:
                    failed.add(value)
            for focus in focuses:
                for value in by_focus.get(focus, []):
                    if value in failed:
                        violation(
                            focus,
                            "class",
                            "not an instance of <%s>" % prop.class_,
                            value,
                        )
        return violations


def canonical_payload_bytes(payload: Dict[str, Any]) -> str:
    """Canonical JSON of a wire payload (shared test helper)."""
    return canonical_json(payload)
