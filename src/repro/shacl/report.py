"""The byte-deterministic validation report.

The report body (:meth:`ValidationReport.to_payload`) is a pure function
of the shape set and the graph *content*: it never mentions the engine,
the executor, cache states, or cost units, so validating the same graph
through SPARQLGX, S2RDF, a routed service, or a harvested local subgraph
produces **identical bytes** (the acceptance property
``tests/shacl/test_validator.py`` pins across engines).

Execution accounting -- per-query billing, cache tiers, service units --
is deliberately carried *next to* the report (:attr:`accounting`), not
inside it: billing is a property of where the queries ran.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List

#: Bumped on incompatible report-layout changes.
REPORT_FORMAT_VERSION = 1


@dataclass
class ValidationReport:
    """Aggregated per-focus-node conformance for one shape set."""

    conforms: bool = True
    #: Per-shape summaries keyed by shape name:
    #: ``{"focus_nodes": n, "violations": m}``.
    per_shape: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Sorted violation records (shape, focus, path, constraint, value,
    #: message) -- the deterministic heart of the report.
    violations: List[Dict[str, str]] = field(default_factory=list)
    #: Compiled queries executed (target + values + class probes).
    queries: int = 0
    #: Execution accounting (engine label, units, cache tiers, per-query
    #: records).  NOT part of :meth:`to_payload` -- see module docstring.
    accounting: Dict[str, Any] = field(default_factory=dict)

    @property
    def focus_nodes(self) -> int:
        return sum(
            entry["focus_nodes"] for entry in self.per_shape.values()
        )

    def to_payload(self) -> Dict[str, Any]:
        """The canonical, executor-independent report body."""
        return {
            "version": REPORT_FORMAT_VERSION,
            "conforms": self.conforms,
            "shapes": len(self.per_shape),
            "focus_nodes": self.focus_nodes,
            "queries": self.queries,
            "per_shape": {
                name: dict(entry)
                for name, entry in sorted(self.per_shape.items())
            },
            "violations": [dict(v) for v in self.violations],
        }

    def to_json(self) -> str:
        """Pretty, byte-stable JSON of the report body."""
        return json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n"

    def render(self) -> str:
        """Human-readable text (the CLI's default output)."""
        lines = [
            "conforms: %s" % ("yes" if self.conforms else "NO"),
            "shapes: %d, focus nodes: %d, compiled queries: %d"
            % (len(self.per_shape), self.focus_nodes, self.queries),
        ]
        for name, entry in sorted(self.per_shape.items()):
            lines.append(
                "  %s: %d focus node(s), %d violation(s)"
                % (name, entry["focus_nodes"], entry["violations"])
            )
        for violation in self.violations:
            value = violation.get("value", "")
            lines.append(
                "violation: [%s] %s %s %s%s"
                % (
                    violation["shape"],
                    violation["focus"],
                    violation["constraint"],
                    violation["message"],
                    (" (value %s)" % value) if value else "",
                )
            )
        accounting = self.accounting
        if accounting:
            lines.append(
                "executed via %s: %d unit(s), cache hits %d/%d"
                % (
                    accounting.get("executor", "?"),
                    accounting.get("units", 0),
                    accounting.get("cache_hits", 0),
                    accounting.get("executed", 0),
                )
            )
        return "\n".join(lines)
