"""Shape -> SPARQL compilation: targets, values, class probes, harvests.

Every shape compiles to a small, fixed family of queries:

* **target** -- ``SELECT ?focus`` for the shape's focus nodes: instances
  of ``targetClass``, or subjects of ``targetSubjectsOf``.
* **values** (one per property shape) -- ``SELECT ?focus ?value`` joining
  the target pattern with the property path, so every (focus, value)
  pair arrives in one round trip per constrained property.
* **class probe** (one per *distinct* URI value under an ``sh:class``
  constraint) -- ``ASK { <value> rdf:type <class> }``; generated during
  validation because the value set is data-dependent.  These probes are
  what makes validation genuinely bursty.
* **harvest** (federation) -- ``CONSTRUCT`` queries that extract exactly
  the triples the compiled SELECT/ASK queries touch, so a harvested
  subgraph validates identically to the remote graph (the differential
  property ``tests/federation/test_subgraph.py`` pins).

Only pure-BGP SPARQL is emitted (no DISTINCT/FILTER): every engine in
the survey accepts the whole family, and deduplication happens in the
validator over canonical wire rows instead.  Compiled text is a pure
function of the shape set -- the fixture corpus pins it byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.rdf.terms import Term, URI
from repro.rdf.vocab import RDF
from repro.shacl.shapes import NodeShape, ShapeSet

#: The variable names every compiled query uses (report-stable).
FOCUS_VAR = "?focus"
VALUE_VAR = "?value"


@dataclass(frozen=True)
class CompiledQuery:
    """One SPARQL query compiled from a shape."""

    shape: str  # owning shape name
    id: str  # deterministic id ("shacl/<shape>/<role>")
    kind: str  # target | values | class | harvest
    text: str  # the SPARQL text submitted downstream

    def describe(self) -> str:
        return "%s [%s] %s" % (self.id, self.kind, self.text)


def _iri(value: str) -> str:
    return URI(value).n3()


def _target_pattern(shape: NodeShape, focus: str = FOCUS_VAR) -> str:
    """The BGP fragment selecting the shape's focus nodes."""
    if shape.target_class is not None:
        return "%s %s %s" % (focus, RDF.type.n3(), _iri(shape.target_class))
    return "%s %s ?__target" % (focus, _iri(shape.target_subjects_of))


def target_query(shape: NodeShape) -> CompiledQuery:
    return CompiledQuery(
        shape=shape.name,
        id="shacl/%s/target" % shape.name,
        kind="target",
        text="SELECT %s WHERE { %s }" % (FOCUS_VAR, _target_pattern(shape)),
    )


def values_query(shape: NodeShape, index: int) -> CompiledQuery:
    prop = shape.properties[index]
    return CompiledQuery(
        shape=shape.name,
        id="shacl/%s/p%d/values" % (shape.name, index),
        kind="values",
        text="SELECT %s %s WHERE { %s . %s %s %s }"
        % (
            FOCUS_VAR,
            VALUE_VAR,
            _target_pattern(shape),
            FOCUS_VAR,
            _iri(prop.path),
            VALUE_VAR,
        ),
    )


def class_probe(
    shape: NodeShape, index: int, value: Term, class_iri: str
) -> CompiledQuery:
    """One membership probe: is *value* an instance of *class_iri*?

    Only URI values are probed -- literals and blank nodes violate an
    ``sh:class`` constraint without a query (a literal is never a class
    instance; a blank-node label in query text would be a fresh
    variable, not a reference).
    """
    if not isinstance(value, URI):
        raise ValueError(
            "class probes are only compiled for URI values, got %r"
            % (value,)
        )
    return CompiledQuery(
        shape=shape.name,
        id="shacl/%s/p%d/class?value=%s" % (shape.name, index, value.n3()),
        kind="class",
        text="ASK { %s %s %s }"
        % (value.n3(), RDF.type.n3(), _iri(class_iri)),
    )


def compile_shape(shape: NodeShape) -> List[CompiledQuery]:
    """The static queries of one shape: target plus one values per property."""
    compiled = [target_query(shape)]
    for index in range(len(shape.properties)):
        compiled.append(values_query(shape, index))
    return compiled


def compile_shape_set(shapes: ShapeSet) -> List[CompiledQuery]:
    """Every static query of the set, in shape definition order."""
    compiled: List[CompiledQuery] = []
    for shape in shapes:
        compiled.extend(compile_shape(shape))
    return compiled


def harvest_queries(shapes: ShapeSet) -> List[CompiledQuery]:
    """CONSTRUCT queries covering every triple validation will touch.

    Per shape: the target triples themselves, each property's (focus,
    value) triples, and -- for ``sh:class`` constraints -- the
    ``rdf:type`` triples of the values, so local class probes answer
    exactly as the remote would.  The harvester adds LIMIT/OFFSET
    paging on top (stable under the protocol's total order).
    """
    compiled: List[CompiledQuery] = []
    for shape in shapes:
        if shape.target_class is not None:
            target_template = "%s %s %s" % (
                FOCUS_VAR,
                RDF.type.n3(),
                _iri(shape.target_class),
            )
        else:
            target_template = "%s %s ?__target" % (
                FOCUS_VAR,
                _iri(shape.target_subjects_of),
            )
        compiled.append(
            CompiledQuery(
                shape=shape.name,
                id="shacl/%s/harvest/target" % shape.name,
                kind="harvest",
                text="CONSTRUCT { %s } WHERE { %s }"
                % (target_template, target_template),
            )
        )
        for index, prop in enumerate(shape.properties):
            value_triple = "%s %s %s" % (
                FOCUS_VAR,
                _iri(prop.path),
                VALUE_VAR,
            )
            compiled.append(
                CompiledQuery(
                    shape=shape.name,
                    id="shacl/%s/harvest/p%d" % (shape.name, index),
                    kind="harvest",
                    text="CONSTRUCT { %s } WHERE { %s . %s }"
                    % (value_triple, _target_pattern(shape), value_triple),
                )
            )
            if prop.class_ is not None:
                membership = "%s %s %s" % (
                    VALUE_VAR,
                    RDF.type.n3(),
                    _iri(prop.class_),
                )
                compiled.append(
                    CompiledQuery(
                        shape=shape.name,
                        id="shacl/%s/harvest/p%d/class" % (shape.name, index),
                        kind="harvest",
                        text="CONSTRUCT { %s } WHERE { %s . %s . %s }"
                        % (
                            membership,
                            _target_pattern(shape),
                            value_triple,
                            membership,
                        ),
                    )
                )
    return compiled
