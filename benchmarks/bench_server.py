"""SRV: the concurrent query service under closed-loop load.

The paper's Section V calls for "concurrent query answering" as a
next-generation requirement: a service answering many tenants at once
rather than one batch query at a time.  ``repro.server`` implements that
on the simulated substrate; this benchmark measures the two levers it
adds on top of plain execution.

Measured: (1) plan+result caching -- throughput and tail latency with
both caches on vs both off over a repetitive workload; (2) admission
control -- a bounded queue trades a rejection rate for bounded queue
depth and wait time, vs an effectively unbounded queue that accepts
everything and lets waiting grow.

All times are virtual cost units (see docs/METRICS.md); the load
schedule is a seeded discrete-event simulation, so every number here is
byte-reproducible.

Run as a script, this file instead measures the one thing the virtual
clock cannot: **wall-clock** execution under the executor backends
(docs/PARALLEL.md)::

    python benchmarks/bench_server.py --backend parallel --workers 4
    python benchmarks/bench_server.py --backend parallel --workers 1

Both runs print per-query wall seconds on the committed LUBM workload;
the 4-worker run should beat the 1-worker run while producing the same
answers (row counts are printed so the identity is visible).
"""

from repro.bench import format_table
from repro.core.assessment import ClaimResult
from repro.server import LoadGenerator, QueryService, build_workload

from conftest import report


def _run(graph, service_kwargs, gen_kwargs):
    service = QueryService(graph, engine="SPARQLGX", **service_kwargs)
    workload = build_workload(graph, size=4, seed=42)
    return LoadGenerator(service, workload, seed=42, **gen_kwargs).run()


def test_cache_ablation(benchmark, lubm_small):
    gen_kwargs = {
        "clients": 6,
        "tenants": 2,
        "requests_per_client": 6,
        "think_units": 20,
    }

    def sweep():
        cached = _run(lubm_small, {"pool_size": 2}, gen_kwargs)
        uncached = _run(
            lubm_small,
            {
                "pool_size": 2,
                "enable_plan_cache": False,
                "enable_result_cache": False,
            },
            gen_kwargs,
        )
        return cached, uncached

    cached, uncached = benchmark.pedantic(sweep, rounds=1, iterations=1)
    c_lat = cached.to_payload()["latency_units"]
    u_lat = uncached.to_payload()["latency_units"]
    result = ClaimResult(
        "SRV-cache",
        holds=cached.throughput_per_kilounit()
        > uncached.throughput_per_kilounit()
        and c_lat["p50"] <= u_lat["p50"]
        and cached.cache["result_hits"] > 0
        and uncached.cache["result_hits"] == 0,
        evidence={
            "throughput_cached": cached.throughput_per_kilounit(),
            "throughput_uncached": uncached.throughput_per_kilounit(),
            "p95_cached": c_lat["p95"],
            "p95_uncached": u_lat["p95"],
            "result_hit_rate": cached.cache["result_hit_rate"],
        },
    )
    rows = [
        [
            label,
            r.completed,
            r.throughput_per_kilounit(),
            lat["p50"],
            lat["p95"],
            lat["p99"],
            r.cache["result_hits"],
        ]
        for label, r, lat in (
            ("caches on", cached, c_lat),
            ("caches off", uncached, u_lat),
        )
    ]
    report(
        "SRV: plan+result caching vs none (closed loop, 6 clients)",
        format_table(
            [
                "config",
                "completed",
                "tput/ku",
                "p50",
                "p95",
                "p99",
                "result hits",
            ],
            rows,
        )
        + "\n" + result.summary(),
    )
    assert result.holds


def wallclock_main(argv=None):
    """Measure wall-clock query latency under a chosen executor backend.

    The pytest benchmarks above run in virtual cost units; this entry
    point times real seconds, because the parallel backend's whole point
    is multi-core wall-clock speedup at unchanged answers.
    """
    import argparse
    import os
    import time

    from repro.data.lubm import LubmGenerator
    from repro.runtime import build_engine
    from repro.sparql.parser import parse_sparql

    parser = argparse.ArgumentParser(
        description="wall-clock executor-backend benchmark "
        "(committed LUBM workload)"
    )
    parser.add_argument(
        "--backend", choices=["inprocess", "parallel"], default="inprocess"
    )
    parser.add_argument("--workers", type=int, default=None, metavar="N")
    parser.add_argument(
        "--engine", default="Naive", help="engine name (default Naive)"
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=120,
        metavar="UNIVERSITIES",
        help="LUBM scale; the default is large enough that per-task "
        "compute dominates fork and pipe overhead (default 120)",
    )
    parser.add_argument(
        "--parallelism", type=int, default=8, help="partitions per stage"
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timed runs per query"
    )
    args = parser.parse_args(argv)

    graph = LubmGenerator(num_universities=args.scale, seed=42).generate()
    engine = build_engine(
        args.engine,
        graph,
        parallelism=args.parallelism,
        backend=args.backend,
        workers=args.workers,
    )
    workload = {
        "star": LubmGenerator.query_star(),
        "snowflake": LubmGenerator.query_snowflake(),
        "complex": LubmGenerator.query_complex(),
    }
    rows = []
    total = 0.0
    for name in sorted(workload):
        query = parse_sparql(workload[name])
        result_rows = None
        start = time.perf_counter()
        for _ in range(args.repeats):
            result_rows = len(engine.execute(query))
        elapsed = (time.perf_counter() - start) / args.repeats
        total += elapsed
        rows.append([name, result_rows, "%.3f" % elapsed])
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cores = os.cpu_count() or 1
    body = (
        format_table(["query", "rows", "mean seconds"], rows)
        + "\ntotal %.3f s/iteration on %d host core(s)" % (total, cores)
    )
    if engine.ctx.backend == "parallel" and engine.ctx.workers > cores:
        body += (
            "\nnote: %d workers > %d core(s); the pool can only "
            "time-slice, so expect no wall-clock speedup on this host "
            "(results are byte-identical regardless)"
            % (engine.ctx.workers, cores)
        )
    report(
        "SRV: wall-clock on backend=%s workers=%d (LUBM-%d, %d triples, "
        "%s engine)"
        % (
            engine.ctx.backend,
            engine.ctx.workers,
            args.scale,
            len(graph),
            args.engine,
        ),
        body,
    )
    return 0


def test_admission_ablation(benchmark, lubm_small):
    # One worker, zero think time: every client is always either running
    # or waiting, so the queue policy is the whole story.
    gen_kwargs = {
        "clients": 8,
        "tenants": 2,
        "requests_per_client": 4,
        "think_units": 0,
    }
    service_kwargs = {"pool_size": 1, "enable_result_cache": False}

    def sweep():
        bounded = _run(
            lubm_small, dict(service_kwargs, queue_limit=2), gen_kwargs
        )
        unbounded = _run(
            lubm_small, dict(service_kwargs, queue_limit=10**6), gen_kwargs
        )
        return bounded, unbounded

    bounded, unbounded = benchmark.pedantic(sweep, rounds=1, iterations=1)
    b_queue = bounded.to_payload()["queue"]
    u_queue = unbounded.to_payload()["queue"]
    result = ClaimResult(
        "SRV-admission",
        holds=bounded.rejected > 0
        and unbounded.rejected == 0
        and b_queue["max_depth"] <= 2
        and b_queue["max_depth"] < u_queue["max_depth"]
        and b_queue["mean_wait_units"] < u_queue["mean_wait_units"],
        evidence={
            "rejected_bounded": bounded.rejected,
            "rejected_unbounded": unbounded.rejected,
            "max_depth_bounded": b_queue["max_depth"],
            "max_depth_unbounded": u_queue["max_depth"],
            "mean_wait_bounded": b_queue["mean_wait_units"],
            "mean_wait_unbounded": u_queue["mean_wait_units"],
        },
    )
    rows = [
        [
            label,
            r.completed,
            r.rejected,
            queue["max_depth"],
            queue["mean_wait_units"],
            r.to_payload()["latency_units"]["p95"],
        ]
        for label, r, queue in (
            ("bounded (limit=2)", bounded, b_queue),
            ("unbounded", unbounded, u_queue),
        )
    ]
    report(
        "SRV: bounded admission queue vs unbounded (1 worker, no think)",
        format_table(
            [
                "config",
                "completed",
                "rejected",
                "max depth",
                "mean wait",
                "p95 latency",
            ],
            rows,
        )
        + "\n" + result.summary(),
    )
    assert result.holds

if __name__ == "__main__":
    import sys

    sys.exit(wallclock_main())
