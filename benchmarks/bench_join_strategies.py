"""CLM-JOIN: the broadcast-vs-partitioned join study of [21] (Section IV-A3).

Paper claims measured here:
 * the RDD strategy "lacks efficiency when a broadcast join is cheaper,
   e.g. join a small with a large data set" and "always reads the entire
   data set for each triple pattern";
 * the DataFrame strategy "prefers a single broadcast join to a sequence
   of partitioned joins if the dataset is smaller than a given threshold"
   but "does not consider data partitioning";
 * the hybrid strategy "takes into account an existing data partitioning
   scheme to avoid useless data transfer" and wins via a greedy cost-based
   mix of both join algorithms;
 * naive SQL translation degenerates to cartesian products on disconnected
   patterns.

Measured: shuffle/remote/broadcast costs of all four strategies across
query shapes, and the build-side size sweep locating the crossover where
broadcasting beats partitioning.
"""

from repro.bench import format_series, format_table
from repro.core.assessment import ClaimResult
from repro.data.lubm import LubmGenerator
from repro.rdf.graph import RDFGraph
from repro.rdf.terms import URI
from repro.rdf.triple import Triple
from repro.spark.context import SparkContext
from repro.systems import HybridEngine, JoinStrategy

from conftest import report

PREFIX = (
    "PREFIX lubm: <http://repro.example.org/lubm#>\n"
    "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
)
QUERIES = {
    "star": LubmGenerator.query_star(),
    "linear": LubmGenerator.query_linear(),
    "snowflake": LubmGenerator.query_snowflake(),
}


def _cost(engine, query_text):
    before = engine.ctx.metrics.snapshot()
    engine.execute(query_text)
    return engine.ctx.metrics.snapshot() - before


def test_strategy_matrix(benchmark, lubm_graph):
    def run_matrix():
        rows = []
        costs = {}
        for strategy in JoinStrategy:
            engine = HybridEngine(SparkContext(4), strategy=strategy)
            engine.load(lubm_graph)
            for name, query in QUERIES.items():
                cost = _cost(engine, query)
                costs[(strategy, name)] = cost
                rows.append(
                    [
                        strategy.value,
                        name,
                        cost.shuffle_records,
                        cost.shuffle_remote_records,
                        cost.broadcast_bytes,
                        cost.join_comparisons,
                    ]
                )
        return rows, costs

    rows, costs = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    hybrid_wins = all(
        costs[(JoinStrategy.HYBRID, name)].shuffle_remote_records
        <= costs[(JoinStrategy.RDD, name)].shuffle_remote_records
        for name in QUERIES
    )
    rdd_never_broadcasts = all(
        costs[(JoinStrategy.RDD, name)].broadcast_bytes == 0
        for name in QUERIES
    )
    result = ClaimResult(
        "CLM-JOIN-matrix",
        holds=hybrid_wins and rdd_never_broadcasts,
        evidence={
            "hybrid_remote_star": costs[
                (JoinStrategy.HYBRID, "star")
            ].shuffle_remote_records,
            "rdd_remote_star": costs[
                (JoinStrategy.RDD, "star")
            ].shuffle_remote_records,
        },
    )
    report(
        "CLM-JOIN: strategy x query-shape cost matrix",
        format_table(
            [
                "strategy",
                "query",
                "shuffle",
                "remote",
                "broadcast B",
                "comparisons",
            ],
            rows,
        )
        + "\n" + result.summary(),
    )
    assert result.holds


def _skew_graph(large, small):
    """A large 'views' relation joining a small 'admin' relation."""
    graph = RDFGraph()
    ex = "http://example.org/"
    for i in range(large):
        graph.add(
            Triple(
                URI(ex + "u%d" % (i % max(small * 3, 1))),
                URI(ex + "views"),
                URI(ex + "page%d" % i),
            )
        )
    for i in range(small):
        graph.add(
            Triple(URI(ex + "u%d" % i), URI(ex + "admin"), URI(ex + "yes"))
        )
    return graph


def test_small_build_side_crossover(benchmark):
    """Sweep the build-side size: broadcast wins small, loses big."""
    query = (
        "PREFIX ex: <http://example.org/>\n"
        "SELECT ?u ?p WHERE { ?u ex:views ?p . ?u ex:admin ex:yes }"
    )

    def sweep():
        # The DataFrame strategy considers only sizes (the paper notes it
        # ignores partitioning), so it exposes the crossover cleanly.
        series = {}
        for small in (2, 8, 32, 128):
            graph = _skew_graph(large=300, small=small)
            threshold_engine = HybridEngine(
                SparkContext(4),
                strategy=JoinStrategy.DATAFRAME,
                broadcast_threshold=4,
            )
            threshold_engine.load(graph)
            cost = _cost(threshold_engine, query)
            series[small] = (
                "broadcast" if cost.broadcast_bytes > 0 else "partitioned",
                cost.shuffle_records,
            )
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    choices = [kind for kind, _shuffle in series.values()]
    result = ClaimResult(
        "CLM-JOIN-crossover",
        holds="broadcast" in choices and "partitioned" in choices,
        evidence={str(k): v[0] for k, v in series.items()},
    )
    report(
        "CLM-JOIN: greedy strategy switches at the size threshold",
        format_series(
            "build-side size -> (chosen join, shuffle records)", series
        )
        + "\n" + result.summary(),
    )
    assert result.holds


def test_sql_cartesian_drawback(benchmark, lubm_small):
    """Disconnected patterns: SQL translation produces a cartesian product."""
    disconnected = PREFIX + (
        "SELECT ?u ?d WHERE { ?u rdf:type lubm:University . "
        "?d rdf:type lubm:Department . }"
    )
    connected = LubmGenerator.query_star()

    engine = HybridEngine(SparkContext(4), strategy=JoinStrategy.SPARK_SQL)
    engine.load(lubm_small)

    def run():
        disconnected_cost = _cost(engine, disconnected)
        disconnected_sql = engine.last_sql
        connected_cost = _cost(engine, connected)
        connected_sql = engine.last_sql
        return disconnected_cost, disconnected_sql, connected_sql

    disconnected_cost, disconnected_sql, connected_sql = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    result = ClaimResult(
        "CLM-JOIN-cartesian",
        holds="CROSS JOIN" in disconnected_sql
        and "CROSS JOIN" not in connected_sql,
        evidence={
            "disconnected_comparisons": disconnected_cost.join_comparisons
        },
    )
    report(
        "CLM-JOIN: naive SQL translation degenerates to cartesian products",
        "disconnected: %s\nconnected:    %s\n%s"
        % (disconnected_sql, connected_sql, result.summary()),
    )
    assert result.holds
