"""FIG1: regenerate Figure 1 -- the taxonomy of dimensions.

Paper artifact: "Fig. 1. A taxonomy presenting the dimensions for
organizing RDF query processing methods."  The reproduction renders the
same tree from ``repro.core.taxonomy`` and asserts its exact structure.
"""

from repro.core import TAXONOMY, render_taxonomy

from conftest import report


def test_figure1_taxonomy(benchmark):
    text = benchmark(render_taxonomy)
    report("FIGURE 1 (reproduced): taxonomy of dimensions", text)
    # Two axes with the paper's exact leaf options.
    assert [c.label for c in TAXONOMY.children] == [
        "Data Model",
        "Apache Spark Abstraction",
    ]
    assert TAXONOMY.leaves() == [
        "The Triple Model",
        "The Graph Model",
        "RDD",
        "DataFrames",
        "Spark SQL",
        "GraphX",
        "GraphFrames",
    ]
