"""CLM-LOCAL: HAQWA's partitioning claims (Section IV-A1).

Paper: "a hash-based partitioning is performed on triple subjects.  This
fragmentation ensures that star-shaped queries are performed locally, but
no guarantees are provided for other query types" and "data are allocated
according to the analysis of frequent queries ... to prevent network
communication, the missing triples are replicated".

Measured: shuffle traffic of star vs linear queries on plain subject-hash
HAQWA, and of the frequent linear query once workload-aware allocation is
enabled.
"""

from repro.bench import format_table
from repro.core.assessment import ClaimResult
from repro.data.lubm import LubmGenerator
from repro.data.workload import QueryWorkload
from repro.spark.context import SparkContext
from repro.sparql.parser import parse_sparql
from repro.systems import HaqwaEngine

from conftest import report

STAR = LubmGenerator.query_star()
# A two-hop chain: HAQWA's replica allocation is one hop deep (triples of
# a link's target subject move to the link source's partition), so this is
# the query type the mechanism localizes.
LINEAR = (
    "PREFIX lubm: <http://repro.example.org/lubm#>\n"
    "SELECT ?s ?p ?dep WHERE { ?s lubm:advisor ?p . ?p lubm:worksFor ?dep }"
)


def _run(engine, query_text):
    before = engine.ctx.metrics.snapshot()
    engine.execute(query_text)
    return engine.ctx.metrics.snapshot() - before


def test_star_queries_local_linear_not(benchmark, lubm_graph):
    engine = HaqwaEngine(SparkContext(4))
    engine.load(lubm_graph)

    star_cost = _run(engine, STAR)
    linear_cost = benchmark.pedantic(
        lambda: _run(engine, LINEAR), rounds=1, iterations=1
    )

    rows = [
        ["star", star_cost.shuffle_records, star_cost.shuffle_remote_records],
        [
            "linear",
            linear_cost.shuffle_records,
            linear_cost.shuffle_remote_records,
        ],
    ]
    result = ClaimResult(
        "CLM-LOCAL-star",
        holds=star_cost.shuffle_records == 0
        and linear_cost.shuffle_records > 0,
        evidence={
            "star_shuffle": star_cost.shuffle_records,
            "linear_shuffle": linear_cost.shuffle_records,
        },
    )
    report(
        "CLM-LOCAL: subject hashing makes star queries local",
        format_table(["query", "shuffle records", "remote records"], rows)
        + "\n" + result.summary(),
    )
    assert result.holds


def test_workload_aware_allocation_removes_linear_shuffle(
    benchmark, lubm_graph
):
    workload = QueryWorkload()
    workload.add("linear", parse_sparql(LINEAR), frequency=10.0)

    plain = HaqwaEngine(SparkContext(4))
    plain.load(lubm_graph)
    aware = HaqwaEngine(SparkContext(4), workload=workload)
    aware.load(lubm_graph)

    plain_cost = _run(plain, LINEAR)
    aware_cost = benchmark.pedantic(
        lambda: _run(aware, LINEAR), rounds=1, iterations=1
    )

    rows = [
        ["hash only", plain_cost.shuffle_records, 0],
        [
            "hash + query aware",
            aware_cost.shuffle_records,
            aware.replicated_triples,
        ],
    ]
    result = ClaimResult(
        "CLM-LOCAL-workload",
        holds=aware_cost.shuffle_records == 0
        and plain_cost.shuffle_records > 0
        and aware.replicated_triples > 0,
        evidence={
            "shuffle_before": plain_cost.shuffle_records,
            "shuffle_after": aware_cost.shuffle_records,
            "replicated_triples": aware.replicated_triples,
        },
    )
    report(
        "CLM-LOCAL: workload-aware replication localizes frequent queries",
        format_table(
            ["allocation", "linear-query shuffle", "replicated triples"], rows
        )
        + "\n" + result.summary(),
    )
    assert result.holds
