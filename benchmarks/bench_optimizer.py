"""OPT: cost-based optimization ablations (statistics, ordering, broadcast).

The paper's surveyed systems each justify an optimizer ingredient --
SPARQLGX its one-pass statistics and join reordering (IV-A1), S2RDF its
selectivity-reducing precomputation (IV-A2), the join-strategy study its
size-thresholded broadcast choice (IV-A3).  ``repro.optimizer`` combines
them into one shared cost-based planner; this benchmark ablates it.

Profiles: ordering mode (``parse`` = no statistics, ``greedy``, ``dp``)
crossed with broadcast selection on/off, each running the full synthetic
workload on SPARQLGX.  Measured per (profile, query): result rows (must
be identical everywhere -- the optimizer may only change *how*, never
*what*), join comparisons, shuffle records, broadcast bytes.

Run as a script for the deterministic JSON artifact::

    PYTHONPATH=src python benchmarks/bench_optimizer.py --output BENCH_optimizer.json

or under pytest (the test asserts the ablation's headline claims).
All numbers are simulated-cluster counters; fixed seed, byte-reproducible.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.bench import format_table
from repro.core.assessment import ClaimResult
from repro.data.lubm import LubmGenerator
from repro.optimizer import Optimizer
from repro.spark.context import SparkContext
from repro.systems import SparqlgxEngine

try:
    from conftest import report
except ImportError:  # script mode: benchmarks/ is not on sys.path
    def report(title, body):
        banner = "=" * 72
        print("\n%s\n%s\n%s\n%s" % (banner, title, banner, body))

#: (profile name, ordering mode, broadcast enabled).
PROFILES = (
    ("no-stats", "parse", False),
    ("no-stats+bcast", "parse", True),
    ("greedy", "greedy", False),
    ("greedy+bcast", "greedy", True),
    ("dp", "dp", False),
    ("dp+bcast", "dp", True),
)

QUERIES = {
    "star": LubmGenerator.query_star(),
    "linear": LubmGenerator.query_linear(),
    "snowflake": LubmGenerator.query_snowflake(),
    "complex": LubmGenerator.query_complex(),
}


def _run_profile(graph, mode: str, enable_broadcast: bool, queries):
    """Per-query cost counters for one optimizer configuration."""
    optimizer = Optimizer.for_graph(
        graph, mode=mode, enable_broadcast=enable_broadcast
    )
    measured: Dict[str, Dict[str, int]] = {}
    for name, text in queries.items():
        engine = SparqlgxEngine(SparkContext(4))
        engine.load(graph)
        engine.set_optimizer(optimizer)
        before = engine.ctx.metrics.snapshot()
        result = engine.execute(text)
        cost = engine.ctx.metrics.snapshot() - before
        measured[name] = {
            "rows": len(result),
            "join_comparisons": cost.join_comparisons,
            "shuffle_records": cost.shuffle_records,
            "broadcast_bytes": cost.broadcast_bytes,
            "records_scanned": cost.records_scanned,
        }
    return measured


def run_bench(smoke: bool = False) -> Dict[str, object]:
    """The full ablation; returns the JSON-ready payload."""
    scale = 1 if smoke else 2
    graph = LubmGenerator(num_universities=scale, seed=42).generate()
    queries = (
        {name: QUERIES[name] for name in ("star", "linear")}
        if smoke
        else QUERIES
    )
    profiles: Dict[str, Dict[str, Dict[str, int]]] = {}
    for name, mode, broadcast in PROFILES:
        profiles[name] = _run_profile(graph, mode, broadcast, queries)
    return {
        "benchmark": "optimizer-ablation",
        "dataset": {"generator": "lubm", "scale": scale, "seed": 42},
        "engine": "SPARQLGX",
        "profiles": profiles,
        "queries": sorted(queries),
        "smoke": smoke,
    }


def check_payload(payload: Dict[str, object]) -> ClaimResult:
    """The ablation's headline claims, verified against *payload*."""
    profiles = payload["profiles"]
    queries = payload["queries"]
    rows_identical = all(
        len({profiles[name][q]["rows"] for name, _m, _b in PROFILES}) == 1
        for q in queries
    )
    dp_no_worse = all(
        profiles["dp"][q]["join_comparisons"]
        <= profiles["no-stats"][q]["join_comparisons"]
        for q in queries
    )
    broadcast_cuts_shuffle = sum(
        profiles["dp+bcast"][q]["shuffle_records"] for q in queries
    ) < sum(profiles["dp"][q]["shuffle_records"] for q in queries)
    return ClaimResult(
        "OPT-ablation",
        holds=rows_identical and dp_no_worse and broadcast_cuts_shuffle,
        evidence={
            "rows_identical": rows_identical,
            "dp_comparisons": sum(
                profiles["dp"][q]["join_comparisons"] for q in queries
            ),
            "no_stats_comparisons": sum(
                profiles["no-stats"][q]["join_comparisons"] for q in queries
            ),
            "shuffle_dp": sum(
                profiles["dp"][q]["shuffle_records"] for q in queries
            ),
            "shuffle_dp_bcast": sum(
                profiles["dp+bcast"][q]["shuffle_records"] for q in queries
            ),
        },
    )


def _table(payload) -> str:
    rows: List[List[object]] = []
    for name, _mode, _broadcast in PROFILES:
        for query in payload["queries"]:
            cell = payload["profiles"][name][query]
            rows.append(
                [
                    name,
                    query,
                    cell["rows"],
                    cell["join_comparisons"],
                    cell["shuffle_records"],
                    cell["broadcast_bytes"],
                ]
            )
    return format_table(
        ["profile", "query", "rows", "comparisons", "shuffle", "broadcast B"],
        rows,
    )


def test_optimizer_ablation(benchmark):
    payload = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    result = check_payload(payload)
    report(
        "OPT: ordering mode x broadcast ablation (LUBM, SPARQLGX)",
        _table(payload) + "\n" + result.summary(),
    )
    assert result.holds


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="cost-based optimizer ablation benchmark"
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default="BENCH_optimizer.json",
        help="where to write the JSON artifact (default BENCH_optimizer.json)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny fixed-size run for CI (smaller data, fewer queries)",
    )
    args = parser.parse_args(argv)
    payload = run_bench(smoke=args.smoke)
    result = check_payload(payload)
    print(_table(payload))
    print(result.summary())
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.output)
    return 0 if result.holds else 1


if __name__ == "__main__":
    sys.exit(main())
