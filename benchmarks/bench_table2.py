"""TAB2: regenerate Table II -- per-system characteristics.

Paper artifact: "TABLE II. Additional characteristics of the RDF query
processing approaches" (query processing / optimization / partitioning /
SPARQL fragment).  Besides re-deriving the table from engine profiles and
asserting row-exact agreement, the SPARQL-fragment column is *behaviourally
verified*: every BGP-only engine must reject a FILTER query, every BGP+
engine must answer it.
"""

import pytest

from repro.core import default_registry, render_table_ii
from repro.core.reports import PAPER_TABLE_II, table_ii_rows
from repro.data.lubm import LubmGenerator
from repro.spark.context import SparkContext
from repro.sparql.parser import parse_sparql
from repro.systems import UnsupportedQueryError

from conftest import report

FILTER_QUERY = parse_sparql(
    "PREFIX lubm: <http://repro.example.org/lubm#>\n"
    "SELECT ?s WHERE { ?s lubm:age ?a . FILTER(?a > 20) }"
)


def test_table2_rows(benchmark):
    registry = default_registry()
    rows = benchmark(table_ii_rows, registry)
    report("TABLE II (reproduced)", render_table_ii(registry))
    assert [tuple(r) for r in rows] == [tuple(r) for r in PAPER_TABLE_II]


def test_table2_fragment_column_verified_behaviourally(benchmark, lubm_small):
    registry = default_registry()

    def probe_all():
        outcomes = {}
        for engine_class in registry:
            engine = engine_class(SparkContext(2))
            engine.load(lubm_small)
            try:
                engine.execute(FILTER_QUERY)
                outcomes[engine_class.profile.citation] = "BGP+"
            except UnsupportedQueryError:
                outcomes[engine_class.profile.citation] = "BGP"
        return outcomes

    outcomes = benchmark.pedantic(probe_all, rounds=1, iterations=1)
    published = {row[0]: row[4] for row in PAPER_TABLE_II}
    report(
        "TABLE II fragment column: behavioural probe",
        "\n".join(
            "%s: published=%s probed=%s"
            % (citation, published[citation], outcome)
            for citation, outcome in sorted(outcomes.items())
        ),
    )
    assert outcomes == published
