"""SHACL: validation as a serving workload + federated harvest ablation.

The validator (docs/SHACL.md) fans a shape set into many small SELECT/ASK
queries and submits each one to the query service as its own billed
request.  That framing makes two claims measurable:

1. **Plan-cache warm validation is cheaper than cold.**  The second
   validation pass over an unchanged service re-uses every compiled
   query's parsed plan: its plan-cache hit rate must exceed 0.5 (the
   acceptance bar; it is 1.0 here) and its total service units must not
   exceed the cold pass's.

2. **Harvest-then-validate equals validate-remote, then amortizes.**
   Remote-first federated validation (docs/FEDERATION.md) pages the
   shape-relevant subgraph through the wire protocol and validates the
   local copy: the report must be byte-identical to validating directly
   against the remote service, and *re*-validating the harvested copy
   costs zero further remote units -- the harvest is the one-time price
   of independence from the endpoint.

Run as a script for the deterministic JSON artifact::

    PYTHONPATH=src python benchmarks/bench_shacl.py --output BENCH_shacl.json

or under pytest (the test asserts both claims on the smoke payload).
All numbers are simulated-cluster cost units; fixed seed,
byte-reproducible.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.bench import format_table
from repro.core.assessment import ClaimResult
from repro.data.lubm import LubmGenerator
from repro.federation import WireEndpoint, validate_remote_first
from repro.server.service import QueryService
from repro.shacl import (
    LocalGraphExecutor,
    ServiceExecutor,
    ShaclValidator,
    default_shapes_for,
)

try:
    from conftest import report
except ImportError:  # script mode: benchmarks/ is not on sys.path
    def report(title, body):
        banner = "=" * 72
        print("\n%s\n%s\n%s\n%s" % (banner, title, banner, body))

#: The acceptance bar for the warm pass's plan-cache hit rate.
WARM_HIT_RATE_BOUND = 0.5

#: Harvested CONSTRUCT page size (full runs page more finely than the
#: smoke run so the loop is exercised across many pages).
PAGE_SIZE = 8
SMOKE_PAGE_SIZE = 32


def _pass_record(validation_report) -> Dict[str, object]:
    accounting = validation_report.accounting
    executed = accounting["executed"]
    return {
        "executed": executed,
        "units": accounting["units"],
        "plan_hits": accounting["plan_hits"],
        "plan_hit_rate": (
            round(accounting["plan_hits"] / executed, 6) if executed else 0.0
        ),
        "conforms": validation_report.conforms,
        "violations": len(validation_report.violations),
        "report_sha": _sha(validation_report),
    }


def _sha(validation_report) -> str:
    import hashlib

    return hashlib.sha256(
        validation_report.to_json().encode("utf-8")
    ).hexdigest()[:16]


def run_bench(smoke: bool = False) -> Dict[str, object]:
    """Both ablations; returns the JSON-ready payload."""
    graph = LubmGenerator(num_universities=1, seed=42).generate()
    shapes = default_shapes_for(
        graph, max_classes=2 if smoke else 3, max_properties=2
    )
    page_size = SMOKE_PAGE_SIZE if smoke else PAGE_SIZE

    # -- claim 1: cold vs plan-cache-warm validation ---------------------
    # The result cache is disabled so the second pass *executes* every
    # query again and the plan tier is the one measured (with it on, the
    # warm pass would answer from stored result bytes instead).
    service = QueryService(graph.copy(), enable_result_cache=False)
    executor = ServiceExecutor(service)
    cold = ShaclValidator(executor).validate(shapes)
    warm = ShaclValidator(executor).validate(shapes)

    # -- claim 2: harvest-then-validate vs validate-remote ---------------
    direct_service = QueryService(graph.copy())
    direct = ShaclValidator(ServiceExecutor(direct_service)).validate(shapes)
    endpoint = WireEndpoint(QueryService(graph.copy()))
    requests_before_harvest = endpoint.requests
    harvested, subgraph = validate_remote_first(
        endpoint, shapes, page_size=page_size
    )
    harvest = harvested.accounting["harvest"]
    # Re-validating the local copy touches the endpoint zero times.
    requests_before = endpoint.requests
    revalidated = ShaclValidator(
        LocalGraphExecutor(subgraph.head())
    ).validate(shapes)

    return {
        "benchmark": "shacl-validation",
        "dataset": {"generator": "lubm", "scale": 1, "seed": 42},
        "shapes": {
            "source": "default_shapes_for",
            "count": len(shapes),
            "names": [shape.name for shape in shapes],
        },
        "validation": {"cold": _pass_record(cold), "warm": _pass_record(warm)},
        "federation": {
            "page_size": page_size,
            "remote_direct_units": direct.accounting["units"],
            "harvest_pages": harvest["pages"],
            "harvest_triples": harvest["triples"],
            "harvest_remote_units": harvest["remote_units"],
            "harvest_wire_requests": requests_before - requests_before_harvest,
            "remote_version": harvest["remote_version"],
            "harvested_report_sha": _sha(harvested),
            "direct_report_sha": _sha(direct),
            "revalidation_remote_requests": endpoint.requests
            - requests_before,
            "revalidation_report_sha": _sha(revalidated),
        },
        "smoke": smoke,
    }


def check_payload(payload: Dict[str, object]) -> ClaimResult:
    """The headline claims, verified against *payload*."""
    validation = payload["validation"]
    federation = payload["federation"]
    warm_hit_rate = validation["warm"]["plan_hit_rate"]
    warm_wins = (
        warm_hit_rate > WARM_HIT_RATE_BOUND
        and validation["warm"]["units"] <= validation["cold"]["units"]
    )
    reports_agree = (
        federation["harvested_report_sha"] == federation["direct_report_sha"]
        and federation["revalidation_report_sha"]
        == federation["direct_report_sha"]
        and validation["cold"]["report_sha"] == validation["warm"]["report_sha"]
    )
    revalidation_free = federation["revalidation_remote_requests"] == 0
    return ClaimResult(
        "SHACL-serving",
        holds=warm_wins and reports_agree and revalidation_free,
        evidence={
            "warm_plan_hit_rate": warm_hit_rate,
            "warm_units": validation["warm"]["units"],
            "cold_units": validation["cold"]["units"],
            "reports_agree": reports_agree,
            "harvest_remote_units": federation["harvest_remote_units"],
            "remote_direct_units": federation["remote_direct_units"],
            "revalidation_remote_requests": federation[
                "revalidation_remote_requests"
            ],
        },
    )


def _table(payload) -> str:
    validation = payload["validation"]
    federation = payload["federation"]
    rows = [
        [
            "validate (cold)",
            validation["cold"]["executed"],
            validation["cold"]["units"],
            validation["cold"]["plan_hit_rate"],
        ],
        [
            "validate (warm)",
            validation["warm"]["executed"],
            validation["warm"]["units"],
            validation["warm"]["plan_hit_rate"],
        ],
        [
            "validate remote (direct)",
            validation["cold"]["executed"],
            federation["remote_direct_units"],
            "-",
        ],
        [
            "harvest %d page(s)" % federation["harvest_pages"],
            "-",
            federation["harvest_remote_units"],
            "-",
        ],
        ["re-validate harvested copy", validation["cold"]["executed"], 0, "-"],
    ]
    return format_table(
        ["step", "queries", "service units", "plan hit rate"], rows
    )


def test_shacl_serving(benchmark):
    payload = benchmark.pedantic(
        lambda: run_bench(smoke=True), rounds=1, iterations=1
    )
    result = check_payload(payload)
    report(
        "SHACL: cold vs warm validation + federated harvest (LUBM)",
        _table(payload) + "\n" + result.summary(),
    )
    assert result.holds


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="SHACL validation / federated harvest benchmark"
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default="BENCH_shacl.json",
        help="where to write the JSON artifact (default BENCH_shacl.json)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny fixed-size run for CI (fewer shapes, coarser pages)",
    )
    args = parser.parse_args(argv)
    payload = run_bench(smoke=args.smoke)
    result = check_payload(payload)
    print(_table(payload))
    print(result.summary())
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.output)
    return 0 if result.holds else 1


if __name__ == "__main__":
    sys.exit(main())
