"""CMP-SHAPE: the survey's summative cross-system assessment.

The paper's overall judgement (Sections IV-V): every surveyed system
improves on naive full scans by exploiting its storage/partitioning
scheme; systems that neglect partitioning pay for it in network traffic;
query shape (Section II-B) determines who wins where.

Measured: the full engine x query-shape matrix on the LUBM-like workload
-- answers cross-checked against the reference evaluator, and cost metrics
(scans, shuffles, remote traffic, comparisons) reported per cell.  This
regenerates, in spirit, the comparison a reader would assemble from the
survey's per-system sections.
"""

from repro.bench import BenchRun, format_table
from repro.core.assessment import ClaimResult
from repro.data.lubm import LubmGenerator
from repro.systems import ALL_ENGINE_CLASSES, NaiveEngine

from conftest import report

QUERIES = {
    "star": LubmGenerator.query_star(),
    "linear": LubmGenerator.query_linear(),
    "snowflake": LubmGenerator.query_snowflake(),
    "complex": LubmGenerator.query_complex(),
}


def test_cross_system_matrix(benchmark, lubm_small):
    bench = BenchRun(lubm_small)

    def run_matrix():
        bench.results.clear()
        return bench.run(
            (NaiveEngine,) + ALL_ENGINE_CLASSES, QUERIES
        )

    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    rows = []
    for result in results:
        summary = result.cost_summary()
        rows.append(
            [
                result.engine,
                result.query,
                result.rows,
                "yes" if result.correct else "NO",
                summary["records_scanned"],
                summary["shuffle_records"],
                summary["shuffle_remote"],
                summary["join_comparisons"],
            ]
        )

    all_correct = not bench.incorrect()
    by_engine = bench.by_engine()

    def total_scans(engine_name):
        return sum(
            r.cost_summary()["records_scanned"] for r in by_engine[engine_name]
        )

    # Storage-aware engines read less than the naive full scanner.
    naive_scans = total_scans("Naive")
    sparqlgx_scans = total_scans("SPARQLGX")
    sparkrdf_scans = total_scans("SparkRDF")

    claim = ClaimResult(
        "CMP-SHAPE",
        holds=all_correct
        and sparqlgx_scans < naive_scans
        and sparkrdf_scans < naive_scans,
        evidence={
            "all_correct": all_correct,
            "naive_scans": naive_scans,
            "sparqlgx_scans": sparqlgx_scans,
            "sparkrdf_scans": sparkrdf_scans,
        },
    )
    report(
        "CMP-SHAPE: engine x query-shape assessment matrix",
        format_table(
            [
                "engine",
                "query",
                "rows",
                "correct",
                "scanned",
                "shuffle",
                "remote",
                "comparisons",
            ],
            rows,
        )
        + "\n" + claim.summary(),
    )
    assert claim.holds


def test_star_queries_cheapest_on_subject_partitioners(benchmark, lubm_small):
    """Subject-partitioned engines answer stars with zero remote traffic."""
    bench = BenchRun(lubm_small)

    def run():
        bench.results.clear()
        from repro.systems import HaqwaEngine, HybridEngine

        return bench.run(
            [HaqwaEngine, HybridEngine], {"star": QUERIES["star"]}
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    remote = {
        r.engine: r.cost_summary()["shuffle_remote"] for r in results
    }
    claim = ClaimResult(
        "CMP-SHAPE-star-local",
        holds=all(value == 0 for value in remote.values()),
        evidence=remote,
    )
    report(
        "CMP-SHAPE: star queries are local under subject partitioning",
        claim.summary(),
    )
    assert claim.holds
