"""VIEWS: materialized ExtVP ablation (off / full rebuild / incremental).

S2RDF's central bet (Section IV-A2) is that precomputed semi-join
reductions pay for themselves; its unanswered operational question is
what they cost to *keep* under updates.  ``repro.views`` materializes
the reduction tables and maintains them incrementally across
:mod:`repro.evolution` commits; this benchmark measures both halves:

* **Query side** -- the synthetic workload on SPARQLGX with the shared
  optimizer, views off vs on.  Result rows must be identical (views
  change *how*, never *what*); with views on, substituted plans scan no
  more records than the base plans.
* **Maintenance side** -- a deterministic commit stream applied three
  ways: views off (free), full rebuild after every commit (the S2RDF
  batch answer), and incremental delta application.  Every commit also
  byte-checks the incrementally maintained views against a from-scratch
  materialization oracle.

Run as a script for the deterministic JSON artifact::

    PYTHONPATH=src python benchmarks/bench_views.py --output BENCH_views.json

or under pytest (the test asserts the ablation's headline claims).
All numbers are simulated-cluster cost units; fixed seed,
byte-reproducible.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.bench import format_table
from repro.core.assessment import ClaimResult
from repro.data.lubm import LubmGenerator
from repro.evolution.versioned import VersionedGraph
from repro.optimizer import Optimizer
from repro.spark.context import SparkContext
from repro.stats.catalog import StatsCatalog
from repro.systems import SparqlgxEngine
from repro.views import ViewCatalog
from repro.views.catalog import _predicate_terms, materialize_view

try:
    from conftest import report
except ImportError:  # script mode: benchmarks/ is not on sys.path
    def report(title, body):
        banner = "=" * 72
        print("\n%s\n%s\n%s\n%s" % (banner, title, banner, body))

THRESHOLD = 0.5

QUERIES = {
    "star": LubmGenerator.query_star(),
    "linear": LubmGenerator.query_linear(),
    "snowflake": LubmGenerator.query_snowflake(),
    "complex": LubmGenerator.query_complex(),
}


def _run_queries(graph, views: bool, queries) -> Dict[str, Dict[str, int]]:
    """Per-query cost counters with the optimizer, views on or off."""
    optimizer = Optimizer.for_graph(
        graph, views=views, view_threshold=THRESHOLD
    )
    measured: Dict[str, Dict[str, int]] = {}
    for name, text in queries.items():
        engine = SparqlgxEngine(SparkContext(4))
        engine.load(graph)
        engine.set_optimizer(optimizer)
        before = engine.ctx.metrics.snapshot()
        result = engine.execute(text)
        cost = engine.ctx.metrics.snapshot() - before
        measured[name] = {
            "rows": len(result),
            "records_scanned": cost.records_scanned,
            "join_comparisons": cost.join_comparisons,
            "shuffle_records": cost.shuffle_records,
            "view_scans": cost["view_scans"],
        }
    return measured


def _commit_stream(graph) -> List[Dict[str, tuple]]:
    """Three deterministic commits: churn derived from the sorted graph.

    Delete a slice, delete another while re-adding half the first, then
    restore the rest -- exercising row eviction, value-vanishes eviction,
    and value-reappears pull-in on the same predicates.
    """
    triples = sorted(graph)
    slice_a = triples[10:40]
    slice_b = triples[60:80]
    return [
        {"additions": (), "deletions": tuple(slice_a)},
        {"additions": tuple(slice_a[:15]), "deletions": tuple(slice_b)},
        {"additions": tuple(slice_a[15:] + slice_b), "deletions": ()},
    ]


def _views_exact(catalog: ViewCatalog, graph) -> bool:
    """Every maintained view byte-matches a from-scratch materialization."""
    terms = _predicate_terms(graph)
    for view in catalog.sorted_views():
        oracle = materialize_view(
            graph,
            view.key,
            view.factor,
            version=view.version,
            predicate_terms=terms,
        )
        if view.rows() != oracle.rows():
            return False
    return True


def _run_maintenance(graph) -> Dict[str, object]:
    """The commit stream under incremental maintenance vs full rebuild."""
    versions = VersionedGraph(graph.copy())
    stats = StatsCatalog.from_graph(versions.head())
    catalog = ViewCatalog.build(versions.head(), stats, threshold=THRESHOLD)
    initial_build_units = catalog.build_cost_units
    commits: List[Dict[str, object]] = []
    for change in _commit_stream(graph):
        version = versions.commit(change["additions"], change["deletions"])
        head = versions.head()
        delta = versions.delta(version)
        incremental = catalog.apply_delta(delta, head, version)
        # The batch alternative: rebuild every view from fresh statistics
        # at the new head (what a views-enabled service would do without
        # incremental maintenance).
        rebuilt = ViewCatalog.build(
            head, StatsCatalog.from_graph(head), threshold=THRESHOLD
        )
        commits.append(
            {
                "version": version,
                "delta_size": delta.size(),
                "views_affected": incremental.views_affected,
                "rows_added": incremental.rows_added,
                "rows_removed": incremental.rows_removed,
                "incremental_units": incremental.cost_units,
                "affected_rebuild_units": incremental.rebuild_cost_units,
                "full_rebuild_units": rebuilt.build_cost_units,
                "exact": _views_exact(catalog, head),
            }
        )
    return {
        "initial_build_units": initial_build_units,
        "views": len(catalog),
        "commits": commits,
        "totals": {
            "incremental_units": sum(
                c["incremental_units"] for c in commits
            ),
            "full_rebuild_units": sum(
                c["full_rebuild_units"] for c in commits
            ),
        },
    }


def run_bench(smoke: bool = False) -> Dict[str, object]:
    """The full ablation; returns the JSON-ready payload."""
    scale = 1 if smoke else 2
    graph = LubmGenerator(num_universities=scale, seed=42).generate()
    queries = (
        {name: QUERIES[name] for name in ("star", "complex")}
        if smoke
        else QUERIES
    )
    return {
        "benchmark": "views-ablation",
        "dataset": {"generator": "lubm", "scale": scale, "seed": 42},
        "engine": "SPARQLGX",
        "threshold": THRESHOLD,
        "query_profiles": {
            "views-off": _run_queries(graph, False, queries),
            "views-on": _run_queries(graph, True, queries),
        },
        "maintenance": _run_maintenance(graph),
        "queries": sorted(queries),
        "smoke": smoke,
    }


def check_payload(payload: Dict[str, object]) -> ClaimResult:
    """The ablation's headline claims, verified against *payload*."""
    profiles = payload["query_profiles"]
    queries = payload["queries"]
    maintenance = payload["maintenance"]
    rows_identical = all(
        profiles["views-off"][q]["rows"] == profiles["views-on"][q]["rows"]
        for q in queries
    )
    views_used = (
        sum(profiles["views-on"][q]["view_scans"] for q in queries) > 0
    )
    scans_no_worse = all(
        profiles["views-on"][q]["records_scanned"]
        <= profiles["views-off"][q]["records_scanned"]
        for q in queries
    )
    incremental_cheaper = (
        maintenance["totals"]["incremental_units"]
        < maintenance["totals"]["full_rebuild_units"]
    )
    maintenance_exact = all(c["exact"] for c in maintenance["commits"])
    return ClaimResult(
        "VIEWS-ablation",
        holds=rows_identical
        and views_used
        and scans_no_worse
        and incremental_cheaper
        and maintenance_exact,
        evidence={
            "rows_identical": rows_identical,
            "views_used": views_used,
            "scans_no_worse": scans_no_worse,
            "incremental_units": maintenance["totals"]["incremental_units"],
            "full_rebuild_units": maintenance["totals"][
                "full_rebuild_units"
            ],
            "maintenance_exact": maintenance_exact,
        },
    )


def _table(payload) -> str:
    rows: List[List[object]] = []
    for profile in ("views-off", "views-on"):
        for query in payload["queries"]:
            cell = payload["query_profiles"][profile][query]
            rows.append(
                [
                    profile,
                    query,
                    cell["rows"],
                    cell["records_scanned"],
                    cell["join_comparisons"],
                    cell["view_scans"],
                ]
            )
    query_table = format_table(
        ["profile", "query", "rows", "scanned", "comparisons", "view scans"],
        rows,
    )
    maintenance_rows = [
        [
            c["version"],
            c["delta_size"],
            c["views_affected"],
            c["incremental_units"],
            c["full_rebuild_units"],
            "yes" if c["exact"] else "NO",
        ]
        for c in payload["maintenance"]["commits"]
    ]
    maintenance_table = format_table(
        ["commit", "delta", "affected", "incremental", "rebuild", "exact"],
        maintenance_rows,
    )
    return query_table + "\n" + maintenance_table


def test_views_ablation(benchmark):
    payload = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    result = check_payload(payload)
    report(
        "VIEWS: materialization + maintenance ablation (LUBM, SPARQLGX)",
        _table(payload) + "\n" + result.summary(),
    )
    assert result.holds


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="materialized ExtVP view ablation benchmark"
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default="BENCH_views.json",
        help="where to write the JSON artifact (default BENCH_views.json)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny fixed-size run for CI (smaller data, fewer queries)",
    )
    args = parser.parse_args(argv)
    payload = run_bench(smoke=args.smoke)
    result = check_payload(payload)
    print(_table(payload))
    print(result.summary())
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.output)
    return 0 if result.holds else 1


if __name__ == "__main__":
    sys.exit(main())
