"""CLM-MESG: SparkRDF's multi-level index claims (Section IV-B3).

Paper: the MESG index "divides predicate files according to the type of
subjects and objects" (CR/RC) and "creates an index that combines every
part of the triple" (CRC) "in order to exploit all the information that
may be available for a triple"; class messages let the engine "avoid
reading many unnecessary data, and rdf:type triple patterns can be
removed"; dynamic pre-partitioning "guarantees that the records sharing
the same variable value will be read into the same partition".

Measured: records read per index level for progressively class-constrained
queries, and the locality of the pre-partitioned joins.
"""

from repro.bench import format_table
from repro.core.assessment import ClaimResult
from repro.data.lubm import LubmGenerator
from repro.spark.context import SparkContext
from repro.systems import SparkRdfMesgEngine

from conftest import report

PREFIX = (
    "PREFIX lubm: <http://repro.example.org/lubm#>\n"
    "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
)

UNCONSTRAINED = PREFIX + "SELECT ?s ?c WHERE { ?s lubm:takesCourse ?c }"
SUBJECT_CLASS = PREFIX + """
SELECT ?s ?c WHERE {
  ?s rdf:type lubm:GraduateStudent .
  ?s lubm:takesCourse ?c .
}
"""
BOTH_CLASSES = PREFIX + """
SELECT ?s ?c WHERE {
  ?s rdf:type lubm:GraduateStudent .
  ?s lubm:takesCourse ?c .
  ?c rdf:type lubm:Course .
}
"""


def test_index_levels_cut_reads(benchmark, lubm_graph):
    engine = SparkRdfMesgEngine(SparkContext(4))
    engine.load(lubm_graph)

    def run_all():
        reads = {}
        for name, query in (
            ("relation only", UNCONSTRAINED),
            ("CR (subject class)", SUBJECT_CLASS),
            ("CRC (both classes)", BOTH_CLASSES),
        ):
            engine.execute(query)
            reads[name] = dict(engine.last_index_reads)
        return reads

    reads = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [name, sum(levels.values()), str(levels)]
        for name, levels in reads.items()
    ]
    rel_reads = sum(reads["relation only"].values())
    cr_reads = sum(reads["CR (subject class)"].values())
    crc_reads = sum(reads["CRC (both classes)"].values())
    result = ClaimResult(
        "CLM-MESG",
        holds=cr_reads < rel_reads
        and crc_reads <= cr_reads
        and "REL" not in reads["CR (subject class)"]
        and "CRC" in reads["CRC (both classes)"],
        evidence={
            "relation_reads": rel_reads,
            "cr_reads": cr_reads,
            "crc_reads": crc_reads,
        },
    )
    report(
        "CLM-MESG: class information selects narrower index files",
        format_table(["query", "records read", "per level"], rows)
        + "\n" + result.summary(),
    )
    assert result.holds


def test_type_patterns_removed(benchmark, lubm_graph):
    engine = SparkRdfMesgEngine(SparkContext(4))
    engine.load(lubm_graph)

    def run():
        engine.execute(SUBJECT_CLASS)
        return dict(engine.last_index_reads)

    reads = benchmark.pedantic(run, rounds=1, iterations=1)
    # The rdf:type pattern never touches the class index at query time:
    # it was rewritten into a class message for the CR lookup.
    result = ClaimResult(
        "CLM-MESG-type-elim",
        holds="CLASS" not in reads and "CR" in reads,
        evidence=reads,
    )
    report(
        "CLM-MESG: rdf:type patterns removed via class messages",
        result.summary(),
    )
    assert result.holds


def test_dynamic_prepartitioning_locality(benchmark, lubm_graph):
    engine = SparkRdfMesgEngine(SparkContext(4))
    engine.load(lubm_graph)

    def run():
        before = engine.ctx.metrics.snapshot()
        engine.execute(LubmGenerator.query_star())
        return engine.ctx.metrics.snapshot() - before

    cost = benchmark.pedantic(run, rounds=1, iterations=1)
    result = ClaimResult(
        "CLM-MESG-prepartition",
        holds=cost.shuffle_records > 0 and cost.locality_fraction() > 0.9,
        evidence={
            "shuffle_records": cost.shuffle_records,
            "locality": round(cost.locality_fraction(), 3),
        },
    )
    report(
        "CLM-MESG: pre-partitioned RDSG joins stay on their executor",
        result.summary(),
    )
    assert result.holds
