"""CLM-VP: SPARQLGX's vertical partitioning claim (Section IV-A1).

Paper: "a triple (s p o) is stored in a file named p whose content keeps
only s and o entries.  By following this approach, the memory footprint is
reduced and the response time is minimized when queries have bounded
predicates."

Measured: records scanned for bounded- vs unbounded-predicate queries on
SPARQLGX, against the full-scan naive baseline; plus the per-triple memory
footprint of (s, o) stores vs full triples.
"""

from repro.bench import format_table
from repro.core.assessment import ClaimResult
from repro.data.watdiv import WatdivGenerator
from repro.spark.context import SparkContext
from repro.spark.metrics import estimate_size
from repro.systems import NaiveEngine, SparqlgxEngine

from conftest import report

BOUNDED = WatdivGenerator.query_bounded_predicate()
UNBOUNDED = WatdivGenerator.query_unbounded_predicate()


def _scan_cost(engine, query_text):
    before = engine.ctx.metrics.snapshot()
    engine.execute(query_text)
    return (engine.ctx.metrics.snapshot() - before).records_scanned


def test_bounded_predicates_scan_less(benchmark, watdiv_graph):
    sparqlgx = SparqlgxEngine(SparkContext(4))
    sparqlgx.load(watdiv_graph)
    naive = NaiveEngine(SparkContext(4))
    naive.load(watdiv_graph)

    def run_all():
        return {
            ("SPARQLGX", "bounded"): _scan_cost(sparqlgx, BOUNDED),
            ("SPARQLGX", "unbounded"): _scan_cost(sparqlgx, UNBOUNDED),
            ("Naive", "bounded"): _scan_cost(naive, BOUNDED),
        }

    scans = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[e, q, s] for (e, q), s in sorted(scans.items())]
    result = ClaimResult(
        "CLM-VP",
        holds=scans[("SPARQLGX", "bounded")] < scans[("Naive", "bounded")]
        and scans[("SPARQLGX", "bounded")]
        < scans[("SPARQLGX", "unbounded")],
        evidence={k[0] + "/" + k[1]: v for k, v in scans.items()},
    )
    report(
        "CLM-VP: vertical partitioning pays off for bounded predicates",
        format_table(["engine", "query", "records scanned"], rows)
        + "\n" + result.summary(),
    )
    assert result.holds


def test_memory_footprint_reduced(benchmark, watdiv_graph):
    def footprints():
        full = sum(
            estimate_size(t.as_tuple()) for t in watdiv_graph
        )
        vertical = sum(
            estimate_size((t.subject, t.object)) for t in watdiv_graph
        )
        return full, vertical

    full, vertical = benchmark(footprints)
    result = ClaimResult(
        "CLM-VP-footprint",
        holds=vertical < full,
        evidence={"full_bytes": full, "vertical_bytes": vertical},
    )
    report(
        "CLM-VP: (s, o) stores shrink the memory footprint",
        result.summary(),
    )
    assert result.holds
