"""ROUTE: adaptive per-shape routing vs every fixed single engine.

The survey's central observation is that no single Spark RDF mechanism
wins every query shape; ``repro.routing`` operationalizes it as a
calibrated ensemble (docs/ROUTING.md).  This benchmark is the ablation
behind the two headline claims:

1. **Ensemble beats the best fixed engine.**  Over a shape-mixed
   workload driven for enough rounds to amortize the deterministic
   exploration sweep, the routed ensemble's total cost units are no
   higher than the best single fixed engine's -- while answering every
   query identically (row counts are cross-checked).

2. **Seeded mis-calibration is corrected within a bounded number of
   requests.**  An operator-seeded prior claiming the full-scan
   ``Naive`` baseline is the cheapest star engine mis-routes star
   queries; the feedback blend must out-vote it within
   ``MISCALIBRATION_BOUND`` requests.

Run as a script for the deterministic JSON artifact::

    PYTHONPATH=src python benchmarks/bench_routing.py --output BENCH_routing.json

or under pytest (the test asserts both claims).  All numbers are
simulated-cluster cost units; fixed seed, byte-reproducible.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.bench import format_table
from repro.core.assessment import ClaimResult
from repro.data.lubm import LubmGenerator
from repro.routing import RoutingPolicy
from repro.runtime import resolve_engine
from repro.server.loadgen import build_shape_workload
from repro.spark.context import SparkContext
from repro.spark.deadline import cost_units
from repro.sparql.parser import parse_sparql

try:
    from conftest import report
except ImportError:  # script mode: benchmarks/ is not on sys.path
    def report(title, body):
        banner = "=" * 72
        print("\n%s\n%s\n%s\n%s" % (banner, title, banner, body))

#: Fixed-engine baselines: the routed pool minus the last-resort
#: full-scan engine (it loses on every shape by an order of magnitude
#: and would only pad the table).
FIXED_ENGINES = ("HAQWA", "S2RDF", "SPARQL-Hybrid", "SPARQLGX", "SparkRDF")

#: Rounds over the workload: enough that the routed ensemble's
#: exploration (the deterministic sweep, then the optimism cycle in
#: which each engine's factor climbs to its true ratio only while being
#: exploited) is amortized against its per-round advantage.  The
#: crossover against the best fixed engine is near 100 rounds on this
#: workload; 150 leaves a stable margin.
ROUNDS = 150
SMOKE_ROUNDS = 6

#: The mis-calibration claim: a seeded wrong prior must stop winning
#: within this many star requests.
MISCALIBRATION_BOUND = 8
MISCALIBRATION_FACTOR = 0.001


def _workload(graph, seed: int):
    """(name, parsed query) pairs of the shape-stratified workload."""
    return [
        (name, parse_sparql(text))
        for name, text in build_shape_workload(graph, per_shape=1, seed=seed)
    ]


def _shape_of(name: str) -> str:
    return name.rstrip("0123456789")


def _fresh_engine(name: str, graph):
    engine = resolve_engine(name)(SparkContext(4))
    engine.load(graph)
    return engine


def _measure(engine, query) -> Dict[str, int]:
    before = engine.ctx.metrics.snapshot()
    result = engine.execute(query)
    units = cost_units(engine.ctx.metrics.snapshot() - before)
    return {"units": units, "rows": len(result)}


def _run_fixed(graph, engine_name: str, workload, rounds: int):
    """Total/per-shape cost units of one engine serving every round."""
    engine = _fresh_engine(engine_name, graph)
    per_shape: Dict[str, int] = {}
    rows: Dict[str, int] = {}
    total = 0
    for _round in range(rounds):
        for name, query in workload:
            measured = _measure(engine, query)
            total += measured["units"]
            shape = _shape_of(name)
            per_shape[shape] = per_shape.get(shape, 0) + measured["units"]
            rows[name] = measured["rows"]
    return {
        "total_units": total,
        "per_shape": {shape: per_shape[shape] for shape in sorted(per_shape)},
        "rows": {name: rows[name] for name in sorted(rows)},
    }


def _run_routed(graph, workload, rounds: int):
    """The ensemble: decide, execute on the winner, feed the units back."""
    policy = RoutingPolicy.for_graph(graph)
    engines = {
        name: _fresh_engine(name, graph)
        for name in dict.fromkeys(list(policy.engines) + list(policy.fallbacks))
    }
    per_shape: Dict[str, int] = {}
    rows: Dict[str, int] = {}
    total = 0
    for _round in range(rounds):
        for name, query in workload:
            decision = policy.decide(query)
            measured = _measure(engines[decision.winner], query)
            policy.record(decision, measured["units"])
            total += measured["units"]
            shape = _shape_of(name)
            per_shape[shape] = per_shape.get(shape, 0) + measured["units"]
            rows[name] = measured["rows"]
    snapshot = policy.snapshot()
    return {
        "total_units": total,
        "per_shape": {shape: per_shape[shape] for shape in sorted(per_shape)},
        "rows": {name: rows[name] for name in sorted(rows)},
        "decisions": snapshot["decisions"],
        "fallback_decisions": snapshot["fallback_decisions"],
    }


def _run_miscalibration(graph, workload):
    """Seed a wrong prior and count requests until it stops winning."""
    policy = RoutingPolicy.for_graph(graph)
    policy.feedback.seed_prior("Naive", "star", MISCALIBRATION_FACTOR)
    star_query = next(
        query for name, query in workload if _shape_of(name) == "star"
    )
    engines: Dict[str, object] = {}
    corrected_at = None
    winners: List[str] = []
    for request in range(1, MISCALIBRATION_BOUND + 5):
        decision = policy.decide(star_query)
        winners.append(decision.winner)
        if decision.winner != "Naive" and corrected_at is None:
            corrected_at = request
            break
        if decision.winner not in engines:
            engines[decision.winner] = _fresh_engine(decision.winner, graph)
        measured = _measure(engines[decision.winner], star_query)
        policy.record(decision, measured["units"])
    return {
        "seeded_engine": "Naive",
        "seeded_shape": "star",
        "seeded_factor": MISCALIBRATION_FACTOR,
        "bound": MISCALIBRATION_BOUND,
        "corrected_at": corrected_at,
        "winners": winners,
    }


def run_bench(smoke: bool = False) -> Dict[str, object]:
    """The full ablation; returns the JSON-ready payload."""
    graph = LubmGenerator(num_universities=1, seed=42).generate()
    rounds = SMOKE_ROUNDS if smoke else ROUNDS
    workload = _workload(graph, seed=42)
    fixed = {
        name: _run_fixed(graph, name, workload, rounds)
        for name in FIXED_ENGINES
    }
    routed = _run_routed(graph, workload, rounds)
    return {
        "benchmark": "routing-ablation",
        "dataset": {"generator": "lubm", "scale": 1, "seed": 42},
        "workload": {
            "per_shape": 1,
            "seed": 42,
            "queries": sorted(name for name, _query in workload),
        },
        "rounds": rounds,
        "fixed": fixed,
        "routed": routed,
        "miscalibration": _run_miscalibration(graph, workload),
        "smoke": smoke,
    }


def check_payload(payload: Dict[str, object]) -> ClaimResult:
    """The ablation's headline claims, verified against *payload*."""
    fixed = payload["fixed"]
    routed = payload["routed"]
    best_fixed = min(fixed, key=lambda name: (fixed[name]["total_units"], name))
    # A smoke run is too short to amortize exploration by construction;
    # the ensemble claim is asserted on the full (committed) artifact.
    ensemble_wins = payload["smoke"] or (
        routed["total_units"] <= fixed[best_fixed]["total_units"]
    )
    rows_identical = all(
        fixed[name]["rows"] == routed["rows"] for name in fixed
    )
    correction = payload["miscalibration"]
    corrected_in_bound = (
        correction["corrected_at"] is not None
        and correction["corrected_at"] <= correction["bound"]
    )
    return ClaimResult(
        "ROUTE-ablation",
        holds=ensemble_wins and rows_identical and corrected_in_bound,
        evidence={
            "routed_units": routed["total_units"],
            "best_fixed": best_fixed,
            "best_fixed_units": fixed[best_fixed]["total_units"],
            "rows_identical": rows_identical,
            "corrected_at": correction["corrected_at"],
            "correction_bound": correction["bound"],
        },
    )


def _table(payload) -> str:
    shapes = sorted(payload["routed"]["per_shape"])
    rows: List[List[object]] = []
    for name in list(payload["fixed"]) + ["routed"]:
        record = (
            payload["routed"] if name == "routed" else payload["fixed"][name]
        )
        rows.append(
            [name]
            + [record["per_shape"][shape] for shape in shapes]
            + [record["total_units"]]
        )
    return format_table(["config"] + shapes + ["total units"], rows)


def test_routing_ablation(benchmark):
    payload = benchmark.pedantic(
        lambda: run_bench(smoke=True), rounds=1, iterations=1
    )
    result = check_payload(payload)
    report(
        "ROUTE: adaptive ensemble vs fixed engines (LUBM, %d rounds)"
        % payload["rounds"],
        _table(payload) + "\n" + result.summary(),
    )
    assert result.holds


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="adaptive routing ablation benchmark"
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default="BENCH_routing.json",
        help="where to write the JSON artifact (default BENCH_routing.json)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny fixed-size run for CI (fewer rounds)",
    )
    args = parser.parse_args(argv)
    payload = run_bench(smoke=args.smoke)
    result = check_payload(payload)
    print(_table(payload))
    print(result.summary())
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.output)
    return 0 if result.holds else 1


if __name__ == "__main__":
    sys.exit(main())
