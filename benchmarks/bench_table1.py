"""TAB1: regenerate Table I -- systems by data model x Spark abstraction.

Paper artifact: "TABLE I. A taxonomy of the RDF query processing
approaches with respect to data model and Apache Spark abstraction."
The reproduction derives the same grid from the engines' machine-readable
profiles and asserts cell-exact agreement with the published table.
"""

from repro.core import default_registry, render_table_i
from repro.core.reports import PAPER_TABLE_I, table_i_cells

from conftest import report


def test_table1_classification(benchmark):
    registry = default_registry()
    cells = benchmark(table_i_cells, registry)
    report("TABLE I (reproduced)", render_table_i(registry))
    assert set(cells) == set(PAPER_TABLE_I)
    for key, expected in PAPER_TABLE_I.items():
        assert tuple(sorted(cells[key])) == tuple(sorted(expected)), key
