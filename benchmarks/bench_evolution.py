"""EVO: evolving RDF data (the Section V dynamicity direction).

Paper: RDF data "are constantly evolving ... the need to keep track of
the different versions of the data, so as to be able to have access not
only to the latest version, but also to previous ones", and "the next
generation parallel RDF query answering systems should be able to handle
evolving data in an uninterrupted manner".

Measured: the storage/replay trade-off of the three archiving policies
over a commit history, and the cost of keeping a running engine current
(incremental vertical-store updates vs full rewrites).
"""

from repro.bench import format_table
from repro.core.assessment import ClaimResult
from repro.data.lubm import LUBM
from repro.evolution import (
    ArchivePolicy,
    UpdatableNaiveEngine,
    UpdatableSparqlgxEngine,
    VersionedGraph,
)
from repro.rdf.triple import Triple
from repro.spark.context import SparkContext

from conftest import report


def _history(policy, base, commits=9):
    store = VersionedGraph(base, policy=policy, checkpoint_every=3)
    for i in range(commits):
        store.commit(
            additions=[
                Triple(
                    LUBM["Evolved%d_%d" % (i, j)],
                    LUBM.memberOf,
                    LUBM.Department0_0,
                )
                for j in range(3)
            ]
        )
    return store


def test_archive_policy_tradeoff(benchmark, lubm_small):
    def sweep():
        rows = []
        numbers = {}
        for policy in ArchivePolicy:
            store = _history(policy, lubm_small)
            # Worst-case reconstruction: the version farthest from any
            # snapshot under each policy.
            store.snapshot(5)
            numbers[policy] = (
                store.storage_triples(),
                store.last_replay_cost,
            )
            rows.append(
                [
                    policy.value,
                    numbers[policy][0],
                    numbers[policy][1],
                ]
            )
        return rows, numbers

    rows, numbers = benchmark.pedantic(sweep, rounds=1, iterations=1)
    storage = {p: n[0] for p, n in numbers.items()}
    replay = {p: n[1] for p, n in numbers.items()}
    result = ClaimResult(
        "EVO-archive",
        holds=storage[ArchivePolicy.DELTA]
        < storage[ArchivePolicy.HYBRID]
        < storage[ArchivePolicy.FULL]
        and replay[ArchivePolicy.FULL]
        <= replay[ArchivePolicy.HYBRID]
        <= replay[ArchivePolicy.DELTA],
        evidence={
            "storage": {p.value: s for p, s in storage.items()},
            "replay": {p.value: r for p, r in replay.items()},
        },
    )
    report(
        "EVO: archiving policies -- storage vs reconstruction",
        format_table(
            ["policy", "stored triples", "replayed triples (v5)"], rows
        )
        + "\n" + result.summary(),
    )
    assert result.holds


def test_cross_version_queries(benchmark, lubm_small):
    store = _history(ArchivePolicy.HYBRID, lubm_small)
    query = (
        "PREFIX lubm: <http://repro.example.org/lubm#>\n"
        "SELECT ?s WHERE { ?s lubm:memberOf lubm:Department0_0 }"
    )

    def counts():
        return [len(store.query_version(query, v)) for v in (0, 3, 6, 9)]

    series = benchmark.pedantic(counts, rounds=1, iterations=1)
    result = ClaimResult(
        "EVO-versions",
        holds=series == sorted(series) and series[-1] - series[0] == 27,
        evidence={"answers_by_version": series},
    )
    report(
        "EVO: the same query over versions 0/3/6/9 (access to the past)",
        result.summary(),
    )
    assert result.holds


def test_uninterrupted_updates(benchmark, lubm_small):
    additions = [
        Triple(LUBM["Live%d" % i], LUBM.memberOf, LUBM.Department0_0)
        for i in range(5)
    ]
    query = (
        "PREFIX lubm: <http://repro.example.org/lubm#>\n"
        "SELECT ?s WHERE { ?s lubm:memberOf ?d }"
    )

    def run():
        incremental = UpdatableSparqlgxEngine(SparkContext(4))
        incremental.load(lubm_small)
        rewrite_all = UpdatableNaiveEngine(SparkContext(4))
        rewrite_all.load(lubm_small)
        incremental.apply_update(additions=additions)
        rewrite_all.apply_update(additions=additions)
        rows_inc = len(incremental.execute(query))
        rows_naive = len(rewrite_all.execute(query))
        return (
            incremental.last_update_touched,
            rewrite_all.last_update_touched,
            rows_inc,
            rows_naive,
        )

    touched_inc, touched_naive, rows_inc, rows_naive = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    result = ClaimResult(
        "EVO-live",
        holds=rows_inc == rows_naive
        and touched_inc * 5 < touched_naive,
        evidence={
            "records_rewritten_incremental": touched_inc,
            "records_rewritten_full": touched_naive,
            "answers_agree": rows_inc == rows_naive,
        },
    )
    report(
        "EVO: incremental updates touch only the affected stores",
        format_table(
            ["engine", "records rewritten by update"],
            [
                ["SPARQLGX + incremental stores", touched_inc],
                ["naive (full rewrite)", touched_naive],
            ],
        )
        + "\n" + result.summary(),
    )
    assert result.holds
