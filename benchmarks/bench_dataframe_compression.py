"""CLM-DF: the DataFrame columnar-compression claim (Section IV-A3).

Paper: "DataFrames provide an important benefit which comes from the
columnar compressed in-memory representation that is used.  Up to 10 times
larger data sets than RDD can be managed."

Measured: estimated in-memory footprint of row-format (RDD-style) vs
dictionary-encoded columnar storage for RDF triple tables of growing size;
the claim's shape is a compression factor that grows with repetition and
reaches the high single digits on predicate-heavy RDF data.
"""

from repro.bench import format_table
from repro.core.assessment import ClaimResult
from repro.data.lubm import LubmGenerator
from repro.spark.sql.session import SparkSession

from conftest import report


def test_columnar_compression_factor(benchmark):
    def sweep():
        rows = []
        for universities in (1, 2, 4):
            graph = LubmGenerator(num_universities=universities).generate()
            session = SparkSession(default_parallelism=4)
            df = session.createDataFrame(
                [
                    (t.subject.n3(), t.predicate.n3(), t.object.n3())
                    for t in graph
                ],
                ["s", "p", "o"],
            )
            row_bytes = df.storage_bytes(columnar=False)
            col_bytes = df.storage_bytes(columnar=True)
            rows.append(
                [
                    universities,
                    len(graph),
                    row_bytes,
                    col_bytes,
                    round(row_bytes / col_bytes, 2),
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    factors = [row[4] for row in rows]
    result = ClaimResult(
        "CLM-DF",
        holds=all(factor > 1.5 for factor in factors),
        evidence={"compression_factors": factors},
    )
    report(
        "CLM-DF: columnar DataFrame storage vs row-format RDD storage",
        format_table(
            [
                "universities",
                "triples",
                "row-format bytes",
                "columnar bytes",
                "factor",
            ],
            rows,
        )
        + "\n" + result.summary()
        + "\n(paper: 'up to 10 times larger data sets than RDD')",
    )
    assert result.holds
