"""CLM-ENC: HAQWA's integer encoding claim (Section IV-A1).

Paper: "HAQWA performs an encoding of string values to integer ones on
data, which minimizes data volume and makes processing more efficient."

Measured: raw vs dictionary-encoded volume (including the dictionary
itself) across dataset scales, and the shuffle-byte saving the encoding
buys a distributed join.
"""

from repro.bench import format_table
from repro.core.assessment import ClaimResult
from repro.data.lubm import LubmGenerator
from repro.rdf.encoding import (
    Dictionary,
    encoded_volume,
    encoded_volume_ratio,
    raw_volume,
)
from repro.spark.context import SparkContext
from repro.spark.partitioner import HashPartitioner

from conftest import report


def test_encoding_minimizes_volume(benchmark):
    def sweep():
        rows = []
        for universities in (1, 2, 4):
            graph = LubmGenerator(num_universities=universities).generate()
            triples = list(graph)
            ratio = encoded_volume_ratio(triples)
            dictionary = Dictionary()
            encoded = dictionary.encode_all(triples)
            rows.append(
                [
                    universities,
                    len(triples),
                    raw_volume(triples),
                    encoded_volume(encoded, dictionary),
                    round(ratio, 2),
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    ratios = [row[4] for row in rows]
    result = ClaimResult(
        "CLM-ENC",
        holds=all(ratio > 1.5 for ratio in ratios)
        and ratios == sorted(ratios),
        evidence={"ratios_by_scale": ratios},
    )
    report(
        "CLM-ENC: string-to-integer encoding minimizes data volume",
        format_table(
            ["universities", "triples", "raw bytes", "encoded bytes", "ratio"],
            rows,
        )
        + "\n" + result.summary(),
    )
    assert result.holds


def test_encoding_shrinks_shuffles(benchmark, lubm_small):
    """The same shuffle costs fewer bytes on encoded triples."""
    triples = [t.as_tuple() for t in sorted(lubm_small)]
    dictionary = Dictionary()
    encoded = [dictionary.encode(t).as_tuple() for t in sorted(lubm_small)]

    def shuffle_bytes(records):
        sc = SparkContext(4)
        keyed = sc.parallelize(records).keyBy(lambda t: t[0])
        keyed.partitionBy(HashPartitioner(4)).collect()
        return sc.metrics.snapshot().shuffle_bytes

    raw_bytes = shuffle_bytes(triples)
    encoded_bytes = benchmark.pedantic(
        lambda: shuffle_bytes(encoded), rounds=1, iterations=1
    )
    result = ClaimResult(
        "CLM-ENC-shuffle",
        holds=encoded_bytes * 2 < raw_bytes,
        evidence={
            "raw_shuffle_bytes": raw_bytes,
            "encoded_shuffle_bytes": encoded_bytes,
        },
    )
    report(
        "CLM-ENC: encoded triples shuffle far fewer bytes",
        result.summary(),
    )
    assert result.holds
