"""CLM-PRUNE: local search-space pruning of Bahrami et al. (Section IV-B2).

Paper: "for each query all triples in the dataset that do not match BGPs
predicates get discarded.  This technique results in a new graph created
from this temporary dataset, which has a much smaller search space."

Measured: surviving-edge counts for queries whose predicate sets cover a
growing fraction of the data, plus the no-pruning case with a variable
predicate.
"""

from repro.bench import format_table
from repro.core.assessment import ClaimResult
from repro.data.lubm import LubmGenerator
from repro.spark.context import SparkContext
from repro.systems import GraphFramesEngine

from conftest import report

PREFIX = (
    "PREFIX lubm: <http://repro.example.org/lubm#>\n"
    "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
)

QUERIES = {
    "one predicate": PREFIX + "SELECT ?s ?o WHERE { ?s lubm:advisor ?o }",
    "two predicates": PREFIX
    + "SELECT ?s ?p ?d WHERE { ?s lubm:advisor ?p . ?p lubm:worksFor ?d }",
    "four predicates": LubmGenerator.query_snowflake(),
    "variable predicate": PREFIX + "SELECT ?s ?p ?o WHERE { ?s ?p ?o }",
}


def test_pruning_shrinks_search_space(benchmark, lubm_graph):
    engine = GraphFramesEngine(SparkContext(4))
    engine.load(lubm_graph)

    def run_all():
        sizes = {}
        for name, query in QUERIES.items():
            engine.execute(query)
            sizes[name] = engine.last_pruned_edge_count
        return sizes

    sizes = benchmark.pedantic(run_all, rounds=1, iterations=1)
    total = len(lubm_graph)
    rows = [
        [name, size, "%.0f%%" % (100.0 * size / total)]
        for name, size in sizes.items()
    ]
    result = ClaimResult(
        "CLM-PRUNE",
        holds=sizes["one predicate"]
        < sizes["two predicates"]
        < sizes["four predicates"]
        < total
        and sizes["variable predicate"] == total,
        evidence={"total_edges": total, **sizes},
    )
    report(
        "CLM-PRUNE: local search-space pruning",
        format_table(["query", "surviving edges", "of dataset"], rows)
        + "\n" + result.summary(),
    )
    assert result.holds


def test_frequency_ordering_is_nondescending(benchmark, lubm_graph):
    engine = GraphFramesEngine(SparkContext(4))
    engine.load(lubm_graph)
    from repro.sparql.parser import parse_sparql

    query = parse_sparql(LubmGenerator.query_snowflake())

    ordered = benchmark(
        engine._order_patterns, query.where.triple_patterns()
    )
    frequencies = [
        engine.predicate_frequency.get(p.predicate, 0) for p in ordered
    ]
    result = ClaimResult(
        "CLM-PRUNE-order",
        holds=frequencies == sorted(frequencies),
        evidence={"frequencies": frequencies},
    )
    report(
        "CLM-PRUNE: sub-queries sorted in non-descending predicate frequency",
        result.summary(),
    )
    assert result.holds
