"""ABL-PART: partitioning-policy ablation (the Section V argument).

Paper: "they end up using simple partitioning techniques like vertical or
hash partitioning ... we argue that data partitioning is an essential
part of efficient query processing and that further research is required"
-- pointing at semantic partitioning [27] and at graph partitioning that
minimizes "the edge-cut between partitions".

Measured: hash vs semantic vs LDG edge-cut placement on the same graph,
along the axes each policy targets -- class-scan fan-out, star locality,
subject-object hop locality (edge-cut), and load balance.
"""

from repro.bench import format_table
from repro.core.assessment import ClaimResult
from repro.data.lubm import LUBM
from repro.partitioning import (
    EdgeCutPartitioner,
    PartitionedTripleStore,
    SemanticPartitioner,
)
from repro.spark.context import SparkContext
from repro.spark.partitioner import HashPartitioner

from conftest import report


def test_partitioning_policy_ablation(benchmark, lubm_graph):
    sc = SparkContext(4)

    def build_all():
        policies = {
            "hash (surveyed systems)": HashPartitioner(4),
            "semantic [27]": SemanticPartitioner(4, lubm_graph),
            "edge-cut (LDG)": EdgeCutPartitioner(4, lubm_graph),
        }
        rows = []
        metrics = {}
        for name, partitioner in policies.items():
            store = PartitionedTripleStore(sc, lubm_graph, partitioner)
            entry = {
                "class_scan": store.class_scan_partitions(LUBM.Course),
                "edge_cut": store.edge_cut_fraction(),
                "hop_local": store.linear_hop_locality(LUBM.worksFor),
                "balance": store.balance(),
            }
            metrics[name] = entry
            rows.append(
                [
                    name,
                    entry["class_scan"],
                    "%.2f" % entry["edge_cut"],
                    "%.2f" % entry["hop_local"],
                    "%.2f" % entry["balance"],
                ]
            )
        return rows, metrics

    rows, metrics = benchmark.pedantic(build_all, rounds=1, iterations=1)
    hash_metrics = metrics["hash (surveyed systems)"]
    semantic = metrics["semantic [27]"]
    edgecut = metrics["edge-cut (LDG)"]
    result = ClaimResult(
        "ABL-PART",
        holds=semantic["class_scan"] == 1
        and semantic["class_scan"] < hash_metrics["class_scan"]
        and edgecut["edge_cut"] < hash_metrics["edge_cut"]
        and edgecut["balance"] < 1.5,
        evidence={
            "hash_class_scan": hash_metrics["class_scan"],
            "semantic_class_scan": semantic["class_scan"],
            "hash_edge_cut": round(hash_metrics["edge_cut"], 2),
            "ldg_edge_cut": round(edgecut["edge_cut"], 2),
        },
    )
    report(
        "ABL-PART: hash vs semantic vs edge-cut partitioning",
        format_table(
            [
                "policy",
                "partitions per class scan",
                "edge-cut",
                "hop locality",
                "balance",
            ],
            rows,
        )
        + "\n" + result.summary()
        + "\n(the future-work policies dominate hash partitioning exactly "
        "where Section V predicts)",
    )
    assert result.holds


def test_star_queries_local_under_every_subject_policy(benchmark, lubm_graph):
    """Any subject-keyed policy keeps stars local -- the invariant that
    makes the advanced policies drop-in replacements for subject hashing."""
    from repro.sparql.parser import parse_sparql

    query = parse_sparql(
        "PREFIX lubm: <http://repro.example.org/lubm#>\n"
        "SELECT * WHERE { ?s lubm:memberOf ?d . ?s lubm:age ?a }"
    )
    sc = SparkContext(4)

    def run_all():
        shuffles = {}
        for name, partitioner in (
            ("hash", HashPartitioner(4)),
            ("semantic", SemanticPartitioner(4, lubm_graph)),
            ("edge-cut", EdgeCutPartitioner(4, lubm_graph)),
        ):
            store = PartitionedTripleStore(sc, lubm_graph, partitioner)
            before = sc.metrics.snapshot()
            store.evaluate_star_locally(
                query.where.triple_patterns()
            ).collect()
            shuffles[name] = (
                sc.metrics.snapshot() - before
            ).shuffle_records
        return shuffles

    shuffles = benchmark.pedantic(run_all, rounds=1, iterations=1)
    result = ClaimResult(
        "ABL-PART-star",
        holds=all(value == 0 for value in shuffles.values()),
        evidence=shuffles,
    )
    report(
        "ABL-PART: star locality holds under all subject-keyed policies",
        result.summary(),
    )
    assert result.holds
