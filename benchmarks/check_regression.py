"""The CI perf-trajectory gate: committed BENCH artifacts are a floor.

Every ``BENCH_*.json`` at the repository root is byte-reproducible: the
numbers are simulated cost units, join comparisons, and cache counters,
never wall-clock, so re-running a bench on an unchanged tree reproduces
the committed file exactly.  That makes the perf trajectory enforceable
with **tolerance zero** -- any difference between a fresh run and the
committed artifact is a code change, not noise.

This script re-runs each deterministic bench and compares the fresh
payload against its committed artifact, leaf by leaf:

* a *perf* leaf (``join_comparisons``, ``*_units``, latency
  percentiles, ...) that **increased** is reported as a ``regression``;
* a perf leaf that **decreased** is an ``improvement`` -- the gate
  still fails (the artifact must be re-committed so the better number
  becomes the new floor), but the report says which way it moved;
* any other difference (row counts, added/removed leaves, non-numeric
  values) is ``drift``.

Exit codes: 0 clean, 1 findings, 2 unusable inputs (missing artifact).

Usage (CI runs exactly this)::

    PYTHONPATH=src python benchmarks/check_regression.py [--bench NAME]...
"""

import argparse
import json
import os
import sys
from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Leaf keys measuring simulated work: lower is better, so an increase
# is a regression.  Everything else is compared for exact equality and
# any difference reported as drift.
PERF_LEAF_KEYS = frozenset(
    [
        "broadcast_bytes",
        "build_cost",
        "cost",
        "join_comparisons",
        "maintenance_cost",
        "max",
        "mean",
        "p50",
        "p95",
        "p99",
        "rebuild_cost",
        "records_scanned",
        "remote_units",
        "shuffle_records",
        "total_units",
        "units",
        "wire_requests",
    ]
)


class Finding(NamedTuple):
    bench: str
    path: str
    kind: str  # "regression" | "improvement" | "drift"
    baseline: object
    fresh: object

    def render(self) -> str:
        if self.kind == "regression":
            detail = "%s -> %s (worse)" % (self.baseline, self.fresh)
        elif self.kind == "improvement":
            detail = "%s -> %s (better; re-commit the artifact)" % (
                self.baseline,
                self.fresh,
            )
        else:
            detail = "%s -> %s" % (self.baseline, self.fresh)
        return "%s: %s %s: %s" % (self.bench, self.kind, self.path, detail)


def flatten_payload(payload: object, prefix: str = "") -> Dict[str, object]:
    """Flatten nested dicts/lists into dotted-path -> leaf value."""
    leaves: Dict[str, object] = {}
    if isinstance(payload, dict):
        for key in sorted(payload):
            child = "%s.%s" % (prefix, key) if prefix else str(key)
            leaves.update(flatten_payload(payload[key], child))
    elif isinstance(payload, list):
        for index, item in enumerate(payload):
            child = "%s[%d]" % (prefix, index)
            leaves.update(flatten_payload(item, child))
    else:
        leaves[prefix] = payload
    return leaves


def _leaf_key(path: str) -> str:
    tail = path.rsplit(".", 1)[-1]
    return tail.split("[", 1)[0]


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def compare_payloads(bench: str, baseline: object, fresh: object) -> List[Finding]:
    """Pure comparison of one committed payload against a fresh run."""
    base_leaves = flatten_payload(baseline)
    fresh_leaves = flatten_payload(fresh)
    findings: List[Finding] = []
    for path in sorted(set(base_leaves) | set(fresh_leaves)):
        if path not in fresh_leaves:
            findings.append(
                Finding(bench, path, "drift", base_leaves[path], "<missing>")
            )
            continue
        if path not in base_leaves:
            findings.append(
                Finding(bench, path, "drift", "<missing>", fresh_leaves[path])
            )
            continue
        base_value = base_leaves[path]
        fresh_value = fresh_leaves[path]
        if base_value == fresh_value:
            continue
        if (
            _leaf_key(path) in PERF_LEAF_KEYS
            and _is_number(base_value)
            and _is_number(fresh_value)
        ):
            kind = "regression" if fresh_value > base_value else "improvement"
        else:
            kind = "drift"
        findings.append(Finding(bench, path, kind, base_value, fresh_value))
    return findings


# ---------------------------------------------------------------------------
# Bench specs: artifact name + a callable regenerating its payload
# ---------------------------------------------------------------------------


def _regen_module(module_name: str) -> Callable[[], dict]:
    def regenerate() -> dict:
        bench_dir = os.path.dirname(os.path.abspath(__file__))
        if bench_dir not in sys.path:
            sys.path.insert(0, bench_dir)
        module = __import__(module_name)
        return module.run_bench(smoke=False)

    return regenerate


def _regen_server() -> dict:
    """Replicate the documented BENCH_server.json regeneration commands.

    README pins the provenance: a LUBM scale-1 seed-42 dataset driven by
    the default loadtest (8 clients x 8 requests, 2 tenants, seed 42).
    Running the real CLI keeps this spec from drifting against it.
    """
    import tempfile

    from repro.cli import main as repro_main

    with tempfile.TemporaryDirectory(prefix="check-regression-") as tmp:
        data = os.path.join(tmp, "bench_data.nt")
        report = os.path.join(tmp, "server_report.json")
        stdout = sys.stdout
        sys.stdout = open(os.devnull, "w", encoding="utf-8")
        try:
            code = repro_main(
                ["generate", "lubm", data, "--scale", "1", "--seed", "42"]
            )
            if code == 0:
                code = repro_main(
                    [
                        "loadtest",
                        data,
                        "--clients",
                        "8",
                        "--tenants",
                        "2",
                        "--seed",
                        "42",
                        "--report",
                        report,
                    ]
                )
        finally:
            sys.stdout.close()
            sys.stdout = stdout
        if code != 0:
            raise RuntimeError("loadtest regeneration exited %d" % code)
        with open(report, encoding="utf-8") as handle:
            return json.load(handle)


SPECS: List[Tuple[str, str, Callable[[], dict]]] = [
    ("optimizer", "BENCH_optimizer.json", _regen_module("bench_optimizer")),
    ("routing", "BENCH_routing.json", _regen_module("bench_routing")),
    ("server", "BENCH_server.json", _regen_server),
    ("shacl", "BENCH_shacl.json", _regen_module("bench_shacl")),
    ("views", "BENCH_views.json", _regen_module("bench_views")),
]


def check_bench(
    name: str,
    artifact: str,
    regenerate: Callable[[], dict],
    root: str = REPO_ROOT,
) -> List[Finding]:
    path = os.path.join(root, artifact)
    with open(path, encoding="utf-8") as handle:
        baseline = json.load(handle)
    fresh = regenerate()
    return compare_payloads(name, baseline, fresh)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when a deterministic bench regresses against "
        "its committed BENCH_*.json artifact (tolerance 0)"
    )
    parser.add_argument(
        "--bench",
        action="append",
        choices=sorted(name for name, _, _ in SPECS),
        help="check only this bench (repeatable; default: all)",
    )
    args = parser.parse_args(argv)
    selected = [
        spec for spec in SPECS if args.bench is None or spec[0] in args.bench
    ]
    all_findings: List[Finding] = []
    for name, artifact, regenerate in selected:
        if not os.path.exists(os.path.join(REPO_ROOT, artifact)):
            print("%s: missing artifact %s" % (name, artifact), file=sys.stderr)
            return 2
        findings = check_bench(name, artifact, regenerate)
        all_findings.extend(findings)
        status = "OK" if not findings else "%d finding(s)" % len(findings)
        print("%s: %s vs fresh run: %s" % (name, artifact, status))
    for finding in all_findings:
        print(finding.render())
    regressions = sum(1 for f in all_findings if f.kind == "regression")
    if all_findings:
        print(
            "perf-trajectory gate: %d regression(s), %d other finding(s)"
            % (regressions, len(all_findings) - regressions)
        )
        return 1
    print("perf-trajectory gate: all %d artifact(s) clean" % len(selected))
    return 0


if __name__ == "__main__":
    sys.exit(main())
