"""SCALE: cost growth with dataset size (the assessment's scaling view).

The paper's premise is "the ever-increasing size and number of RDF data
collections" (Section I): the surveyed systems exist because costs must
grow gracefully with data.  This bench sweeps the LUBM-like generator
over 1/2/4 universities and reports, per engine, how the star query's
dominant cost grows -- the indexed engines (SPARQLGX, SparkRDF) must stay
proportional to their narrow stores while the naive baseline's scans
track the whole dataset.
"""

from repro.bench import format_table
from repro.core.assessment import ClaimResult
from repro.data.lubm import LubmGenerator
from repro.spark.context import SparkContext
from repro.systems import NaiveEngine, SparkRdfMesgEngine, SparqlgxEngine

from conftest import report

ENGINES = (NaiveEngine, SparqlgxEngine, SparkRdfMesgEngine)
SCALES = (1, 2, 4)


def test_scan_cost_scaling(benchmark):
    query = LubmGenerator.query_star()

    def sweep():
        series = {}
        sizes = {}
        for scale in SCALES:
            graph = LubmGenerator(num_universities=scale, seed=42).generate()
            sizes[scale] = len(graph)
            for engine_class in ENGINES:
                engine = engine_class(SparkContext(4))
                engine.load(graph)
                before = engine.ctx.metrics.snapshot()
                engine.execute(query)
                cost = engine.ctx.metrics.snapshot() - before
                series[(engine_class.profile.name, scale)] = (
                    cost.records_scanned
                )
        return series, sizes

    series, sizes = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for engine_class in ENGINES:
        name = engine_class.profile.name
        rows.append(
            [name] + [series[(name, scale)] for scale in SCALES]
        )
    rows.append(["(dataset triples)"] + [sizes[s] for s in SCALES])

    # Shape assertions: every engine grows monotonically; the indexed
    # engines read a small, roughly constant fraction of the dataset.
    monotone = all(
        series[(cls.profile.name, 1)]
        <= series[(cls.profile.name, 2)]
        <= series[(cls.profile.name, 4)]
        for cls in ENGINES
    )
    fractions = {
        scale: series[("SPARQLGX", scale)] / sizes[scale]
        for scale in SCALES
    }
    indexed_stay_narrow = all(f < 0.5 for f in fractions.values())
    naive_reads_multiples = all(
        series[("Naive", scale)] >= sizes[scale] for scale in SCALES
    )
    result = ClaimResult(
        "SCALE",
        holds=monotone and indexed_stay_narrow and naive_reads_multiples,
        evidence={
            "sparqlgx_fraction_by_scale": {
                k: round(v, 3) for k, v in fractions.items()
            },
        },
    )
    report(
        "SCALE: star-query records scanned vs dataset size",
        format_table(
            ["engine", "1 university", "2 universities", "4 universities"],
            rows,
        )
        + "\n" + result.summary(),
    )
    assert result.holds
