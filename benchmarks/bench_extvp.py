"""CLM-EXTVP: S2RDF's semi-join reduction claims (Section IV-A2).

Paper: "Assuming that there are two tables containing 100 entries each,
having only 10 entries in the same subject, we need 10,000 comparisons to
join them.  If we store data using ExtVP, only 10 comparisons are needed."
Plus the SF threshold trade-off: "to reduce the storage overhead of the
extra sub-tables a selectivity factor (SF) is being used".

Measured: join comparisons on exactly the paper's 100x100/10-overlap
scenario with and without ExtVP, and the storage/benefit sweep over SF
thresholds.
"""

from repro.bench import format_table
from repro.core.assessment import ClaimResult
from repro.rdf.graph import RDFGraph
from repro.rdf.terms import URI
from repro.rdf.triple import Triple
from repro.spark.context import SparkContext
from repro.systems import S2RdfEngine

from conftest import report

EX = "http://example.org/"
QUERY = (
    "PREFIX ex: <http://example.org/>\n"
    "SELECT ?x ?y ?z WHERE { ?x ex:likes ?y . ?x ex:follows ?z }"
)


def paper_example_graph():
    """Two 100-row predicates sharing exactly 10 subjects (the SS case)."""
    graph = RDFGraph()
    for i in range(100):
        graph.add(
            Triple(URI(EX + "a%d" % i), URI(EX + "likes"), URI(EX + "La%d" % i))
        )
    for i in range(100):
        # Subjects a0..a9 overlap; b10..b99 do not.
        subject = "a%d" % i if i < 10 else "b%d" % i
        graph.add(
            Triple(
                URI(EX + subject), URI(EX + "follows"), URI(EX + "Fb%d" % i)
            )
        )
    return graph


def _comparisons(engine, query):
    before = engine.ctx.metrics.snapshot()
    engine.execute(query)
    return (engine.ctx.metrics.snapshot() - before).join_comparisons


def test_paper_100x100_example(benchmark):
    graph = paper_example_graph()
    with_extvp = S2RdfEngine(SparkContext(1))
    with_extvp.load(graph)
    without = S2RdfEngine(SparkContext(1), build_extvp=False)
    without.load(graph)

    plain = _comparisons(without, QUERY)
    reduced = benchmark.pedantic(
        lambda: _comparisons(with_extvp, QUERY), rounds=1, iterations=1
    )

    rows = [
        ["VP only (100 x 100, 10 shared)", plain],
        ["ExtVP (10 x 10)", reduced],
    ]
    # Paper's numbers assume a nested-loop 100*100 = 10,000 vs 10; our hash
    # join charges per matching key, so the *ratio* is the claim's shape:
    # ExtVP must cut comparisons by roughly the 10x subject selectivity.
    result = ClaimResult(
        "CLM-EXTVP",
        holds=reduced * 5 <= plain,
        evidence={
            "comparisons_vp": plain,
            "comparisons_extvp": reduced,
            "reduction_factor": round(plain / max(reduced, 1), 1),
        },
    )
    report(
        "CLM-EXTVP: the paper's 100x100 / 10-overlap example",
        format_table(["storage", "join comparisons"], rows)
        + "\n" + result.summary(),
    )
    assert result.holds


def test_sf_threshold_storage_tradeoff(benchmark, lubm_small):
    thresholds = [0.10, 0.25, 0.50, 0.75, 1.00]

    def sweep():
        rows = []
        for threshold in thresholds:
            engine = S2RdfEngine(SparkContext(2), sf_threshold=threshold)
            engine.load(lubm_small)
            rows.append(
                (
                    threshold,
                    engine.extvp_table_count(),
                    engine.storage_rows(),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    tables = [r[1] for r in rows]
    storage = [r[2] for r in rows]
    result = ClaimResult(
        "CLM-EXTVP-SF",
        holds=tables == sorted(tables) and storage == sorted(storage),
        evidence={"tables_kept": tables, "stored_rows": storage},
    )
    report(
        "CLM-EXTVP: SF threshold vs storage overhead",
        format_table(
            ["SF threshold", "ExtVP tables kept", "total stored rows"],
            [list(r) for r in rows],
        )
        + "\n" + result.summary(),
    )
    assert result.holds
