"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one artifact of the paper (Figure 1, Table I,
Table II) or checks one of its qualitative performance claims (see
DESIGN.md's experiment index and EXPERIMENTS.md for the paper-vs-measured
record).  Benchmarks print their tables/series to stdout; run with
``pytest benchmarks/ --benchmark-only -s`` to see them.
"""

import pytest

from repro.data.lubm import LubmGenerator
from repro.data.watdiv import WatdivGenerator


@pytest.fixture(scope="session")
def lubm_graph():
    return LubmGenerator(num_universities=2, seed=42).generate()


@pytest.fixture(scope="session")
def lubm_small():
    return LubmGenerator(num_universities=1, seed=42).generate()


@pytest.fixture(scope="session")
def watdiv_graph():
    return WatdivGenerator(num_users=50, num_products=25, seed=7).generate()


def report(title, body):
    """Print a benchmark artifact with a recognizable banner."""
    banner = "=" * 72
    print("\n%s\n%s\n%s\n%s" % (banner, title, banner, body))
