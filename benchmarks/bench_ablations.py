"""ABL-DESIGN: ablations of the per-system design choices.

Each surveyed system couples a storage scheme with one or two signature
optimizations.  DESIGN.md calls these out; this bench switches each one
off and measures what it was buying:

* SPARQLGX's statistics-based join reordering (Section IV-A1: "statistics
  on data are computed in order to reorder the join execution");
* S2X's iterative candidate validation (Section IV-B1: "match candidates
  are validated ... until no changes occur");
* HAQWA's depth of workload analysis (how many frequent queries feed the
  allocation step): replication storage vs shuffle saved.
"""

from repro.bench import format_table
from repro.core.assessment import ClaimResult
from repro.data.lubm import LubmGenerator
from repro.data.workload import QueryWorkload
from repro.spark.context import SparkContext
from repro.sparql.parser import parse_sparql
from repro.systems import HaqwaEngine, S2XEngine, SparqlgxEngine

from conftest import report

PREFIX = (
    "PREFIX lubm: <http://repro.example.org/lubm#>\n"
    "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
)

# A query written worst-first: the huge unselective pattern leads.
BADLY_ORDERED = PREFIX + """
SELECT ?s ?d ?c WHERE {
  ?s lubm:takesCourse ?c .
  ?s lubm:memberOf ?d .
  ?s rdf:type lubm:GraduateStudent .
}
"""


def _cost(engine, query):
    before = engine.ctx.metrics.snapshot()
    engine.execute(query)
    return engine.ctx.metrics.snapshot() - before


def test_sparqlgx_reordering_ablation(benchmark, lubm_graph):
    def run():
        with_stats = SparqlgxEngine(SparkContext(4))
        with_stats.load(lubm_graph)
        without = SparqlgxEngine(SparkContext(4), enable_reordering=False)
        without.load(lubm_graph)
        return (
            _cost(with_stats, BADLY_ORDERED),
            _cost(without, BADLY_ORDERED),
        )

    optimized, plain = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["with statistics", optimized.join_comparisons, optimized.shuffle_records],
        ["input order", plain.join_comparisons, plain.shuffle_records],
    ]
    result = ClaimResult(
        "ABL-SPARQLGX-reorder",
        holds=optimized.join_comparisons < plain.join_comparisons,
        evidence={
            "comparisons_reordered": optimized.join_comparisons,
            "comparisons_input_order": plain.join_comparisons,
        },
    )
    report(
        "ABL: SPARQLGX statistics-based join reordering",
        format_table(["plan", "join comparisons", "shuffle records"], rows)
        + "\n" + result.summary(),
    )
    assert result.holds


def test_s2x_validation_ablation(benchmark, lubm_small):
    query = LubmGenerator.query_snowflake()

    def run():
        with_validation = S2XEngine(SparkContext(4))
        with_validation.load(lubm_small)
        without = S2XEngine(SparkContext(4), validate=False)
        without.load(lubm_small)
        validated_cost = _cost(with_validation, query)
        raw_cost = _cost(without, query)
        correct = with_validation.execute(query).same_as(
            without.execute(query)
        )
        return validated_cost, raw_cost, correct

    validated, raw, agree = benchmark.pedantic(run, rounds=1, iterations=1)
    result = ClaimResult(
        "ABL-S2X-validation",
        holds=agree
        and validated["join_output_records"] <= raw["join_output_records"],
        evidence={
            "assembly_outputs_validated": validated["join_output_records"],
            "assembly_outputs_raw": raw["join_output_records"],
            "answers_agree": agree,
        },
    )
    report(
        "ABL: S2X iterative validation prunes assembly work",
        result.summary(),
    )
    assert result.holds


def test_haqwa_workload_depth_sweep(benchmark, lubm_small):
    """More frequent queries fed to allocation -> more replicas, more
    locally answerable query types (a storage-for-traffic dial)."""
    linear = (
        PREFIX
        + "SELECT ?s ?p ?dep WHERE { ?s lubm:advisor ?p . ?p lubm:worksFor ?dep }"
    )
    teaching = (
        PREFIX
        + "SELECT ?s ?p ?c WHERE { ?s lubm:advisor ?p . ?p lubm:teacherOf ?c }"
    )
    workload = QueryWorkload()
    workload.add("linear", parse_sparql(linear), frequency=10.0)
    workload.add("teaching", parse_sparql(teaching), frequency=5.0)

    def sweep():
        rows = []
        for top in (0, 1, 2):
            engine = HaqwaEngine(
                SparkContext(4),
                workload=workload if top else None,
                frequent_top=top or 1,
            )
            engine.load(lubm_small)
            shuffle = (
                _cost(engine, linear).shuffle_records
                + _cost(engine, teaching).shuffle_records
            )
            rows.append([top, engine.replicated_triples, shuffle])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    replicas = [row[1] for row in rows]
    shuffles = [row[2] for row in rows]
    result = ClaimResult(
        "ABL-HAQWA-depth",
        holds=replicas[0] == 0
        and replicas == sorted(replicas)
        and shuffles == sorted(shuffles, reverse=True)
        and shuffles[-1] == 0,
        evidence={"replicas": replicas, "workload_shuffles": shuffles},
    )
    report(
        "ABL: HAQWA workload-analysis depth (storage vs traffic dial)",
        format_table(
            ["frequent queries used", "replicated triples", "workload shuffle"],
            rows,
        )
        + "\n" + result.summary(),
    )
    assert result.holds
