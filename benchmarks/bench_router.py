"""RTR: the shape-aware router -- the survey's conclusions, operationalized.

The survey's "System Contribution" dimension notes some systems target one
query type and others all types; the cross-system matrix (CMP-SHAPE)
measures who wins per shape.  The router dispatches each query to the
per-shape winner.  Measured here: the router answers every shape
correctly, loads only the engines it needs, and each routed engine's
remote traffic is at or below the median of all ten engines for that
query -- i.e. routing by shape systematically lands in the cheap half of
the matrix.
"""

import statistics

from repro.bench import BenchRun, format_table
from repro.core.assessment import ClaimResult
from repro.data.lubm import LubmGenerator
from repro.spark.context import SparkContext
from repro.sparql.algebra import evaluate
from repro.sparql.parser import parse_sparql
from repro.systems import ALL_ENGINE_CLASSES, NaiveEngine, ShapeAwareRouter

from conftest import report

QUERIES = {
    "star": LubmGenerator.query_star(),
    "linear": LubmGenerator.query_linear(),
    "snowflake": LubmGenerator.query_snowflake(),
    "complex": LubmGenerator.query_complex(),
}


def test_router_lands_in_the_cheap_half(benchmark, lubm_small):
    def run():
        matrix = BenchRun(lubm_small)
        matrix.run((NaiveEngine,) + ALL_ENGINE_CLASSES, QUERIES)
        remote_by_query = {}
        for result in matrix.results:
            remote_by_query.setdefault(result.query, {})[
                result.engine
            ] = result.cost_summary()["shuffle_remote"]

        router = ShapeAwareRouter(parallelism=4).load(lubm_small)
        rows = []
        verdicts = []
        for name, text in QUERIES.items():
            query = parse_sparql(text)
            answer = router.execute(query)
            correct = answer.same_as(evaluate(query, lubm_small))
            routed = router.last_engine.profile.name
            routed_remote = remote_by_query[name][routed]
            median_remote = statistics.median(
                remote_by_query[name].values()
            )
            verdicts.append(correct and routed_remote <= median_remote)
            rows.append(
                [name, routed, routed_remote, round(median_remote, 1)]
            )
        return rows, verdicts, router.loaded_engines()

    rows, verdicts, loaded = benchmark.pedantic(run, rounds=1, iterations=1)
    result = ClaimResult(
        "RTR",
        holds=all(verdicts) and len(loaded) == 4,
        evidence={"engines_loaded": loaded},
    )
    report(
        "RTR: shape-aware routing lands in the cheap half of the matrix",
        format_table(
            ["query", "routed engine", "routed remote", "median remote"],
            rows,
        )
        + "\n" + result.summary(),
    )
    assert result.holds
