"""Tests for the future-work partitioning module (Section V)."""

import pytest

from repro.data.lubm import LUBM
from repro.data.watdiv import WATDIV
from repro.partitioning import (
    EdgeCutPartitioner,
    PartitionedTripleStore,
    SemanticPartitioner,
    edge_cut_fraction,
    ldg_partition,
)
from repro.rdf.terms import URI
from repro.spark.context import SparkContext
from repro.spark.partitioner import HashPartitioner
from repro.sparql.algebra import evaluate
from repro.sparql.parser import parse_sparql
from repro.sparql.results import Solution, SolutionSet


def uri(name):
    return URI("http://x/" + name)


class TestSemanticPartitioner:
    def test_class_subjects_colocated(self, lubm_graph):
        partitioner = SemanticPartitioner(4, lubm_graph)
        for cls in lubm_graph.classes():
            partitions = {
                partitioner.partition_for(subject)
                for subject in lubm_graph.instances_of(cls)
            }
            assert len(partitions) == 1, cls

    def test_in_range(self, lubm_graph):
        partitioner = SemanticPartitioner(3, lubm_graph)
        for subject in lubm_graph.subjects():
            assert 0 <= partitioner.partition_for(subject) < 3

    def test_unknown_subject_falls_back_to_hash(self, lubm_graph):
        partitioner = SemanticPartitioner(4, lubm_graph)
        index = partitioner.partition_for(uri("stranger"))
        assert 0 <= index < 4

    def test_load_reasonably_balanced(self, lubm_graph):
        store = PartitionedTripleStore(
            SparkContext(4), lubm_graph, SemanticPartitioner(4, lubm_graph)
        )
        # LPT bound: max load <= ideal + largest class.
        assert store.balance() < 2.5

    def test_class_scan_touches_one_partition(self, lubm_graph):
        store = PartitionedTripleStore(
            SparkContext(4), lubm_graph, SemanticPartitioner(4, lubm_graph)
        )
        assert store.class_scan_partitions(LUBM.Course) == 1

    def test_hash_scatters_class_scans(self, lubm_graph):
        store = PartitionedTripleStore(
            SparkContext(4), lubm_graph, HashPartitioner(4)
        )
        assert store.class_scan_partitions(LUBM.Course) > 1

    def test_partition_of_class(self, lubm_graph):
        partitioner = SemanticPartitioner(4, lubm_graph)
        assert partitioner.partition_of_class(LUBM.Course) is not None
        assert partitioner.partition_of_class(uri("NoSuchClass")) is None


class TestLdgPartition:
    def test_empty(self):
        assert ldg_partition([], 4) == {}

    def test_all_vertices_placed_in_range(self):
        edges = [(uri("a"), uri("b")), (uri("b"), uri("c"))]
        placement = ldg_partition(edges, 2)
        assert set(placement) == {uri("a"), uri("b"), uri("c")}
        assert all(0 <= p < 2 for p in placement.values())

    def test_clique_stays_together(self):
        # Two 4-cliques joined by one bridge: LDG should cut only the bridge.
        def clique(prefix):
            nodes = [uri("%s%d" % (prefix, i)) for i in range(4)]
            return [
                (a, b) for i, a in enumerate(nodes) for b in nodes[i + 1 :]
            ]

        edges = clique("a") + clique("b") + [(uri("a0"), uri("b0"))]
        placement = ldg_partition(edges, 2)
        cut = edge_cut_fraction(edges, placement, 2)
        assert cut <= 2 / len(edges)

    def test_respects_capacity(self):
        edges = [(uri("hub"), uri("n%d" % i)) for i in range(20)]
        placement = ldg_partition(edges, 4, balance_slack=1.1)
        counts = {}
        for partition in placement.values():
            counts[partition] = counts.get(partition, 0) + 1
        assert max(counts.values()) <= int(1.1 * 21 / 4) + 1

    def test_invalid_partition_count(self):
        with pytest.raises(ValueError):
            ldg_partition([], 0)

    def test_deterministic(self):
        edges = [(uri("a"), uri("b")), (uri("b"), uri("c")), (uri("c"), uri("a"))]
        assert ldg_partition(edges, 2) == ldg_partition(edges, 2)


class TestEdgeCutPartitioner:
    def test_beats_hashing_on_lubm(self, lubm_graph):
        ldg = EdgeCutPartitioner(4, lubm_graph)
        hash_placement = {}
        hash_cut = edge_cut_fraction(ldg.edges, hash_placement, 4)
        assert ldg.cut_fraction() < hash_cut

    def test_balance_bounded(self, lubm_graph):
        partitioner = EdgeCutPartitioner(4, lubm_graph, balance_slack=1.2)
        assert partitioner.balance() <= 1.3

    def test_store_hop_locality_improves(self, lubm_graph):
        sc = SparkContext(4)
        hash_store = PartitionedTripleStore(
            sc, lubm_graph, HashPartitioner(4)
        )
        ldg_store = PartitionedTripleStore(
            sc, lubm_graph, EdgeCutPartitioner(4, lubm_graph)
        )
        predicate = LUBM.worksFor
        assert ldg_store.linear_hop_locality(
            predicate
        ) > hash_store.linear_hop_locality(predicate)


class TestPartitionedStoreEvaluation:
    @pytest.mark.parametrize(
        "make_partitioner",
        [
            lambda g: HashPartitioner(4),
            lambda g: SemanticPartitioner(4, g),
            lambda g: EdgeCutPartitioner(4, g),
        ],
        ids=["hash", "semantic", "edgecut"],
    )
    def test_local_star_evaluation_correct(
        self, lubm_graph, make_partitioner
    ):
        query = parse_sparql(
            "PREFIX lubm: <http://repro.example.org/lubm#>\n"
            "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
            "SELECT ?s ?d ?a WHERE { "
            "?s rdf:type lubm:GraduateStudent . "
            "?s lubm:memberOf ?d . ?s lubm:age ?a }"
        )
        store = PartitionedTripleStore(
            SparkContext(4), lubm_graph, make_partitioner(lubm_graph)
        )
        bindings = store.evaluate_star_locally(
            query.where.triple_patterns()
        )
        got = SolutionSet(
            ["s", "d", "a"],
            [Solution(b) for b in bindings.collect()],
        )
        expected = evaluate(query, lubm_graph)
        assert got.same_as(expected)

    def test_local_star_requires_star(self, lubm_graph):
        query = parse_sparql(
            "PREFIX lubm: <http://repro.example.org/lubm#>\n"
            "SELECT * WHERE { ?a lubm:advisor ?b . ?b lubm:worksFor ?c }"
        )
        store = PartitionedTripleStore(
            SparkContext(4), lubm_graph, HashPartitioner(4)
        )
        with pytest.raises(ValueError):
            store.evaluate_star_locally(query.where.triple_patterns())

    def test_star_evaluation_shuffles_nothing(self, lubm_graph):
        sc = SparkContext(4)
        store = PartitionedTripleStore(
            sc, lubm_graph, SemanticPartitioner(4, lubm_graph)
        )
        query = parse_sparql(
            "PREFIX lubm: <http://repro.example.org/lubm#>\n"
            "SELECT * WHERE { ?s lubm:memberOf ?d . ?s lubm:age ?a }"
        )
        before = sc.metrics.snapshot()
        store.evaluate_star_locally(query.where.triple_patterns()).collect()
        cost = sc.metrics.snapshot() - before
        assert cost.shuffle_records == 0
