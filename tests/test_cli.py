"""Tests for the command-line interface and the generated survey report."""

import pytest

from repro.cli import load_graph, main
from repro.core.survey import render_survey
from repro.data.lubm import LubmGenerator
from repro.rdf.ntriples import save_ntriples_file


@pytest.fixture
def data_file(tmp_path, lubm_graph):
    path = tmp_path / "data.nt"
    save_ntriples_file(str(path), lubm_graph)
    return str(path)


class TestSurveyReport:
    def test_contains_every_system(self):
        report = render_survey()
        for name in (
            "HAQWA", "SPARQLGX", "S2RDF", "SPARQL-Hybrid", "S2X",
            "Spar(k)ql", "GraphFrames-RDF", "SparkRDF",
        ):
            assert name in report

    def test_grouped_by_data_model(self):
        report = render_survey()
        triple_section = report.index("Triple Processing Systems")
        graph_section = report.index("Graph Processing")
        assert triple_section < report.index("S2RDF") < graph_section
        assert graph_section < report.index("S2X")

    def test_dimension_lines_present(self):
        report = render_survey()
        assert "query processing:" in report
        assert "partitioning:" in report
        assert "sparql fragment:" in report


class TestCli:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Apache Spark Abstraction" in out
        assert "Hash / Query Aware" in out

    def test_survey(self, capsys):
        assert main(["survey"]) == 0
        assert "HAQWA" in capsys.readouterr().out

    def test_query_with_literal_text(self, data_file, capsys):
        code = main(
            [
                "query",
                data_file,
                "PREFIX lubm: <http://repro.example.org/lubm#>\n"
                "SELECT DISTINCT ?d WHERE { ?s lubm:memberOf ?d }",
                "--engine",
                "SPARQLGX",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "3 solution(s)" in out  # three departments
        assert "cost:" in out

    def test_query_from_file(self, data_file, tmp_path, capsys):
        query_path = tmp_path / "q.rq"
        query_path.write_text(LubmGenerator.query_star())
        assert main(["query", data_file, str(query_path)]) == 0
        assert "solution(s)" in capsys.readouterr().out

    def test_ask_query(self, data_file, capsys):
        main(
            [
                "query",
                data_file,
                "PREFIX lubm: <http://repro.example.org/lubm#>\n"
                "ASK { ?s lubm:memberOf ?d }",
            ]
        )
        assert capsys.readouterr().out.startswith("yes")

    def test_construct_query(self, data_file, capsys):
        main(
            [
                "query",
                data_file,
                "PREFIX lubm: <http://repro.example.org/lubm#>\n"
                "CONSTRUCT { ?d lubm:hasMember ?s } "
                "WHERE { ?s lubm:memberOf ?d }",
                "--engine",
                "Naive",
            ]
        )
        assert "triple(s)" in capsys.readouterr().out

    def test_unknown_engine_exits(self, data_file):
        with pytest.raises(SystemExit):
            main(["query", data_file, "SELECT ?s WHERE { ?s ?p ?o }",
                  "--engine", "NoSuchEngine"])

    def test_generate_then_load_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "generated.nt"
        assert main(["generate", "lubm", str(path), "--scale", "1"]) == 0
        graph = load_graph(str(path))
        assert len(graph) > 100

    def test_generate_watdiv(self, tmp_path):
        path = tmp_path / "shop.nt"
        assert main(["generate", "watdiv", str(path)]) == 0

    def test_load_turtle(self, tmp_path):
        path = tmp_path / "d.ttl"
        path.write_text(
            "@prefix ex: <http://x/> .\nex:a ex:p ex:b .\n"
        )
        assert len(load_graph(str(path))) == 1

    def test_query_recovers_under_fault_schedule(self, data_file, capsys):
        query = (
            "PREFIX lubm: <http://repro.example.org/lubm#>\n"
            "SELECT DISTINCT ?d WHERE { ?s lubm:memberOf ?d }"
        )
        assert main(["query", data_file, query]) == 0
        clean = capsys.readouterr().out
        assert main(
            [
                "query", data_file, query,
                "--faults", "fail:p=0.3;seed=7",
                "--max-task-attempts", "10",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "recovery: failed=" in out
        failed = int(out.split("recovery: failed=")[1].split()[0])
        assert failed > 0
        # identical solutions, fault schedule or not
        assert out.split("cost:")[0] == clean.split("cost:")[0]

    def test_exhausted_attempts_exit_nonzero_with_readable_message(
        self, data_file, capsys
    ):
        code = main(
            [
                "query", data_file, "SELECT ?s WHERE { ?s ?p ?o }",
                "--faults", "fail:p=1",
                "--max-task-attempts", "2",
            ]
        )
        assert code == 3
        err = capsys.readouterr().err
        assert "task failed permanently" in err
        assert "stage=" in err and "partition=" in err
        assert "2 attempt(s)" in err
        assert "--max-task-attempts" in err  # tells the user the way out

    def test_invalid_fault_spec_exits_nonzero(self, data_file, capsys):
        code = main(
            [
                "query", data_file, "SELECT ?s WHERE { ?s ?p ?o }",
                "--faults", "explode:p=1",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "invalid --faults spec" in err
        assert "explode" in err

    def test_assess_small(self, tmp_path, capsys):
        from repro.data.lubm import LubmGenerator as Gen
        from repro.rdf.ntriples import save_ntriples_file

        graph = Gen(
            num_universities=1,
            departments_per_university=1,
            professors_per_department=2,
            students_per_department=4,
            courses_per_department=3,
        ).generate()
        path = tmp_path / "tiny.nt"
        save_ntriples_file(str(path), graph)
        assert main(["assess", str(path), "--parallelism", "2"]) == 0
        out = capsys.readouterr().out
        assert "SPARQLGX" in out and "WRONG" not in out

    def test_assess_under_fault_schedule_stays_correct(self, tmp_path, capsys):
        from repro.data.lubm import LubmGenerator as Gen
        from repro.rdf.ntriples import save_ntriples_file

        graph = Gen(
            num_universities=1,
            departments_per_university=1,
            professors_per_department=2,
            students_per_department=4,
            courses_per_department=3,
        ).generate()
        path = tmp_path / "tiny.nt"
        save_ntriples_file(str(path), graph)
        assert main(
            [
                "assess", str(path), "--parallelism", "2",
                "--faults", "fail:p=0.3;lose:p=0.4;seed=7",
                "--max-task-attempts", "12",
            ]
        ) == 0
        assert "WRONG" not in capsys.readouterr().out


class TestRouteCommand:
    STAR = (
        "PREFIX lubm: <http://repro.example.org/lubm#> "
        "SELECT ?s ?n WHERE { ?s lubm:name ?n . ?s lubm:age ?a }"
    )

    def test_route_prints_decision(self, data_file, capsys):
        assert main(["route", data_file, self.STAR]) == 0
        out = capsys.readouterr().out
        assert out.startswith("routing: shape=star")
        assert "HAQWA" in out and "<- winner" in out

    def test_route_json_is_deterministic(self, data_file, capsys):
        import json

        assert main(["route", data_file, self.STAR, "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["route", data_file, self.STAR, "--json"]) == 0
        assert capsys.readouterr().out == first
        payload = json.loads(first)
        assert payload["winner"] == "HAQWA"

    def test_route_custom_pool(self, data_file, capsys):
        assert (
            main(
                [
                    "route", data_file, self.STAR,
                    "--engine", "SPARQLGX", "--engine", "Naive",
                ]
            )
            == 0
        )
        assert "winner=SPARQLGX" in capsys.readouterr().out

    def test_route_unknown_engine_exit_code(self, data_file, capsys):
        assert (
            main(["route", data_file, self.STAR, "--engine", "NoSuch"]) == 2
        )

    def test_explain_route_preamble(self, data_file, capsys):
        assert (
            main(
                [
                    "explain", data_file, self.STAR,
                    "--route", "--engine", "SPARQLGX",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "routing: shape=star" in out
        assert out.index("routing:") < out.index("== SPARQLGX ==")

    def test_route_engines_without_route_is_config_error(
        self, data_file, capsys
    ):
        assert (
            main(
                [
                    "explain", data_file, self.STAR,
                    "--route-engines", "SPARQLGX",
                ]
            )
            == 2
        )
        assert "--route-engines requires --route" in (
            capsys.readouterr().err
        )

    def test_loadtest_shape_mix_routed(self, data_file, tmp_path, capsys):
        report = tmp_path / "report.json"
        assert (
            main(
                [
                    "loadtest", data_file, "--smoke", "--route",
                    "--shape-mix", "--report", str(report),
                ]
            )
            == 0
        )
        import json

        payload = json.loads(report.read_text())
        assert payload["config"]["route"] is True
        assert payload["routing"]["enabled"] is True
        assert payload["shapes"]
