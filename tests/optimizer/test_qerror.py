"""Estimator accuracy (q-error), tracing, and metric conservation."""

import math

import pytest

from repro.data.lubm import LubmGenerator
from repro.explain import run_traced, verify_conservation
from repro.optimizer import Optimizer, collect_q_errors, q_error
from repro.systems import S2RdfEngine, SparqlgxEngine

SHAPES = {
    "star": LubmGenerator.query_star(),
    "linear": LubmGenerator.query_linear(),
    "snowflake": LubmGenerator.query_snowflake(),
    "complex": LubmGenerator.query_complex(),
}

#: Generous bound: the estimator must be sane, not clairvoyant.
Q_ERROR_CAP = 100.0


def test_q_error_function():
    assert q_error(10, 10) == 1.0
    assert q_error(100, 10) == 10.0
    assert q_error(10, 100) == 10.0
    # Smoothed at one row: empty results don't divide by zero.
    assert q_error(0, 0) == 1.0
    assert q_error(5, 0) == 5.0


@pytest.mark.parametrize("shape", sorted(SHAPES), ids=sorted(SHAPES))
def test_q_errors_finite_and_bounded(shape, lubm_graph):
    optimizer = Optimizer.for_graph(lubm_graph)
    run = run_traced(
        lubm_graph, SHAPES[shape], SparqlgxEngine, optimizer=optimizer
    )
    errors = collect_q_errors(run.spans)
    assert errors, "no traced optimizer steps for %s" % shape
    for strategy, error in errors:
        assert math.isfinite(error)
        assert error >= 1.0
        assert error <= Q_ERROR_CAP, (
            "step %s q-error %.1f exceeds cap" % (strategy, error)
        )


def test_optimize_span_describes_plan(lubm_graph):
    optimizer = Optimizer.for_graph(lubm_graph)
    run = run_traced(
        lubm_graph, SHAPES["complex"], SparqlgxEngine, optimizer=optimizer
    )
    optimize_spans = [
        span
        for root in run.spans
        for span in root.walk()
        if span.kind == "optimize"
    ]
    assert optimize_spans
    for span in optimize_spans:
        assert span.name == "dp"
        assert "order" in span.attrs and "strategies" in span.attrs


def test_conservation_holds_with_optimizer(lubm_graph):
    """Span deltas still sum to flat totals on the optimized path."""
    optimizer = Optimizer.for_graph(lubm_graph)
    for shape in ("star", "complex"):
        run = run_traced(
            lubm_graph, SHAPES[shape], SparqlgxEngine, optimizer=optimizer
        )
        assert verify_conservation(run) == {}


def test_sql_spans_carry_estimates(lubm_graph):
    """S2RDF's SQL plan nodes expose Catalyst row estimates in EXPLAIN."""
    run = run_traced(lubm_graph, SHAPES["star"], S2RdfEngine)
    sql_spans = [
        span
        for root in run.spans
        for span in root.walk()
        if span.kind == "sql"
    ]
    assert sql_spans
    assert all("est_rows" in span.attrs for span in sql_spans)
