"""Tests for the cost-based optimizer (repro.optimizer)."""
