"""Cardinality estimation against graphs with known exact answers."""

import pytest

from repro.optimizer import CardinalityEstimator
from repro.rdf.graph import RDFGraph
from repro.rdf.terms import URI
from repro.rdf.triple import Triple
from repro.sparql.ast import TriplePattern, Variable
from repro.stats import StatsCatalog

EX = "http://example.org/"


def _uri(name):
    return URI(EX + name)


def _pattern(subject, predicate, obj):
    def resolve(position):
        if isinstance(position, str) and position.startswith("?"):
            return Variable(position[1:])
        return _uri(position)

    return TriplePattern(resolve(subject), resolve(predicate), resolve(obj))


@pytest.fixture(scope="module")
def estimator():
    graph = RDFGraph()
    # 6 follows edges from 3 subjects; 3 likes edges from 2 of them.
    for i in range(6):
        graph.add(
            Triple(_uri("u%d" % (i % 3)), _uri("follows"), _uri("f%d" % i))
        )
    for i in range(3):
        graph.add(
            Triple(_uri("u%d" % (i % 2)), _uri("likes"), _uri("l%d" % i))
        )
    return CardinalityEstimator(StatsCatalog.from_graph(graph))


def test_bound_predicate_uses_partition_size(estimator):
    assert estimator.pattern_cardinality(
        _pattern("?s", "follows", "?o")
    ) == pytest.approx(6.0)
    assert estimator.pattern_cardinality(
        _pattern("?s", "likes", "?o")
    ) == pytest.approx(3.0)


def test_bound_subject_divides_by_distinct_subjects(estimator):
    # follows has 3 distinct subjects: 6 / 3 = 2 expected rows.
    assert estimator.pattern_cardinality(
        _pattern("u0", "follows", "?o")
    ) == pytest.approx(2.0)
    # A bound object divides by the 6 distinct follows objects.
    assert estimator.pattern_cardinality(
        _pattern("?s", "follows", "f0")
    ) == pytest.approx(1.0)


def test_unknown_predicate_estimates_zero(estimator):
    assert estimator.pattern_cardinality(_pattern("?s", "nope", "?o")) == 0.0


def test_unbound_predicate_uses_global_totals(estimator):
    assert estimator.pattern_cardinality(
        _pattern("?s", "?p", "?o")
    ) == pytest.approx(9.0)


def test_subject_star_uses_characteristic_sets(estimator):
    star = [
        _pattern("?s", "follows", "?a"),
        _pattern("?s", "likes", "?b"),
    ]
    # Exact: u0 (2 follows x 2 likes) + u1 (2 follows x 1 like) = 6 rows.
    assert estimator.subset_cardinality(star) == pytest.approx(6.0)


def test_subset_cardinality_is_order_independent(estimator):
    patterns = [
        _pattern("?s", "follows", "?a"),
        _pattern("?s", "likes", "?b"),
        _pattern("?a", "?p", "?c"),
    ]
    forward = estimator.subset_cardinality(patterns)
    backward = estimator.subset_cardinality(list(reversed(patterns)))
    assert forward == pytest.approx(backward)
    assert forward >= 0.0


def test_reduction_factor_reads_pair_selectivity(estimator):
    follows = _pattern("?s", "follows", "?o")
    likes = _pattern("?s", "likes", "?x")
    # Only 2 of follows' 3 subjects also appear in likes: 4/6 triples.
    assert estimator.reduction_factor(follows, likes) == pytest.approx(4 / 6)
    # likes' subjects all follow: no reduction.
    assert estimator.reduction_factor(likes, follows) == 1.0
