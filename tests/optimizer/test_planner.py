"""Join ordering and physical strategy selection."""

import pytest

from repro.optimizer import (
    DEFAULT_BROADCAST_THRESHOLD,
    JoinPlanner,
    Optimizer,
)
from repro.sparql.algebra import BGP, translate
from repro.sparql.parser import parse_sparql

PREFIX = "PREFIX lubm: <http://repro.example.org/lubm#>\n"


def _patterns(query_text):
    node = translate(parse_sparql(query_text))
    assert isinstance(node, BGP)
    return node.patterns


CHAIN = PREFIX + (
    "SELECT * WHERE { ?s lubm:takesCourse ?c . ?t lubm:teacherOf ?c . "
    "?s lubm:memberOf ?d . }"
)
DISCONNECTED = PREFIX + (
    "SELECT * WHERE { ?s lubm:memberOf ?d . ?x lubm:worksFor ?y . }"
)


@pytest.fixture(scope="module")
def optimizer(lubm_graph):
    return Optimizer.for_graph(lubm_graph)


def test_plan_covers_every_pattern_once(optimizer):
    patterns = _patterns(CHAIN)
    plan = optimizer.plan_bgp(patterns)
    assert sorted(plan.order) == list(range(len(patterns)))
    assert plan.steps[0].strategy == "scan"
    assert all(
        step.strategy in ("broadcast", "local", "shuffle", "cartesian")
        for step in plan.steps[1:]
    )


def test_parse_mode_preserves_written_order(lubm_graph):
    optimizer = Optimizer.for_graph(lubm_graph, mode="parse")
    plan = optimizer.plan_bgp(_patterns(CHAIN))
    assert plan.order == [0, 1, 2]
    assert plan.mode == "parse"


def test_broadcast_iff_under_threshold(optimizer):
    for query in (CHAIN, DISCONNECTED):
        plan = optimizer.plan_bgp(_patterns(query))
        for step in plan.steps[1:]:
            if step.strategy == "cartesian":
                assert not step.shared
                continue
            should_broadcast = step.est_build < plan.broadcast_threshold
            assert (step.strategy == "broadcast") == should_broadcast


def test_disabling_broadcast_removes_it(lubm_graph):
    optimizer = Optimizer.for_graph(lubm_graph, enable_broadcast=False)
    for query in (CHAIN, DISCONNECTED):
        plan = optimizer.plan_bgp(_patterns(query))
        assert all(step.strategy != "broadcast" for step in plan.steps)


def test_local_join_when_already_partitioned_on_key(lubm_graph):
    # A subject star with broadcast off: the first join shuffles on ?s,
    # every later join reuses that partitioning.
    star = PREFIX + (
        "SELECT * WHERE { ?s lubm:memberOf ?d . ?s lubm:age ?a . "
        "?s lubm:emailAddress ?e . }"
    )
    optimizer = Optimizer.for_graph(lubm_graph, enable_broadcast=False)
    plan = optimizer.plan_bgp(_patterns(star))
    strategies = [step.strategy for step in plan.steps]
    assert strategies == ["scan", "shuffle", "local"]
    assert all(step.shared == ("s",) for step in plan.steps[1:])


def test_cartesian_only_for_disconnected(optimizer):
    plan = optimizer.plan_bgp(_patterns(DISCONNECTED))
    assert [step.strategy for step in plan.steps][1] == "cartesian"
    connected = optimizer.plan_bgp(_patterns(CHAIN))
    assert all(step.strategy != "cartesian" for step in connected.steps)


def test_dp_never_worse_than_parse_on_estimates(lubm_graph):
    """The DP optimum's C_out is <= every other order's, parse included."""
    dp = Optimizer.for_graph(lubm_graph, mode="dp")
    parse = Optimizer.for_graph(lubm_graph, mode="parse")

    def c_out(plan):
        return sum(step.est_rows for step in plan.steps[1:])

    for query in (CHAIN, DISCONNECTED):
        patterns = _patterns(query)
        assert c_out(dp.plan_bgp(patterns)) <= c_out(
            parse.plan_bgp(patterns)
        ) + 1e-9


def test_plans_are_deterministic(lubm_graph):
    first = Optimizer.for_graph(lubm_graph).plan_bgp(_patterns(CHAIN))
    second = Optimizer.for_graph(lubm_graph).plan_bgp(_patterns(CHAIN))
    assert first.describe() == second.describe()
    assert [s.strategy for s in first.steps] == [
        s.strategy for s in second.steps
    ]


def test_planner_validates_configuration(optimizer):
    with pytest.raises(ValueError, match="order mode"):
        JoinPlanner(optimizer.estimator, mode="bogus")
    with pytest.raises(ValueError, match="broadcast_threshold"):
        JoinPlanner(optimizer.estimator, broadcast_threshold=0)
    assert optimizer.planner.broadcast_threshold == DEFAULT_BROADCAST_THRESHOLD


def test_empty_plan(optimizer):
    plan = optimizer.plan_bgp([])
    assert plan.steps == []
    assert plan.est_rows == 1.0
