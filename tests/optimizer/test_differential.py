"""Differential property: the optimizer may change *how*, never *what*.

For every engine and every workload query, the canonical serialized
result bytes (:mod:`repro.server.protocol`) of the optimized execution
must equal the unoptimized execution's -- across all ordering modes.
"""

import pytest

from repro.data.lubm import LubmGenerator
from repro.optimizer import Optimizer
from repro.server import build_workload
from repro.server.protocol import canonical_json, canonical_result
from repro.spark.context import SparkContext
from repro.sparql.parser import parse_sparql
from repro.systems import ALL_ENGINE_CLASSES, NaiveEngine
from repro.systems.base import UnsupportedQueryError

ENGINES = (NaiveEngine,) + tuple(ALL_ENGINE_CLASSES)


def _workload(graph):
    queries = dict(build_workload(graph, size=6, seed=42))
    queries["complex"] = LubmGenerator.query_complex()
    # ORDER BY with ties: the regression case for plan-dependent row order.
    queries["filter"] = LubmGenerator.query_filter()
    return queries


def _canonical(engine, query):
    return canonical_json(canonical_result(engine.execute(query), query))


@pytest.mark.parametrize(
    "engine_cls", ENGINES, ids=lambda cls: cls.__name__
)
def test_optimized_results_byte_identical(engine_cls, lubm_graph):
    optimizer = Optimizer.for_graph(lubm_graph)
    engine = engine_cls(SparkContext(4))
    engine.load(lubm_graph)
    compared = 0
    for name, text in _workload(lubm_graph).items():
        query = parse_sparql(text)
        engine.set_optimizer(None)
        try:
            baseline = _canonical(engine, query)
        except UnsupportedQueryError:
            # Feature gate, independent of the optimizer: the optimized
            # path must refuse identically.
            engine.set_optimizer(optimizer)
            with pytest.raises(UnsupportedQueryError):
                _canonical(engine, query)
            continue
        engine.set_optimizer(optimizer)
        optimized = _canonical(engine, query)
        assert optimized == baseline, (
            "%s produced different bytes on %r with the optimizer"
            % (engine_cls.__name__, name)
        )
        compared += 1
    assert compared > 0


@pytest.mark.parametrize("mode", ["parse", "greedy", "dp"])
def test_every_mode_agrees_on_results(mode, lubm_graph):
    optimizer = Optimizer.for_graph(lubm_graph, mode=mode)
    engine = NaiveEngine(SparkContext(4))
    engine.load(lubm_graph)
    for _name, text in _workload(lubm_graph).items():
        query = parse_sparql(text)
        engine.set_optimizer(None)
        baseline = _canonical(engine, query)
        engine.set_optimizer(optimizer)
        assert _canonical(engine, query) == baseline
