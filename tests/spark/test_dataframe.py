"""Unit tests for DataFrames: relational ops, joins, aggregation, storage."""

import pytest

from repro.spark.column import col, lit
from repro.spark.dataframe import DataFrame
from repro.spark.row import Row


@pytest.fixture
def people(session):
    return session.createDataFrame(
        [
            (1, "alice", 30, "athens"),
            (2, "bob", 25, "berlin"),
            (3, "carol", 35, "athens"),
            (4, "dave", 25, "cairo"),
        ],
        ["id", "name", "age", "city"],
    )


class TestProjection:
    def test_select_by_name(self, people):
        result = people.select("name", "age")
        assert result.columns == ["name", "age"]
        assert result.collect()[0] == Row(["name", "age"], ("alice", 30))

    def test_select_expression_with_alias(self, people):
        result = people.select((col("age") + lit(1)).alias("next_age"))
        assert result.columns == ["next_age"]
        assert [r["next_age"] for r in result.collect()] == [31, 26, 36, 26]

    def test_select_unknown_column_raises(self, people):
        with pytest.raises(KeyError):
            people.select("nope").collect()

    def test_select_duplicate_output_raises(self, people):
        with pytest.raises(ValueError):
            people.select("age", "age")

    def test_withColumn_appends(self, people):
        result = people.withColumn("senior", col("age") >= lit(30))
        assert result.columns[-1] == "senior"
        assert [r["senior"] for r in result.collect()] == [
            True,
            False,
            True,
            False,
        ]

    def test_withColumn_replaces_existing(self, people):
        result = people.withColumn("age", col("age") * lit(2))
        assert result.columns == people.columns
        assert [r["age"] for r in result.collect()] == [60, 50, 70, 50]

    def test_withColumnRenamed(self, people):
        renamed = people.withColumnRenamed("age", "years")
        assert "years" in renamed.columns and "age" not in renamed.columns

    def test_drop(self, people):
        result = people.drop("id", "city")
        assert result.columns == ["name", "age"]


class TestFilterSortLimit:
    def test_where(self, people):
        result = people.where(col("city") == lit("athens"))
        assert {r["name"] for r in result.collect()} == {"alice", "carol"}

    def test_where_compound(self, people):
        result = people.where(
            (col("age") > lit(24)) & (col("city") != lit("athens"))
        )
        assert {r["name"] for r in result.collect()} == {"bob", "dave"}

    def test_where_unknown_column_raises(self, people):
        with pytest.raises(KeyError):
            people.where(col("salary") > lit(5))

    def test_orderBy_single(self, people):
        names = [r["name"] for r in people.orderBy("age").collect()]
        assert names[0] in ("bob", "dave")
        assert names[-1] == "carol"

    def test_orderBy_multi_direction(self, people):
        result = people.orderBy(
            "age", "name", ascending=[True, False]
        ).collect()
        assert [r["name"] for r in result] == ["dave", "bob", "alice", "carol"]

    def test_limit(self, people):
        assert people.limit(2).count() == 2

    def test_distinct(self, session):
        df = session.createDataFrame([(1,), (1,), (2,)], ["x"])
        assert df.distinct().count() == 2

    def test_union(self, people):
        doubled = people.union(people)
        assert doubled.count() == 8

    def test_union_arity_mismatch_raises(self, people, session):
        other = session.createDataFrame([(1,)], ["x"])
        with pytest.raises(ValueError):
            people.union(other)


class TestJoins:
    @pytest.fixture
    def cities(self, session):
        return session.createDataFrame(
            [("athens", "GR"), ("berlin", "DE")], ["city", "country"]
        )

    def test_inner_join(self, people, cities):
        joined = people.join(cities, on="city")
        assert set(joined.columns) == {"city", "id", "name", "age", "country"}
        assert joined.count() == 3  # cairo drops out

    def test_left_join_keeps_unmatched(self, people, cities):
        joined = people.join(cities, on="city", how="left", hint="shuffle")
        assert joined.count() == 4
        cairo = [r for r in joined.collect() if r["city"] == "cairo"][0]
        assert cairo["country"] is None

    def test_right_join(self, people, cities, session):
        extra = session.createDataFrame(
            [("athens", "GR"), ("oslo", "NO")], ["city", "country"]
        )
        joined = people.join(extra, on="city", how="right", hint="shuffle")
        oslo = [r for r in joined.collect() if r["city"] == "oslo"]
        assert len(oslo) == 1 and oslo[0]["name"] is None

    def test_outer_join(self, people, cities, session):
        extra = session.createDataFrame([("oslo", "NO")], ["city", "country"])
        joined = people.join(extra, on="city", how="outer", hint="shuffle")
        assert joined.count() == 5

    def test_broadcast_hint_forces_broadcast(self, people, cities, sc):
        before = sc.metrics.snapshot()
        people.join(cities, on="city", hint="broadcast").collect()
        cost = sc.metrics.snapshot() - before
        assert cost["broadcast_joins"] == 1
        assert cost["partitioned_joins"] == 0

    def test_auto_broadcast_below_threshold(self, people, cities, sc, session):
        session.autoBroadcastJoinThreshold = 10**9
        before = sc.metrics.snapshot()
        people.join(cities, on="city").collect()
        cost = sc.metrics.snapshot() - before
        assert cost["broadcast_joins"] == 1

    def test_no_auto_broadcast_when_disabled(self, people, cities, sc, session):
        session.autoBroadcastJoinThreshold = None
        before = sc.metrics.snapshot()
        people.join(cities, on="city").collect()
        cost = sc.metrics.snapshot() - before
        assert cost["partitioned_joins"] == 1

    def test_ambiguous_columns_raise(self, people, session):
        other = session.createDataFrame(
            [("athens", 99)], ["city", "age"]
        )
        with pytest.raises(ValueError):
            people.join(other, on="city")

    def test_broadcast_outer_join_rejected(self, people, cities):
        with pytest.raises(ValueError):
            people.join(cities, on="city", how="left", hint="broadcast")

    def test_crossJoin(self, session):
        a = session.createDataFrame([(1,), (2,)], ["x"])
        b = session.createDataFrame([("u",), ("v",)], ["y"])
        assert a.crossJoin(b).count() == 4

    def test_crossJoin_overlap_raises(self, session):
        a = session.createDataFrame([(1,)], ["x"])
        with pytest.raises(ValueError):
            a.crossJoin(a)


class TestAggregation:
    def test_groupBy_count(self, people):
        counts = {
            r["city"]: r["count"]
            for r in people.groupBy("city").count().collect()
        }
        assert counts == {"athens": 2, "berlin": 1, "cairo": 1}

    def test_agg_sum_avg_min_max(self, people):
        result = people.groupBy("city").agg(
            ("sum", "age", "total"),
            ("avg", "age", "mean"),
            ("min", "age", "youngest"),
            ("max", "age", "oldest"),
        )
        athens = [r for r in result.collect() if r["city"] == "athens"][0]
        assert athens["total"] == 65
        assert athens["mean"] == 32.5
        assert athens["youngest"] == 30
        assert athens["oldest"] == 35

    def test_count_distinct(self, session):
        df = session.createDataFrame(
            [("a", 1), ("a", 1), ("a", 2)], ["k", "v"]
        )
        result = df.groupBy("k").agg(("count_distinct", "v", "n"))
        assert result.collect()[0]["n"] == 2

    def test_count_star(self, people):
        result = people.groupBy("city").agg(("count", "*", "n"))
        assert sum(r["n"] for r in result.collect()) == 4

    def test_unknown_aggregate_raises(self, people):
        with pytest.raises(ValueError):
            people.groupBy("city").agg(("median", "age", "m"))


class TestActionsAndStorage:
    def test_collect_returns_rows(self, people):
        rows = people.collect()
        assert all(isinstance(r, Row) for r in rows)
        assert rows[0]["name"] == "alice"

    def test_take_first_isEmpty(self, people, session):
        assert len(people.take(2)) == 2
        assert people.first()["id"] == 1
        assert session.emptyDataFrame(["x"]).isEmpty()

    def test_show_renders_grid(self, people):
        text = people.show(2)
        assert "alice" in text and "|" in text and "+" in text

    def test_columnar_storage_is_smaller_on_repetitive_data(self, session):
        rows = [("constant-string-value", i % 3) for i in range(200)]
        df = session.createDataFrame(rows, ["text", "bucket"])
        row_bytes = df.storage_bytes(columnar=False)
        col_bytes = df.storage_bytes(columnar=True)
        assert col_bytes < row_bytes

    def test_duplicate_columns_rejected(self, session, sc):
        with pytest.raises(ValueError):
            DataFrame(session, sc.parallelize([(1, 2)]), ["a", "a"])

    def test_createDataFrame_from_dicts_and_rows(self, session):
        df = session.createDataFrame(
            [{"a": 1, "b": 2}, Row(["a", "b"], (3, 4))], ["a", "b"]
        )
        assert [tuple(r) for r in df.collect()] == [(1, 2), (3, 4)]

    def test_createDataFrame_arity_mismatch_raises(self, session):
        with pytest.raises(ValueError):
            session.createDataFrame([(1, 2, 3)], ["a", "b"])
