"""Unit tests for partitioners and the stable hash."""

import pytest

from repro.spark.partitioner import (
    FunctionPartitioner,
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    stable_hash,
)


class TestStableHash:
    def test_deterministic_for_strings(self):
        assert stable_hash("hello") == stable_hash("hello")

    def test_known_types(self):
        assert stable_hash(5) == 5
        assert stable_hash(True) == 1
        assert stable_hash(None) == 0
        assert isinstance(stable_hash(3.5), int)
        assert isinstance(stable_hash(("a", 1)), int)

    def test_negative_int_wraps_to_unsigned(self):
        assert stable_hash(-1) == 0xFFFFFFFF

    def test_tuple_order_matters(self):
        assert stable_hash(("a", "b")) != stable_hash(("b", "a"))

    def test_arbitrary_objects_fall_back_to_repr(self):
        class Thing:
            def __repr__(self):
                return "Thing()"

        assert stable_hash(Thing()) == stable_hash(Thing())


class TestHashPartitioner:
    def test_in_range(self):
        part = HashPartitioner(7)
        for key in ["a", "b", 1, 2.5, None, ("x", 1)]:
            assert 0 <= part.partition_for(key) < 7

    def test_equality_by_type_and_count(self):
        assert HashPartitioner(4) == HashPartitioner(4)
        assert HashPartitioner(4) != HashPartitioner(5)
        assert HashPartitioner(4) != RangePartitioner(4, [])

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)

    def test_hashable(self):
        assert len({HashPartitioner(4), HashPartitioner(4)}) == 1


class TestRangePartitioner:
    def test_bounds_split_keys(self):
        part = RangePartitioner(3, [10, 20])
        assert part.partition_for(5) == 0
        assert part.partition_for(10) == 1
        assert part.partition_for(15) == 1
        assert part.partition_for(25) == 2

    def test_overflow_clamps_to_last(self):
        part = RangePartitioner(2, [10])
        assert part.partition_for(1000) == 1

    def test_equality_includes_bounds(self):
        assert RangePartitioner(2, [1]) == RangePartitioner(2, [1])
        assert RangePartitioner(2, [1]) != RangePartitioner(2, [2])


class TestFunctionPartitioner:
    def test_wraps_function(self):
        part = FunctionPartitioner(2, lambda k: k % 2)
        assert part.partition_for(3) == 1

    def test_distinct_names_not_equal(self):
        a = FunctionPartitioner(2, lambda k: 0, "a")
        b = FunctionPartitioner(2, lambda k: 0, "b")
        assert a != b
        assert a == FunctionPartitioner(2, lambda k: 1, "a")

    def test_out_of_range_raises(self):
        part = FunctionPartitioner(2, lambda k: 5, "bad")
        with pytest.raises(ValueError):
            part.partition_for(1)
