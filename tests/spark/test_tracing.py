"""Tests for the span tracer: nesting, conservation, determinism, JSON."""

from __future__ import annotations

import pytest

from repro.data.lubm import LubmGenerator
from repro.spark.context import SparkContext
from repro.spark.tracing import (
    Span,
    Tracer,
    render_trace,
    trace_from_json,
    trace_to_json,
    trace_totals,
)
from repro.systems import HaqwaEngine, SparqlgxEngine


def traced_star_run(graph, engine_cls=SparqlgxEngine):
    """Run the LUBM star query traced on a fresh context."""
    sc = SparkContext(default_parallelism=4)
    engine = engine_cls(sc)
    engine.load(graph)
    sc.tracer.enable()
    before = sc.metrics.snapshot()
    result = engine.execute(LubmGenerator.query_star())
    delta = sc.metrics.snapshot() - before
    sc.tracer.disable()
    return sc.tracer.roots, delta, result


class TestSpanMechanics:
    def test_spans_nest_by_stack_order(self, sc):
        tracer = sc.tracer.enable()
        with tracer.span("query", name="outer"):
            with tracer.span("bgp"):
                with tracer.span("scan"):
                    pass
            with tracer.span("join"):
                pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.kind == "query" and root.name == "outer"
        assert [child.kind for child in root.children] == ["bgp", "join"]
        assert [child.kind for child in root.children[0].children] == ["scan"]

    def test_seq_is_creation_order(self, sc):
        tracer = sc.tracer.enable()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        a = tracer.roots[0]
        b, c = a.children
        assert a.seq < b.seq < c.seq

    def test_disabled_tracer_records_nothing(self, sc):
        with sc.tracer.span("query") as span:
            assert span is None
        assert sc.tracer.roots == []

    def test_clear_resets_state(self, sc):
        tracer = sc.tracer.enable()
        with tracer.span("a"):
            pass
        tracer.clear()
        assert tracer.roots == [] and tracer.current is None
        with tracer.span("b"):
            pass
        assert tracer.roots[0].seq == 0

    def test_span_attrs_can_be_amended_mid_flight(self, sc):
        tracer = sc.tracer.enable()
        with tracer.span("shuffle") as span:
            span.attrs["records"] = 7
        assert tracer.roots[0].attrs["records"] == 7

    def test_exception_still_closes_span(self, sc):
        tracer = sc.tracer.enable()
        with pytest.raises(RuntimeError):
            with tracer.span("query"):
                raise RuntimeError("boom")
        assert tracer.current is None
        assert [span.kind for span in tracer.roots] == ["query"]


class TestMetricDeltas:
    def test_sibling_deltas_sum_to_parent_delta(self, sc):
        """When all work happens inside children, siblings sum to parent."""
        tracer = sc.tracer.enable()
        with tracer.span("parent"):
            with tracer.span("left"):
                sc.metrics.incr("records_scanned", 10)
            with tracer.span("right"):
                sc.metrics.incr("records_scanned", 5)
                sc.metrics.incr("shuffle_records", 3)
        parent = tracer.roots[0]
        summed = {}
        for child in parent.children:
            for name, value in child.metrics.items():
                summed[name] = summed.get(name, 0) + value
        assert summed == parent.metrics
        assert parent.self_metrics == {}

    def test_self_metrics_excludes_children(self, sc):
        tracer = sc.tracer.enable()
        with tracer.span("parent"):
            sc.metrics.incr("tasks", 2)
            with tracer.span("child"):
                sc.metrics.incr("tasks", 5)
        parent = tracer.roots[0]
        assert parent.metrics == {"tasks": 7}
        assert parent.self_metrics == {"tasks": 2}

    def test_only_changed_counters_recorded(self, sc):
        tracer = sc.tracer.enable()
        sc.metrics.incr("records_scanned", 4)
        with tracer.span("idle"):
            pass
        assert tracer.roots[0].metrics == {}

    def test_trace_totals_equal_flat_snapshot(self, lubm_graph):
        """Acceptance: per-span deltas sum to the run's flat totals."""
        roots, delta, result = traced_star_run(lubm_graph)
        assert len(result) > 0
        totals = trace_totals(roots)
        for name, value in delta:
            assert totals[name] == value, name
        # ... and exclusive (self) deltas over the whole tree agree too.
        self_sum = {}
        for root in roots:
            for span in root.walk():
                for name, value in span.self_metrics.items():
                    self_sum[name] = self_sum.get(name, 0) + value
        assert self_sum == {name: value for name, value in delta if value}

    def test_trace_totals_for_local_engine(self, lubm_graph):
        roots, delta, _result = traced_star_run(lubm_graph, HaqwaEngine)
        totals = trace_totals(roots)
        for name, value in delta:
            assert totals[name] == value, name


class TestDeterminismAndJson:
    def test_traces_identical_across_runs(self, lubm_graph):
        roots_a, _d, _r = traced_star_run(lubm_graph)
        roots_b, _d, _r = traced_star_run(lubm_graph)
        assert trace_to_json(roots_a) == trace_to_json(roots_b)

    def test_json_round_trip(self, lubm_graph):
        roots, _delta, _result = traced_star_run(lubm_graph)
        restored = trace_from_json(trace_to_json(roots))
        assert restored == roots
        # Round-trip again: serialization is a fixed point.
        assert trace_to_json(restored) == trace_to_json(roots)

    def test_round_trip_preserves_structure(self):
        span = Span(
            "query",
            name="q",
            attrs={"engine": "X"},
            metrics={"tasks": 3},
            children=[Span("scan", metrics={"records_scanned": 7}, seq=1)],
        )
        restored = trace_from_json(trace_to_json([span]))[0]
        assert restored.kind == "query"
        assert restored.attrs == {"engine": "X"}
        assert restored.children[0].metrics == {"records_scanned": 7}
        assert restored.children[0].seq == 1

    def test_version_checked(self):
        with pytest.raises(ValueError):
            trace_from_json('{"version": 99, "spans": []}')

    def test_expected_span_kinds_present(self, lubm_graph):
        roots, _delta, _result = traced_star_run(lubm_graph)
        kinds = {span.kind for root in roots for span in root.walk()}
        assert {"query", "bgp", "bgp_step", "shuffle", "scan"} <= kinds


class TestRendering:
    def test_render_contains_labels_and_costs(self, lubm_graph):
        roots, _delta, _result = traced_star_run(lubm_graph)
        text = render_trace(roots)
        assert "query select" in text
        assert "bgp_step" in text
        assert "shuf=" in text and "scan=" in text

    def test_scan_runs_collapse(self, sc):
        tracer = sc.tracer.enable()
        with tracer.span("bgp"):
            for index in range(4):
                with tracer.span("scan", partition=index):
                    sc.metrics.incr("records_scanned", 10)
        text = render_trace(tracer.roots)
        assert "scan x4" in text
        assert "[scan=40]" in text
        full = render_trace(tracer.roots, collapse_scans=False)
        assert full.count("scan {partition=") == 4


class TestTracerIsolation:
    def test_each_context_owns_a_tracer(self):
        a, b = SparkContext(2), SparkContext(2)
        a.tracer.enable()
        with a.tracer.span("only-a"):
            pass
        assert b.tracer.roots == []
        assert not b.tracer.enabled

    def test_standalone_tracer(self):
        from repro.spark.metrics import MetricsCollector

        metrics = MetricsCollector()
        tracer = Tracer(metrics).enable()
        with tracer.span("s"):
            metrics.incr("tasks")
        assert tracer.roots[0].metrics == {"tasks": 1}
