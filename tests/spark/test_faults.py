"""Fault injection and lineage recovery on the raw substrate.

The regression anchors: a seeded schedule is deterministic, recovery is
invisible in query *results* (only in the recovery counters), exhausting
``max_task_attempts`` raises the typed :class:`TaskFailedError` (not a
bare exception), and recovery cost scales with uncached lineage depth.
"""

import pytest

from repro.spark.context import SparkContext
from repro.spark.faults import (
    FaultRule,
    FaultScheduler,
    FaultSpecError,
    TaskFailedError,
)
from repro.spark.sql.session import SparkSession


def chain(sc, depth=5, n=24, parts=4):
    rdd = sc.parallelize(range(n), parts)
    for _ in range(depth):
        rdd = rdd.map(lambda x: x + 1)
    return rdd


def fault_free(depth=5, n=24, parts=4):
    return chain(SparkContext(parts), depth, n, parts).collect()


class TestSpecGrammar:
    def test_full_spec_parses(self):
        scheduler = FaultScheduler.from_spec(
            "fail:p=0.3;lose:p=0.5;straggle:p=0.1,delay=3;seed=99"
        )
        assert scheduler.seed == 99
        assert [r.kind for r in scheduler.rules] == ["fail", "lose", "straggle"]
        assert scheduler.rules[2].delay == 3

    def test_bare_targeted_clause_fires_once(self):
        scheduler = FaultScheduler.from_spec("fail:stage=3,partition=1")
        (rule,) = scheduler.rules
        assert (rule.stage, rule.partition, rule.times) == (3, 1, 1)

    def test_empty_clauses_tolerated(self):
        assert FaultScheduler.from_spec("fail:p=0.5;;").active

    @pytest.mark.parametrize(
        "bad",
        [
            "explode:p=1",       # unknown kind
            "fail:boom=1",       # unknown parameter
            "fail:p",            # missing '='
            "fail:p=nope",       # not a number
            "fail:p=1.5",        # probability out of range
            "straggle:delay=0",  # delay must be >= 1
            "seed=7",            # no rules at all
            "",                  # empty spec
        ],
    )
    def test_malformed_specs_raise_typed_error(self, bad):
        with pytest.raises(FaultSpecError):
            FaultScheduler.from_spec(bad)


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        decisions = []
        for _ in range(2):
            scheduler = FaultScheduler.from_spec("fail:p=0.5;seed=11")
            decisions.append(
                [
                    scheduler.decide_task(stage, part, attempt) is not None
                    for stage in range(5)
                    for part in range(4)
                    for attempt in range(1, 4)
                ]
            )
        assert decisions[0] == decisions[1]
        assert any(decisions[0]) and not all(decisions[0])

    def test_different_seeds_differ(self):
        def pattern(seed):
            scheduler = FaultScheduler([FaultRule("fail", p=0.5)], seed=seed)
            return [
                scheduler.decide_task(stage, part, 1) is not None
                for stage in range(10)
                for part in range(10)
            ]

        assert pattern(1) != pattern(2)

    def test_fork_resets_firing_state(self):
        scheduler = FaultScheduler([FaultRule("fail", times=1)])
        assert scheduler.decide_task(1, 0, 1) is not None
        assert scheduler.decide_task(1, 0, 2) is None  # exhausted
        forked = scheduler.fork()
        assert forked.decide_task(1, 0, 1) is not None


class TestRetry:
    def test_failed_task_is_retried_and_result_unchanged(self):
        sc = SparkContext(4, faults=FaultScheduler([FaultRule("fail", times=1)]))
        assert chain(sc).collect() == fault_free()
        snap = sc.metrics.snapshot()
        assert snap.tasks_failed == 1
        assert snap.tasks_retried == 1

    def test_exhaustion_raises_typed_error(self):
        sc = SparkContext(
            4, faults=FaultScheduler([FaultRule("fail")]), max_task_attempts=3
        )
        with pytest.raises(TaskFailedError) as excinfo:
            chain(sc).collect()
        error = excinfo.value
        assert isinstance(error, RuntimeError)
        assert error.attempts == 3
        assert error.partition == 0
        assert error.stage >= 1
        message = str(error)
        assert "stage=%d" % error.stage in message
        assert "partition=0" in message
        assert "3 attempt(s)" in message

    def test_max_task_attempts_one_means_no_retry(self):
        sc = SparkContext(
            2,
            faults=FaultScheduler([FaultRule("fail", times=1)]),
            max_task_attempts=1,
        )
        with pytest.raises(TaskFailedError) as excinfo:
            chain(sc).collect()
        assert excinfo.value.attempts == 1
        assert sc.metrics.snapshot().tasks_retried == 0


class TestPartitionLoss:
    def test_lost_partition_recomputed_from_lineage(self):
        sc = SparkContext(4, faults=FaultScheduler())
        tail = chain(sc).cache()
        first = tail.collect()
        sc.faults.add_rule(FaultRule("lose", stage=tail.id, times=1))
        before = sc.metrics.snapshot()
        assert tail.collect() == first == fault_free()
        delta = sc.metrics.snapshot() - before
        assert delta.partitions_recomputed == 1
        assert delta.recompute_comparisons > 0

    def test_recovery_cost_scales_with_lineage_depth(self):
        def recovery_tasks(depth, cache_mid):
            sc = SparkContext(2, faults=FaultScheduler())
            rdd = sc.parallelize(range(16), 2)
            for level in range(1, depth + 1):
                rdd = rdd.map(lambda x: x + 1)
                if cache_mid and level == depth - 1:
                    rdd = rdd.cache()
            tail = rdd.cache()
            tail.count()
            sc.faults.add_rule(FaultRule("lose", stage=tail.id, times=1))
            before = sc.metrics.snapshot()
            tail.count()
            return (sc.metrics.snapshot() - before).recompute_comparisons

        deep = recovery_tasks(8, cache_mid=False)
        shallow = recovery_tasks(8, cache_mid=True)
        assert 0 < shallow < deep

    def test_checkpoint_is_immune_to_loss(self):
        sc = SparkContext(2, faults=FaultScheduler([FaultRule("lose")]))
        cp = chain(sc, parts=2).checkpoint()
        assert cp.is_checkpointed
        results = [cp.collect() for _ in range(3)]
        assert results[0] == results[1] == results[2]
        assert sc.metrics.snapshot().partitions_recomputed == 0

    def test_loss_cap_prevents_eviction_livelock(self):
        sc = SparkContext(2, faults=FaultScheduler([FaultRule("lose")]))
        cached = chain(sc, parts=2).cache()
        expected = fault_free(parts=2)
        for _ in range(6):
            assert cached.collect() == expected
        snap = sc.metrics.snapshot()
        cap = sc.faults.max_losses_per_partition * cached.num_partitions
        assert 0 < snap.partitions_recomputed <= cap


class TestStragglers:
    def test_straggler_charges_delay_without_speculation(self):
        sc = SparkContext(
            2,
            faults=FaultScheduler([FaultRule("straggle", times=2, delay=5)]),
        )
        assert chain(sc, parts=2).collect() == fault_free(parts=2)
        snap = sc.metrics.snapshot()
        assert snap["stragglers"] == 2
        assert snap["straggler_delay_units"] == 10
        assert snap.speculative_launches == 0

    def test_speculation_launches_backup_copies(self):
        def run(speculation):
            sc = SparkContext(
                2,
                faults=FaultScheduler([FaultRule("straggle", times=2)]),
                speculation=speculation,
            )
            chain(sc, parts=2).collect()
            return sc.metrics.snapshot()

        off, on = run(False), run(True)
        assert on.speculative_launches == 2
        assert on.tasks == off.tasks + 2  # each backup copy is a real task


class TestFaultSpans:
    def test_fault_and_retry_spans_recorded(self):
        sc = SparkContext(4, faults=FaultScheduler([FaultRule("fail", times=1)]))
        sc.tracer.enable()
        chain(sc).collect()
        sc.tracer.disable()
        spans = [s for root in sc.tracer.roots for s in root.walk()]
        faults = [s for s in spans if s.kind == "fault"]
        retries = [s for s in spans if s.kind == "retry"]
        assert len(faults) == 1 and faults[0].name == "fail"
        assert faults[0].metrics.get("tasks_failed") == 1
        assert {"stage", "partition", "attempt"} <= set(faults[0].attrs)
        assert len(retries) == 1 and retries[0].name == "attempt2"
        assert retries[0].metrics.get("tasks_retried") == 1

    def test_lose_span_contains_the_recovery(self):
        sc = SparkContext(2, faults=FaultScheduler())
        tail = chain(sc, parts=2).cache()
        tail.collect()
        sc.faults.add_rule(FaultRule("lose", stage=tail.id, times=1))
        sc.tracer.enable()
        tail.collect()
        sc.tracer.disable()
        lose = [
            s
            for root in sc.tracer.roots
            for s in root.walk()
            if s.kind == "fault" and s.name == "lose"
        ]
        assert len(lose) == 1
        assert lose[0].metrics.get("partitions_recomputed") == 1
        # the recomputation's tasks are charged inside the lose span
        assert lose[0].metrics.get("tasks", 0) > 0


class TestKnobThreading:
    def test_session_forwards_fault_knobs(self):
        session = SparkSession(faults="fail:p=1", max_task_attempts=2)
        df = session.createDataFrame([(1, "a"), (2, "b")], ["n", "s"])
        with pytest.raises(TaskFailedError):
            df.collect()

    def test_session_recovers_transparently(self):
        plain = SparkSession().createDataFrame([(1,), (2,), (3,)], ["n"])
        session = SparkSession(
            faults=FaultScheduler([FaultRule("fail", times=1)])
        )
        df = session.createDataFrame([(1,), (2,), (3,)], ["n"])
        assert df.collect() == plain.collect()
        assert session.ctx.metrics.snapshot().tasks_retried == 1

    def test_session_rejects_ctx_plus_faults(self):
        with pytest.raises(ValueError):
            SparkSession(ctx=SparkContext(2), faults="fail:p=1")

    def test_context_rejects_bad_attempt_limit(self):
        with pytest.raises(ValueError):
            SparkContext(2, max_task_attempts=0)
