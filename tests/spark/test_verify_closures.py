"""Runtime closure verification: ``SparkContext(verify_closures=True)``.

The static rules (tests/analysis/test_closures.py) run here against
*live* closures at job submission: captured cells and globals are
classified by their runtime types, the closure source is analyzed, and
a violation raises :class:`ClosureAnalysisError` before any partition
computes.
"""

import pytest

from repro.analysis.closures import ClosureAnalysisError, verify_rdd
from repro.spark.context import SparkContext


def make_ctx(**kwargs):
    kwargs.setdefault("verify_closures", True)
    return SparkContext(default_parallelism=2, **kwargs)


class TestCleanJobs:
    def test_clean_collect_passes_and_counts(self):
        sc = make_ctx()
        offset = 5
        out = sc.parallelize([1, 2, 3]).map(lambda x: x + offset).collect()
        assert out == [6, 7, 8]
        assert sc.metrics.get("closures_verified") >= 1
        assert sc.metrics.get("closures_rejected") == 0

    def test_memoized_lineage_not_reverified(self):
        sc = make_ctx()
        rdd = sc.parallelize([1, 2, 3]).map(lambda x: x * 2)
        rdd.collect()
        first = sc.metrics.get("closures_verified")
        rdd.collect()
        assert sc.metrics.get("closures_verified") == first

    def test_distinct_closures_sharing_code_object_both_verified(self):
        # The RDD API wraps user functions in adapter lambdas that share
        # one code object per definition site; memoization must key on
        # the function object, not its code.
        sc = make_ctx()
        rdd = sc.parallelize([1, 2, 3])
        a = rdd.map(lambda x: x + 1)
        b = a.map(lambda x: x * 2)
        assert b.collect() == [4, 6, 8]
        assert sc.metrics.get("closures_verified") >= 2

    def test_accumulator_add_is_legal_at_runtime(self):
        sc = make_ctx()
        acc = sc.accumulator(0)
        sc.parallelize([1, 2, 3, 4]).foreach(lambda x: acc.add(x))
        assert acc.value == 10

    def test_off_by_default(self):
        sc = SparkContext(default_parallelism=2)
        seen = {}
        # repro: allow(CL001) -- intentionally dirty: proves the flag
        # gates enforcement.
        sc.parallelize([1]).foreach(lambda x: seen.update({x: 1}))
        assert seen == {1: 1}
        assert sc.metrics.get("closures_verified") == 0


class TestRejections:
    def test_shared_dict_mutation_rejected(self):
        sc = make_ctx()
        seen = {}
        rdd = sc.parallelize([1, 2, 3]).map(
            lambda x: seen.setdefault(x, x)
        )
        with pytest.raises(ClosureAnalysisError) as excinfo:
            rdd.collect()
        assert any(
            d.code == "CL001" for d in excinfo.value.report.diagnostics
        )
        assert sc.metrics.get("closures_rejected") >= 1
        assert seen == {}

    def test_accumulator_read_rejected(self):
        sc = make_ctx()
        acc = sc.accumulator(0)
        rdd = sc.parallelize([1, 2, 3]).map(lambda x: x + acc.value)
        with pytest.raises(ClosureAnalysisError) as excinfo:
            rdd.collect()
        assert any(
            d.code == "CL002" for d in excinfo.value.report.diagnostics
        )

    def test_captured_context_rejected(self):
        sc = make_ctx()
        rdd = sc.parallelize([1, 2]).map(
            lambda x: len(sc.parallelize([x]).collect())
        )
        with pytest.raises(ClosureAnalysisError) as excinfo:
            rdd.collect()
        assert any(
            d.code == "CL000" for d in excinfo.value.report.diagnostics
        )

    def test_parallel_backend_also_enforces(self):
        sc = make_ctx(backend="parallel", workers=2)
        seen = []
        rdd = sc.parallelize([1, 2, 3]).map(lambda x: seen.append(x))
        with pytest.raises(ClosureAnalysisError):
            rdd.collect()

    def test_parallel_backend_clean_job_passes(self):
        sc = make_ctx(backend="parallel", workers=2)
        out = sc.parallelize([3, 1, 2]).map(lambda x: x * 10).collect()
        assert out == [30, 10, 20]
        assert sc.metrics.get("closures_verified") >= 1

    def test_runtime_suppression_honored(self):
        sc = make_ctx()
        seen = {}
        out = sc.parallelize([1, 2]).map(
            lambda x: seen.setdefault(x, x)  # repro: allow(CL001)
        ).collect()
        assert out == [1, 2]


class TestVerifyRddDirect:
    def test_returns_report_for_clean_lineage(self):
        sc = make_ctx()
        rdd = sc.parallelize([1, 2, 3]).filter(lambda x: x > 1)
        verify_rdd(rdd)  # must not raise
        assert sc.metrics.get("closures_verified") >= 1

    def test_shuffle_lineage_verified(self):
        sc = make_ctx()
        pairs = sc.parallelize([1, 2, 3, 4]).keyBy(lambda x: x % 2)
        out = dict(pairs.reduceByKey(lambda a, b: a + b).collect())
        assert out == {0: 6, 1: 4}
        assert sc.metrics.get("closures_verified") >= 2


class TestEngineIntegration:
    def test_engine_query_passes_verification(self, lubm_graph):
        from repro.runtime import build_engine

        engine = build_engine(
            "SPARQLGX", lubm_graph, parallelism=2, verify_closures=True
        )
        result = engine.execute(
            "SELECT ?s ?o WHERE { ?s "
            "<http://swat.cse.lehigh.edu/onto/univ-bench.owl#advisor> ?o }"
        )
        assert len(result) >= 0
        assert engine.ctx.metrics.get("closures_rejected") == 0

    def test_explain_closures_block(self, lubm_graph):
        from repro.explain import explain
        from repro.systems import SparqlgxEngine

        text = explain(
            lubm_graph,
            "SELECT ?s ?o WHERE { ?s "
            "<http://swat.cse.lehigh.edu/onto/univ-bench.owl#advisor> ?o }",
            [SparqlgxEngine],
            verify_closures=True,
        )
        assert "closures:" in text
        assert "0 rejected" in text

    def test_explain_block_absent_by_default(self, lubm_graph):
        from repro.explain import explain
        from repro.systems import SparqlgxEngine

        text = explain(
            lubm_graph,
            "SELECT ?s ?o WHERE { ?s "
            "<http://swat.cse.lehigh.edu/onto/univ-bench.owl#advisor> ?o }",
            [SparqlgxEngine],
        )
        assert "closures:" not in text


class TestCliExitCode:
    def test_closure_rejection_maps_to_exit_4(self, monkeypatch, capsys):
        import repro.cli as cli
        from repro.analysis.closures import check_source

        report = check_source(
            "job.py",
            "from repro.spark.context import SparkContext\n"
            "sc = SparkContext(2)\n"
            "seen = {}\n"
            "sc.parallelize([1]).foreach(lambda x: seen.update({x: 1}))\n",
        )
        assert report.diagnostics

        def boom(args):
            raise ClosureAnalysisError(report)

        monkeypatch.setattr(cli, "cmd_tables", boom)
        assert cli.main(["tables"]) == 4
        err = capsys.readouterr().err
        assert "closure rejected at job submission" in err
        assert "CL001" in err
