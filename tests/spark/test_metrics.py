"""Unit tests for the metrics collector and size estimation."""

from repro.spark.metrics import MetricsCollector, MetricsSnapshot, estimate_size


class TestEstimateSize:
    def test_primitives(self):
        assert estimate_size(None) == 1
        assert estimate_size(True) == 1
        assert estimate_size(7) == 8
        assert estimate_size(3.14) == 8
        assert estimate_size("abcd") == 4
        assert estimate_size(b"abc") == 3

    def test_unicode_counts_bytes_not_chars(self):
        assert estimate_size("é") == 2

    def test_containers_sum_elements(self):
        assert estimate_size((1, 2)) == 8 + (8 + 4) * 2
        assert estimate_size([1]) == 8 + 12
        assert estimate_size({"a": 1}) == 8 + 1 + 8 + 8

    def test_string_shorter_than_its_integer_code_costs_less(self):
        # The ratio logic the encoding claim relies on.
        long_uri = "http://example.org/resource/a-very-long-identifier"
        assert estimate_size(long_uri) > estimate_size(42)


class TestMetricsCollector:
    def test_incr_and_get(self):
        collector = MetricsCollector()
        collector.incr("x")
        collector.incr("x", 4)
        assert collector.get("x") == 5
        assert collector.get("missing") == 0

    def test_snapshot_is_immutable_copy(self):
        collector = MetricsCollector()
        collector.incr("tasks", 3)
        snapshot = collector.snapshot()
        collector.incr("tasks", 10)
        assert snapshot["tasks"] == 3

    def test_snapshot_subtraction(self):
        collector = MetricsCollector()
        collector.incr("a", 5)
        before = collector.snapshot()
        collector.incr("a", 2)
        collector.incr("b", 1)
        diff = collector.snapshot() - before
        assert diff["a"] == 2
        assert diff["b"] == 1

    def test_reset(self):
        collector = MetricsCollector()
        collector.incr("a")
        collector.reset()
        assert collector.get("a") == 0

    def test_record_helpers_populate_expected_counters(self):
        collector = MetricsCollector()
        collector.record_task()
        collector.record_scan(10, partitions=2)
        collector.record_shuffle(100, 40, 800)
        collector.record_join(50, 20, 30)
        collector.record_broadcast(5, 64)
        snapshot = collector.snapshot()
        assert snapshot.tasks == 1
        assert snapshot.records_scanned == 10
        assert snapshot["partitions_scanned"] == 2
        assert snapshot.shuffle_records == 100
        assert snapshot.shuffle_remote_records == 40
        assert snapshot.shuffle_bytes == 800
        assert snapshot.join_comparisons == 50
        assert snapshot["join_probe_lookups"] == 20
        assert snapshot["join_output_records"] == 30
        assert snapshot["broadcast_count"] == 1
        assert snapshot.broadcast_bytes == 64

    def test_locality_fraction(self):
        collector = MetricsCollector()
        collector.record_shuffle(100, 25, 0)
        assert collector.snapshot().locality_fraction() == 0.75

    def test_locality_fraction_no_shuffle_is_one(self):
        assert MetricsSnapshot({}).locality_fraction() == 1.0

    def test_snapshot_iteration_sorted(self):
        snapshot = MetricsSnapshot({"b": 2, "a": 1})
        assert list(snapshot) == [("a", 1), ("b", 2)]
