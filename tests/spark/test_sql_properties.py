"""Property-based tests: the SQL engine agrees with plain-Python oracles."""

from collections import Counter, defaultdict

from hypothesis import given, settings, strategies as st

from repro.spark.context import SparkContext
from repro.spark.sql.session import SparkSession

rows_strategy = st.lists(
    st.tuples(
        st.integers(0, 5),           # k
        st.integers(-50, 50),        # v
        st.sampled_from(["red", "green", "blue"]),  # tag
    ),
    min_size=1,
    max_size=40,
)


def make_session(rows, name="t", columns=("k", "v", "tag")):
    session = SparkSession(SparkContext(4))
    session.createOrReplaceTempView(
        name, session.createDataFrame(rows, list(columns))
    )
    return session


@given(rows=rows_strategy, threshold=st.integers(-50, 50))
@settings(max_examples=50, deadline=None)
def test_where_matches_filter(rows, threshold):
    session = make_session(rows)
    result = session.sql("SELECT k, v FROM t WHERE v >= %d" % threshold)
    expected = sorted((k, v) for k, v, _tag in rows if v >= threshold)
    assert sorted(tuple(r) for r in result.collect()) == expected


@given(rows=rows_strategy)
@settings(max_examples=50, deadline=None)
def test_group_by_sum_count_matches_counter(rows):
    session = make_session(rows)
    result = session.sql(
        "SELECT k, SUM(v) AS total, COUNT(*) AS n FROM t GROUP BY k"
    )
    totals = defaultdict(int)
    counts = Counter()
    for k, v, _tag in rows:
        totals[k] += v
        counts[k] += 1
    assert {tuple(r) for r in result.collect()} == {
        (k, totals[k], counts[k]) for k in totals
    }


@given(rows=rows_strategy)
@settings(max_examples=50, deadline=None)
def test_order_by_matches_sorted(rows):
    session = make_session(rows)
    result = session.sql("SELECT v FROM t ORDER BY v DESC")
    assert [r["v"] for r in result.collect()] == sorted(
        (v for _k, v, _t in rows), reverse=True
    )


@given(rows=rows_strategy)
@settings(max_examples=50, deadline=None)
def test_distinct_matches_set(rows):
    session = make_session(rows)
    result = session.sql("SELECT DISTINCT tag FROM t")
    assert {r["tag"] for r in result.collect()} == {
        tag for _k, _v, tag in rows
    }


@given(left=rows_strategy, right=rows_strategy)
@settings(max_examples=40, deadline=None)
def test_join_matches_nested_loop(left, right):
    session = SparkSession(SparkContext(4))
    session.createOrReplaceTempView(
        "a", session.createDataFrame(left, ["k", "v", "tag"])
    )
    session.createOrReplaceTempView(
        "b",
        session.createDataFrame(
            [(k, v) for k, v, _t in right], ["k2", "w"]
        ),
    )
    result = session.sql(
        "SELECT a.v, b.w FROM a JOIN b ON a.k = b.k2"
    )
    expected = sorted(
        (v, w)
        for k, v, _t in left
        for k2, w, _t2 in right
        if k == k2
    )
    assert sorted(tuple(r) for r in result.collect()) == expected


@given(left=rows_strategy, right=rows_strategy)
@settings(max_examples=30, deadline=None)
def test_optimized_and_plain_plans_agree(left, right):
    session = SparkSession(SparkContext(4))
    session.createOrReplaceTempView(
        "a", session.createDataFrame(left, ["k", "v", "tag"])
    )
    session.createOrReplaceTempView(
        "b",
        session.createDataFrame(
            [(k, v) for k, v, _t in right], ["k2", "w"]
        ),
    )
    sql = (
        "SELECT a.k, a.v, b.w FROM a JOIN b ON a.k = b.k2 "
        "WHERE a.v > 0 AND b.w < 10"
    )
    optimized = sorted(tuple(r) for r in session.sql(sql).collect())
    plain = sorted(
        tuple(r) for r in session.sql(sql, optimized=False).collect()
    )
    assert optimized == plain


@given(rows=rows_strategy, low=st.integers(-20, 0), high=st.integers(1, 20))
@settings(max_examples=40, deadline=None)
def test_between_matches_range_check(rows, low, high):
    session = make_session(rows)
    result = session.sql(
        "SELECT v FROM t WHERE v BETWEEN %d AND %d" % (low, high)
    )
    expected = sorted(v for _k, v, _t in rows if low <= v <= high)
    assert sorted(r["v"] for r in result.collect()) == expected
