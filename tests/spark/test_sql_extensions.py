"""Tests for SQL HAVING / BETWEEN / LIKE and the extra RDD operators."""

import pytest

from repro.spark.column import LikeExpr, col
from repro.spark.sql.lexer import SqlSyntaxError


@pytest.fixture
def orders(session):
    df = session.createDataFrame(
        [
            ("alice", 100, "books"),
            ("bob", 250, "tools"),
            ("alice", 50, "books"),
            ("carol", 300, "games"),
            ("ted", 80, "toolsets"),
        ],
        ["customer", "amount", "category"],
    )
    session.createOrReplaceTempView("orders", df)
    return session


class TestHaving:
    def test_filters_aggregates(self, orders):
        result = orders.sql(
            "SELECT customer, SUM(amount) AS total FROM orders "
            "GROUP BY customer HAVING total > 150 ORDER BY total"
        )
        assert [tuple(r) for r in result.collect()] == [
            ("bob", 250),
            ("carol", 300),
        ]

    def test_having_on_count(self, orders):
        result = orders.sql(
            "SELECT customer, COUNT(*) AS n FROM orders "
            "GROUP BY customer HAVING n >= 2"
        )
        assert [tuple(r) for r in result.collect()] == [("alice", 2)]

    def test_having_can_reference_group_key(self, orders):
        result = orders.sql(
            "SELECT customer, COUNT(*) AS n FROM orders "
            "GROUP BY customer HAVING customer = 'bob'"
        )
        assert result.collect()[0]["customer"] == "bob"


class TestBetween:
    def test_inclusive_bounds(self, orders):
        result = orders.sql(
            "SELECT customer FROM orders WHERE amount BETWEEN 80 AND 250 "
            "ORDER BY customer"
        )
        assert [r["customer"] for r in result.collect()] == [
            "alice",
            "bob",
            "ted",
        ]

    def test_not_between(self, orders):
        result = orders.sql(
            "SELECT customer FROM orders WHERE amount NOT BETWEEN 80 AND 250"
        )
        assert {r["customer"] for r in result.collect()} == {
            "alice",
            "carol",
        }

    def test_between_with_expressions(self, orders):
        result = orders.sql(
            "SELECT customer FROM orders WHERE amount * 2 BETWEEN 500 AND 700"
        )
        assert {r["customer"] for r in result.collect()} == {
            "bob",
            "carol",
        }


class TestLike:
    def test_percent_wildcard(self, orders):
        result = orders.sql(
            "SELECT customer FROM orders WHERE category LIKE 'tool%' "
            "ORDER BY customer"
        )
        assert [r["customer"] for r in result.collect()] == ["bob", "ted"]

    def test_underscore_wildcard(self, orders):
        result = orders.sql(
            "SELECT customer FROM orders WHERE category LIKE 'tool_'"
        )
        assert [r["customer"] for r in result.collect()] == ["bob"]

    def test_not_like(self, orders):
        result = orders.sql(
            "SELECT DISTINCT customer FROM orders WHERE category NOT LIKE '%s'"
        )
        assert result.count() == 0  # every category ends in 's'

    def test_regex_metacharacters_escaped(self, session):
        df = session.createDataFrame([("a.c",), ("abc",)], ["v"])
        session.createOrReplaceTempView("t", df)
        result = session.sql("SELECT v FROM t WHERE v LIKE 'a.c'")
        assert [r["v"] for r in result.collect()] == ["a.c"]

    def test_like_expr_null_is_false(self):
        expr = LikeExpr(col("x"), "a%")
        assert expr.eval({"x": None}) is False

    def test_like_needs_string_pattern(self, orders):
        with pytest.raises(SqlSyntaxError):
            orders.sql("SELECT customer FROM orders WHERE category LIKE 5")


class TestExtraRddOperators:
    def test_aggregateByKey(self, sc):
        pairs = sc.parallelize(
            [("a", 1), ("a", 5), ("b", 2)], 3
        )
        # Track (sum, count) per key.
        result = dict(
            pairs.aggregateByKey(
                (0, 0),
                lambda acc, v: (acc[0] + v, acc[1] + 1),
                lambda x, y: (x[0] + y[0], x[1] + y[1]),
            ).collect()
        )
        assert result == {"a": (6, 2), "b": (2, 1)}

    def test_foldByKey(self, sc):
        pairs = sc.parallelize([("a", 2), ("a", 3), ("b", 4)])
        assert dict(
            pairs.foldByKey(1, lambda x, y: x * y).collect()
        ) == {"a": 6, "b": 4}

    def test_takeOrdered(self, sc):
        rdd = sc.parallelize([5, 1, 4, 2, 3])
        assert rdd.takeOrdered(3) == [1, 2, 3]
        assert rdd.takeOrdered(2, key=lambda x: -x) == [5, 4]

    def test_zip(self, sc):
        a = sc.parallelize([1, 2, 3], 2)
        b = sc.parallelize(["x", "y", "z"], 3)
        assert a.zip(b).collect() == [(1, "x"), (2, "y"), (3, "z")]

    def test_zip_length_mismatch(self, sc):
        with pytest.raises(ValueError):
            sc.parallelize([1]).zip(sc.parallelize([1, 2])).collect()
