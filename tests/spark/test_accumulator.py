"""Tests for accumulators."""

from repro.spark.accumulator import Accumulator


class TestAccumulator:
    def test_default_integer_sum(self, sc):
        acc = sc.accumulator(0, name="matches")
        sc.parallelize(range(10)).foreach(lambda x: acc.add(1))
        assert acc.value == 10

    def test_iadd_syntax(self, sc):
        acc = sc.accumulator(0)

        def bump(x):
            nonlocal acc
            acc += x

        sc.parallelize([1, 2, 3]).foreach(bump)
        assert acc.value == 6

    def test_custom_add_function(self, sc):
        acc = sc.accumulator(
            zero=[], add=lambda a, b: a + b, name="collector"
        )
        sc.parallelize(["a", "b"]).foreach(lambda x: acc.add([x]))
        assert acc.value == ["a", "b"]

    def test_reset(self, sc):
        acc = sc.accumulator(0)
        acc.add(5)
        acc.reset()
        assert acc.value == 0

    def test_used_inside_transformations(self, sc):
        acc = sc.accumulator(0, name="filtered_out")

        def keep(x):
            if x % 2:
                return True
            acc.add(1)
            return False

        result = sc.parallelize(range(10)).filter(keep).collect()
        assert result == [1, 3, 5, 7, 9]
        assert acc.value == 5

    def test_repr(self):
        acc = Accumulator(0, name="x")
        acc.add(2)
        assert "x" in repr(acc) and "2" in repr(acc)
