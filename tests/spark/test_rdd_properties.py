"""Property-based tests: RDD operators agree with plain-Python semantics."""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.spark.context import SparkContext
from repro.spark.partitioner import HashPartitioner

ints = st.lists(st.integers(-50, 50), max_size=60)
pairs = st.lists(
    st.tuples(st.integers(0, 9), st.integers(-100, 100)), max_size=60
)
partitions = st.integers(1, 7)


def make_sc():
    return SparkContext(default_parallelism=4)


@given(data=ints, n=partitions)
@settings(max_examples=60, deadline=None)
def test_collect_preserves_order_and_content(data, n):
    assert make_sc().parallelize(data, n).collect() == data


@given(data=ints, n=partitions)
@settings(max_examples=60, deadline=None)
def test_map_matches_builtin(data, n):
    rdd = make_sc().parallelize(data, n)
    assert rdd.map(lambda x: x * 3 + 1).collect() == [x * 3 + 1 for x in data]


@given(data=ints, n=partitions)
@settings(max_examples=60, deadline=None)
def test_filter_matches_builtin(data, n):
    rdd = make_sc().parallelize(data, n)
    assert rdd.filter(lambda x: x % 2 == 0).collect() == [
        x for x in data if x % 2 == 0
    ]

@given(data=ints, n=partitions)
@settings(max_examples=60, deadline=None)
def test_count_matches_len(data, n):
    assert make_sc().parallelize(data, n).count() == len(data)


@given(data=ints, n=partitions)
@settings(max_examples=60, deadline=None)
def test_distinct_matches_set(data, n):
    rdd = make_sc().parallelize(data, n)
    assert sorted(rdd.distinct().collect()) == sorted(set(data))


@given(data=ints, n=partitions)
@settings(max_examples=60, deadline=None)
def test_sortBy_matches_sorted(data, n):
    rdd = make_sc().parallelize(data, n)
    assert rdd.sortBy(lambda x: x).collect() == sorted(data)
    assert rdd.sortBy(lambda x: x, ascending=False).collect() == sorted(
        data, reverse=True
    )


@given(data=pairs, n=partitions)
@settings(max_examples=60, deadline=None)
def test_reduceByKey_matches_counter(data, n):
    rdd = make_sc().parallelize(data, n)
    expected = Counter()
    for key, value in data:
        expected[key] += value
    assert dict(rdd.reduceByKey(lambda a, b: a + b).collect()) == dict(
        expected
    )


@given(left=pairs, right=pairs)
@settings(max_examples=40, deadline=None)
def test_join_matches_nested_loop(left, right):
    sc = make_sc()
    result = sorted(sc.parallelize(left).join(sc.parallelize(right)).collect())
    expected = sorted(
        (k, (lv, rv)) for k, lv in left for k2, rv in right if k == k2
    )
    assert result == expected


@given(left=pairs, right=pairs)
@settings(max_examples=40, deadline=None)
def test_broadcast_join_equals_partitioned_join(left, right):
    sc = make_sc()
    partitioned = sorted(
        sc.parallelize(left).join(sc.parallelize(right)).collect()
    )
    broadcast = sorted(
        sc.parallelize(left).broadcastJoin(sc.parallelize(right)).collect()
    )
    assert partitioned == broadcast


@given(left=pairs, right=pairs)
@settings(max_examples=40, deadline=None)
def test_leftOuterJoin_keeps_all_left(left, right):
    sc = make_sc()
    result = sc.parallelize(left).leftOuterJoin(sc.parallelize(right)).collect()
    right_keys = {k for k, _v in right}
    # Every left record appears at least once.
    left_counter = Counter(k for k, _v in left)
    result_counter = Counter(k for k, _pair in result)
    for key, count in left_counter.items():
        assert result_counter[key] >= count
    # Unmatched rows carry None.
    for key, (lv, rv) in result:
        if key not in right_keys:
            assert rv is None


@given(data=pairs, n=partitions)
@settings(max_examples=60, deadline=None)
def test_partitionBy_is_content_preserving_and_placed(data, n):
    sc = make_sc()
    part = HashPartitioner(n)
    placed = sc.parallelize(data).partitionBy(part)
    assert sorted(placed.collect()) == sorted(data)
    for index, bucket in enumerate(placed.collectPartitions()):
        assert all(part.partition_for(k) == index for k, _v in bucket)


@given(data=ints, a=partitions, b=partitions)
@settings(max_examples=40, deadline=None)
def test_repartition_then_coalesce_preserves_multiset(data, a, b):
    sc = make_sc()
    rdd = sc.parallelize(data, a).repartition(b).coalesce(1)
    assert sorted(rdd.collect()) == sorted(data)


@given(data=ints)
@settings(max_examples=40, deadline=None)
def test_union_is_multiset_sum(data):
    sc = make_sc()
    a = sc.parallelize(data)
    b = sc.parallelize(data)
    assert Counter(a.union(b).collect()) == Counter(data + data)
