"""Unit tests for the parallel executor backend (repro.spark.parallel).

The differential suites prove end-to-end byte-identity; this file pins
the individual mechanisms that identity rests on: backend construction
and validation, genuinely out-of-driver execution, the deterministic
merge protocol (metrics, accumulators), typed error shipping across the
process boundary, deadline aborts, and cache installation.
"""

import os
import pickle

import pytest

from repro.rdf.terms import BNode, Literal, URI
from repro.rdf.triple import Triple
from repro.spark.context import SparkContext
from repro.spark.deadline import DeadlineExceededError
from repro.spark.faults import TaskFailedError
from repro.spark.metrics import MetricsCollector
from repro.spark.parallel import (
    BackendConfigError,
    InProcessBackend,
    ParallelBackend,
    build_backend,
    parallel_available,
)
from repro.spark.row import Row

needs_fork = pytest.mark.skipif(
    not parallel_available(),
    reason="parallel backend needs the fork start method",
)


# ----------------------------------------------------------------------
# Backend construction and validation
# ----------------------------------------------------------------------


def test_build_backend_inprocess_default():
    backend = build_backend("inprocess", None)
    assert isinstance(backend, InProcessBackend)
    assert backend.name == "inprocess"
    assert backend.workers == 1


@needs_fork
def test_build_backend_parallel():
    backend = build_backend("parallel", 3)
    assert isinstance(backend, ParallelBackend)
    assert backend.name == "parallel"
    assert backend.workers == 3


def test_unknown_backend_rejected():
    with pytest.raises(BackendConfigError):
        build_backend("yarn", None)


def test_zero_workers_rejected():
    with pytest.raises(BackendConfigError):
        build_backend("parallel", 0)


def test_workers_ignored_by_inprocess_backend():
    # Documented contract (--workers help text): the serial oracle has
    # exactly one executor regardless of the requested pool size.
    backend = build_backend("inprocess", 4)
    assert isinstance(backend, InProcessBackend)
    assert backend.workers == 1


def test_context_exposes_backend_knobs():
    sc = SparkContext(4)
    assert sc.backend == "inprocess"
    assert sc.workers == 1


# ----------------------------------------------------------------------
# Real out-of-driver execution
# ----------------------------------------------------------------------


@needs_fork
def test_tasks_actually_run_in_worker_processes():
    sc = SparkContext(default_parallelism=4, backend="parallel", workers=2)
    driver_pid = os.getpid()
    pids = set(
        sc.parallelize(list(range(8)), 4).map(lambda _: os.getpid()).collect()
    )
    assert pids and driver_pid not in pids


@needs_fork
def test_single_partition_stage_stays_in_the_driver():
    # One task cannot benefit from a pool; the backend runs it on the
    # oracle path instead of paying a pointless fork.
    sc = SparkContext(default_parallelism=4, backend="parallel", workers=2)
    driver_pid = os.getpid()
    pids = set(
        sc.parallelize([1, 2, 3], 1).map(lambda _: os.getpid()).collect()
    )
    assert pids == {driver_pid}


@needs_fork
def test_shuffle_results_match_inprocess():
    data = [(i % 5, i) for i in range(40)]
    serial = (
        SparkContext(4)
        .parallelize(data, 4)
        .reduceByKey(lambda a, b: a + b)
        .collect()
    )
    parallel = (
        SparkContext(4, backend="parallel", workers=4)
        .parallelize(data, 4)
        .reduceByKey(lambda a, b: a + b)
        .collect()
    )
    assert parallel == serial


# ----------------------------------------------------------------------
# Deterministic metrics merge
# ----------------------------------------------------------------------


def test_merge_delta_is_order_independent():
    # Workers report in completion order, which is nondeterministic; the
    # merged collector must not depend on it -- including the counter
    # *insertion* order, which leaks into every snapshot iteration.
    deltas = [
        [("shuffle_records", 3), ("records_scanned", 7)],
        [("join_comparisons", 2)],
        [("records_scanned", 1), ("broadcast_bytes", 5)],
    ]
    first = MetricsCollector()
    for delta in deltas:
        first.merge_delta(delta)
    second = MetricsCollector()
    for delta in reversed(deltas):
        second.merge_delta(delta)
    assert dict(first.snapshot()) == dict(second.snapshot())
    assert list(first.snapshot()) == list(second.snapshot())


def test_merge_delta_accepts_mappings_and_skips_zeros():
    collector = MetricsCollector()
    collector.merge_delta({"records_scanned": 4, "shuffle_records": 0})
    flat = {name: value for name, value in collector.snapshot() if value}
    assert flat == {"records_scanned": 4}


@needs_fork
def test_parallel_metrics_equal_serial_metrics():
    def job(sc):
        return (
            sc.parallelize([(i % 3, i) for i in range(30)], 6)
            .reduceByKey(lambda a, b: a + b)
            .collect()
        )

    serial_sc = SparkContext(4)
    parallel_sc = SparkContext(4, backend="parallel", workers=3)
    assert job(parallel_sc) == job(serial_sc)
    assert dict(parallel_sc.metrics.snapshot()) == dict(
        serial_sc.metrics.snapshot()
    )


# ----------------------------------------------------------------------
# Accumulators
# ----------------------------------------------------------------------


@needs_fork
def test_accumulator_updates_cross_the_process_boundary():
    sc = SparkContext(4, backend="parallel", workers=2)
    acc = sc.accumulator(0)
    sc.parallelize(list(range(20)), 4).foreach(lambda x: acc.add(x))
    assert acc.value == sum(range(20))


@needs_fork
def test_accumulator_merge_matches_serial():
    def job(sc):
        acc = sc.accumulator(0)
        sc.parallelize(list(range(12)), 4).foreach(lambda x: acc.add(1))
        return acc.value

    assert job(SparkContext(4, backend="parallel", workers=4)) == job(
        SparkContext(4)
    )


# ----------------------------------------------------------------------
# Error shipping
# ----------------------------------------------------------------------


@needs_fork
def test_worker_exceptions_arrive_typed():
    sc = SparkContext(4, backend="parallel", workers=2)

    def boom(x):
        if x == 5:
            raise ValueError("bad record %d" % x)
        return x

    with pytest.raises(ValueError, match="bad record 5"):
        sc.parallelize(list(range(8)), 4).map(boom).collect()


@needs_fork
def test_task_failed_error_crosses_the_boundary():
    sc = SparkContext(
        4,
        backend="parallel",
        workers=2,
        faults="fail:p=1.0;seed=1",
        max_task_attempts=2,
    )
    with pytest.raises(TaskFailedError):
        sc.parallelize(list(range(8)), 4).map(lambda x: x).collect()


def test_fault_and_deadline_errors_pickle_round_trip():
    task_error = TaskFailedError(stage="map", partition=3, attempts=4)
    copy = pickle.loads(pickle.dumps(task_error))
    assert isinstance(copy, TaskFailedError)
    assert (copy.stage, copy.partition, copy.attempts) == ("map", 3, 4)

    deadline_error = DeadlineExceededError(budget=10, spent=12, query="q")
    copy = pickle.loads(pickle.dumps(deadline_error))
    assert isinstance(copy, DeadlineExceededError)
    assert (copy.budget, copy.spent, copy.query) == (10, 12, "q")


def test_immutable_rdf_terms_pickle_round_trip():
    # The raising __setattr__ on terms breaks default slots unpickling;
    # __reduce__ reconstructs through __init__ instead.  Workers ship
    # these in every result payload, so a regression here bricks the
    # whole backend.
    for term in (
        URI("http://example.org/x"),
        BNode("b0"),
        Literal("42", datatype=URI("http://www.w3.org/2001/XMLSchema#int")),
        Literal("chat", language="fr"),
    ):
        copy = pickle.loads(pickle.dumps(term))
        assert copy == term and hash(copy) == hash(term)
    triple = Triple(
        URI("http://example.org/s"),
        URI("http://example.org/p"),
        Literal("o"),
    )
    assert pickle.loads(pickle.dumps(triple)) == triple


def test_row_pickle_round_trip():
    row = Row(("a", "b"), (1, "x"))
    copy = pickle.loads(pickle.dumps(row))
    assert copy == row
    assert copy.a == 1 and copy["b"] == "x"


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------


@needs_fork
def test_deadline_abort_matches_serial_semantics():
    def run(backend, workers=None):
        sc = SparkContext(4, backend=backend, workers=workers)
        data = sc.parallelize(list(range(400)), 8)
        sc.set_deadline(5)
        try:
            data.map(lambda x: x).collect()
        except DeadlineExceededError as exc:
            return type(exc).__name__
        return None

    assert run("parallel", 2) == run("inprocess") == "DeadlineExceededError"


# ----------------------------------------------------------------------
# Cache installation
# ----------------------------------------------------------------------


@needs_fork
def test_cached_partitions_install_on_the_driver():
    sc = SparkContext(4, backend="parallel", workers=2)
    rdd = sc.parallelize(list(range(16)), 4).map(lambda x: x * 2).cache()
    first = rdd.collect()
    scanned_after_first = sc.metrics.snapshot().records_scanned
    second = rdd.collect()
    assert second == first
    # The second collect served from the driver-installed cache: no new
    # scan work, exactly like the serial backend.
    assert sc.metrics.snapshot().records_scanned == scanned_after_first


@needs_fork
def test_cache_contents_match_serial_backend():
    def job(sc):
        rdd = sc.parallelize(list(range(10)), 4).map(lambda x: x + 1).cache()
        rdd.collect()
        return rdd.collect()

    assert job(SparkContext(4, backend="parallel", workers=2)) == job(
        SparkContext(4)
    )
