"""Unit tests for the column expression language."""

import pytest

from repro.spark.column import (
    Alias,
    BinaryOp,
    ColumnRef,
    Literal,
    UnaryOp,
    col,
    conjoin,
    lit,
    output_name,
    split_conjuncts,
)


class TestEvaluation:
    def test_column_ref(self):
        assert col("x").eval({"x": 5}) == 5

    def test_column_ref_missing_raises(self):
        with pytest.raises(KeyError):
            col("x").eval({"y": 1})

    def test_literal(self):
        assert lit(42).eval({}) == 42

    def test_comparisons(self):
        row = {"a": 3, "b": 5}
        assert (col("a") < col("b")).eval(row) is True
        assert (col("a") >= col("b")).eval(row) is False
        assert (col("a") == lit(3)).eval(row) is True
        assert (col("a") != lit(3)).eval(row) is False

    def test_arithmetic(self):
        row = {"a": 10, "b": 4}
        assert (col("a") + col("b")).eval(row) == 14
        assert (col("a") - col("b")).eval(row) == 6
        assert (col("a") * lit(2)).eval(row) == 20
        assert (col("a") / col("b")).eval(row) == 2.5

    def test_boolean_ops(self):
        row = {"a": True, "b": False}
        assert (col("a") & col("b")).eval(row) is False
        assert (col("a") | col("b")).eval(row) is True
        assert (~col("a")).eval(row) is False

    def test_null_handling(self):
        row = {"a": None}
        assert (col("a") == lit(1)).eval(row) is False
        assert (col("a") + lit(1)).eval(row) is None
        assert col("a").isNull().eval(row) is True
        assert col("a").isNotNull().eval(row) is False

    def test_isin(self):
        row = {"x": 2}
        assert col("x").isin(1, 2, 3).eval(row) is True
        assert col("x").isin([5, 6]).eval(row) is False

    def test_alias_evaluates_child(self):
        assert (col("x") + lit(1)).alias("y").eval({"x": 1}) == 2

    def test_comparison_wraps_plain_values(self):
        expr = col("x") == "hello"
        assert isinstance(expr.right, Literal)
        assert expr.eval({"x": "hello"}) is True


class TestStructure:
    def test_references(self):
        expr = (col("a") + col("b")) > lit(3)
        assert expr.references() == {"a", "b"}

    def test_references_isin(self):
        expr = col("a").isin(col("b"), lit(3))
        assert expr.references() == {"a", "b"}

    def test_output_name(self):
        assert output_name(col("x")) == "x"
        assert output_name(col("x").alias("y")) == "y"
        assert output_name(lit(1), default="fallback") == "fallback"

    def test_split_conjuncts_flattens_ands(self):
        expr = (col("a") > lit(1)) & (col("b") > lit(2)) & (col("c") > lit(3))
        parts = split_conjuncts(expr)
        assert len(parts) == 3

    def test_split_conjuncts_keeps_or_whole(self):
        expr = (col("a") > lit(1)) | (col("b") > lit(2))
        assert len(split_conjuncts(expr)) == 1

    def test_conjoin_roundtrip(self):
        parts = [col("a") > lit(1), col("b") > lit(2)]
        rebuilt = conjoin(parts)
        assert rebuilt.eval({"a": 5, "b": 5}) is True
        assert rebuilt.eval({"a": 0, "b": 5}) is False

    def test_conjoin_empty_returns_none(self):
        assert conjoin([]) is None

    def test_invalid_operator_rejected(self):
        with pytest.raises(ValueError):
            BinaryOp("%%", lit(1), lit(2))
        with pytest.raises(ValueError):
            UnaryOp("sqrt", lit(1))

    def test_same_as_structural_equality(self):
        assert (col("a") > lit(1)).same_as(col("a") > lit(1))
        assert not (col("a") > lit(1)).same_as(col("a") > lit(2))
