"""The Pregel-based algorithms agree with the reference implementations."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.spark.context import SparkContext
from repro.spark.graphx import (
    Graph,
    connected_components,
    connected_components_pregel,
    shortest_paths,
    shortest_paths_pregel,
)


def build(edges):
    return Graph.from_edge_tuples(
        SparkContext(4), [(a, b, None) for a, b in edges]
    )


class TestConnectedComponentsPregel:
    def test_two_components(self):
        graph = build([(1, 2), (2, 3), (4, 5)])
        labels = connected_components_pregel(graph)
        assert labels[1] == labels[2] == labels[3] == 1
        assert labels[4] == labels[5] == 4

    def test_direction_ignored(self):
        graph = build([(2, 1), (3, 2)])
        labels = connected_components_pregel(graph)
        assert labels[1] == labels[2] == labels[3]

    def test_matches_reference(self):
        rng = random.Random(5)
        edges = [
            (rng.randrange(15), rng.randrange(15)) for _ in range(18)
        ]
        edges = [(a, b) for a, b in edges if a != b]
        graph = build(edges)
        pregel_labels = connected_components_pregel(graph)
        reference = connected_components(graph)
        # Same partitioning of vertices (labels are both component minima).
        assert pregel_labels == reference


class TestShortestPathsPregel:
    def test_simple_chain(self):
        graph = build([(1, 2), (2, 3), (3, 4)])
        distances = shortest_paths_pregel(graph, [4])
        assert distances[1][4] == 3
        assert distances[4][4] == 0

    def test_shortcut_preferred(self):
        graph = build([(1, 2), (2, 3), (1, 3)])
        distances = shortest_paths_pregel(graph, [3])
        assert distances[1][3] == 1

    def test_unreachable_absent(self):
        graph = build([(1, 2), (3, 4)])
        distances = shortest_paths_pregel(graph, [2])
        assert 2 not in distances[3]

    def test_multiple_landmarks(self):
        graph = build([(1, 2), (2, 3)])
        distances = shortest_paths_pregel(graph, [2, 3])
        assert distances[1] == {2: 1, 3: 2}


@given(
    st.lists(
        st.tuples(st.integers(0, 9), st.integers(0, 9)),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=25, deadline=None)
def test_pregel_variants_match_references(raw_edges):
    edges = [(a, b) for a, b in raw_edges if a != b]
    if not edges:
        return
    graph = build(edges)
    assert connected_components_pregel(graph) == connected_components(graph)
    landmark = edges[0][1]
    assert shortest_paths_pregel(graph, [landmark]) == shortest_paths(
        graph, [landmark]
    )
