"""Oracle-differential: the parallel backend must be byte-invisible.

The in-process backend is the byte-exact oracle.  Every engine, on every
query of the shared workload, must produce a canonical wire-form answer
(:func:`repro.server.protocol.canonical_result` rendered through
:func:`canonical_json`) that is byte-identical whether partition tasks
ran serially in the driver or on a forked worker pool -- for every pool
size, and with the cost-based optimizer and materialized ExtVP views
switched on.  Merged driver-side metrics must be invariant too: the
counters are a deterministic function of the plan, not of scheduling.

CI runs the 2-worker column of the matrix; the full workers x optimizer
sweep carries the ``slow`` marker and runs on the scheduled job.
"""

import os

import pytest

from repro.data.lubm import LubmGenerator
from repro.server.protocol import canonical_json, canonical_result
from repro.spark.context import SparkContext
from repro.spark.parallel import parallel_available
from repro.sparql.parser import parse_sparql
from repro.systems import ALL_ENGINE_CLASSES, NaiveEngine

pytestmark = pytest.mark.skipif(
    not parallel_available(),
    reason="parallel backend needs the fork start method",
)

ENGINES = (NaiveEngine,) + ALL_ENGINE_CLASSES

#: Worker counts the full (slow) sweep exercises; CI keeps to 2.
ALL_WORKERS = (1, 2, 4)

_EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
    "examples",
    "queries",
    "clean",
)


def _read_examples():
    corpus = {}
    for name in sorted(os.listdir(_EXAMPLES_DIR)):
        if name.endswith(".rq"):
            path = os.path.join(_EXAMPLES_DIR, name)
            with open(path, "r", encoding="utf-8") as handle:
                corpus["example:" + name[:-3]] = handle.read()
    return corpus


WORKLOAD = {
    "star": LubmGenerator.query_star(),
    "linear": LubmGenerator.query_linear(),
    "snowflake": LubmGenerator.query_snowflake(),
    "complex": LubmGenerator.query_complex(),
}
WORKLOAD.update(_read_examples())


def engine_id(cls):
    return cls.profile.name


def _optimizer(graph, views=False):
    from repro.optimizer import Optimizer

    return Optimizer.for_graph(graph, views=views)


def run_canonical(
    engine_class,
    graph,
    query,
    backend="inprocess",
    workers=None,
    optimize=False,
    views=False,
    optimizer=None,
):
    """(canonical JSON bytes, metrics counters) for one execution.

    Returns (None, None) when the engine's fragment does not cover the
    query -- support is a property of the plan, so it cannot differ
    between backends.  Pass a prebuilt ``optimizer`` to skip the
    per-run catalog/view build (it is engine- and backend-independent).
    """
    ctx = SparkContext(4, backend=backend, workers=workers)
    engine = engine_class(ctx)
    engine.load(graph)
    if optimizer is not None:
        engine.set_optimizer(optimizer)
    elif optimize:
        engine.set_optimizer(_optimizer(graph, views=views))
    if not engine.supports(query):
        return None, None
    result = engine.execute(query)
    payload = canonical_json(canonical_result(result, query))
    counters = {name: value for name, value in ctx.metrics.snapshot()}
    return payload, counters


@pytest.fixture(scope="module")
def parsed_workload():
    return {name: parse_sparql(text) for name, text in WORKLOAD.items()}


@pytest.fixture(scope="module")
def oracle(lubm_graph, parsed_workload):
    """In-process canonical bytes and counters per (engine, query)."""
    answers = {}
    for engine_class in ENGINES:
        for name, query in parsed_workload.items():
            answers[(engine_class.profile.name, name)] = run_canonical(
                engine_class, lubm_graph, query
            )
    return answers


@pytest.mark.parametrize("query_name", sorted(WORKLOAD))
@pytest.mark.parametrize("engine_class", ENGINES, ids=engine_id)
def test_parallel_matches_oracle_bytes(
    engine_class, query_name, lubm_graph, parsed_workload, oracle
):
    expected_payload, expected_counters = oracle[
        (engine_class.profile.name, query_name)
    ]
    payload, counters = run_canonical(
        engine_class,
        lubm_graph,
        parsed_workload[query_name],
        backend="parallel",
        workers=2,
    )
    if expected_payload is None:
        assert payload is None
        pytest.skip("engine fragment does not cover this query")
    assert payload == expected_payload
    assert counters == expected_counters


@pytest.mark.slow
@pytest.mark.parametrize("workers", ALL_WORKERS)
@pytest.mark.parametrize("query_name", sorted(WORKLOAD))
@pytest.mark.parametrize("engine_class", ENGINES, ids=engine_id)
def test_parallel_matches_oracle_across_pool_sizes(
    engine_class, query_name, workers, lubm_graph, parsed_workload, oracle
):
    expected_payload, expected_counters = oracle[
        (engine_class.profile.name, query_name)
    ]
    payload, counters = run_canonical(
        engine_class,
        lubm_graph,
        parsed_workload[query_name],
        backend="parallel",
        workers=workers,
    )
    assert payload == expected_payload
    assert counters == expected_counters


@pytest.mark.parametrize("views", [False, True], ids=["optimize", "views"])
def test_parallel_matches_oracle_under_optimizer(
    views, lubm_graph, parsed_workload
):
    # The optimizer rewrites join orders and substitutes ExtVP views;
    # the backend must be invisible through that whole pipeline too.
    query = parsed_workload["complex"]
    expected = run_canonical(
        NaiveEngine, lubm_graph, query, optimize=True, views=views
    )
    got = run_canonical(
        NaiveEngine,
        lubm_graph,
        query,
        backend="parallel",
        workers=2,
        optimize=True,
        views=views,
    )
    assert got == expected


@pytest.fixture(scope="module")
def view_optimizer(lubm_graph):
    """One shared views-enabled optimizer: engine/backend-independent."""
    return _optimizer(lubm_graph, views=True)


@pytest.fixture(scope="module")
def views_oracle(lubm_graph, parsed_workload, view_optimizer):
    """In-process canonical bytes/counters with views substituted."""
    answers = {}
    for engine_class in ENGINES:
        for name, query in parsed_workload.items():
            answers[(engine_class.profile.name, name)] = run_canonical(
                engine_class, lubm_graph, query, optimizer=view_optimizer
            )
    return answers


@pytest.mark.slow
@pytest.mark.parametrize("query_name", sorted(WORKLOAD))
@pytest.mark.parametrize("engine_class", ENGINES, ids=engine_id)
def test_parallel_matches_oracle_with_views(
    engine_class,
    query_name,
    lubm_graph,
    parsed_workload,
    views_oracle,
    view_optimizer,
):
    got = run_canonical(
        engine_class,
        lubm_graph,
        parsed_workload[query_name],
        backend="parallel",
        workers=2,
        optimizer=view_optimizer,
    )
    assert got == views_oracle[(engine_class.profile.name, query_name)]


def test_metrics_invariant_to_worker_count(lubm_graph, parsed_workload):
    # Scheduling must not leak into the cost model: the merged counters
    # are identical for every pool size, not merely the result bytes.
    query = parsed_workload["snowflake"]
    baselines = [
        run_canonical(
            NaiveEngine,
            lubm_graph,
            query,
            backend="parallel",
            workers=workers,
        )[1]
        for workers in ALL_WORKERS
    ]
    assert baselines[0] == baselines[1] == baselines[2]


def test_oracle_answers_are_nonempty(oracle):
    # An all-empty workload would make the byte-comparison vacuous.
    assert any(
        payload is not None and '"rows":[[' in payload
        for payload, _counters in oracle.values()
    )
