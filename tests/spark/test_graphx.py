"""Tests for the GraphX layer: graph ops, aggregateMessages, Pregel, lib."""

import pytest

from repro.spark.graphx import (
    Edge,
    Graph,
    connected_components,
    pagerank,
    pregel,
    shortest_paths,
    triangle_count,
)
from repro.spark.graphx.pregel import iterate_until_fixpoint


@pytest.fixture
def triangle(sc):
    """1 -> 2 -> 3 -> 1 plus an isolated edge 4 -> 5."""
    return Graph.from_edge_tuples(
        sc,
        [(1, 2, "knows"), (2, 3, "knows"), (3, 1, "knows"), (4, 5, "likes")],
    )


class TestGraphStructure:
    def test_counts(self, triangle):
        assert triangle.num_vertices() == 5
        assert triangle.num_edges() == 4

    def test_triplets_join_both_endpoints(self, triangle):
        triplets = sorted(
            (t.src, t.attr, t.dst) for t in triangle.triplets().collect()
        )
        assert triplets == [
            (1, "knows", 2),
            (2, "knows", 3),
            (3, "knows", 1),
            (4, "likes", 5),
        ]

    def test_mapVertices(self, triangle):
        mapped = triangle.mapVertices(lambda vid, attr: vid * 10)
        assert dict(mapped.vertices.collect())[3] == 30

    def test_mapEdges(self, triangle):
        mapped = triangle.mapEdges(lambda e: e.attr.upper())
        assert {e.attr for e in mapped.edges.collect()} == {"KNOWS", "LIKES"}

    def test_reverse(self, triangle):
        reversed_edges = {
            (e.src, e.dst) for e in triangle.reverse().edges.collect()
        }
        assert (2, 1) in reversed_edges

    def test_subgraph_by_edge_predicate(self, triangle):
        sub = triangle.subgraph(epred=lambda t: t.attr == "knows")
        assert sub.num_edges() == 3

    def test_subgraph_by_vertex_predicate_drops_dangling_edges(self, triangle):
        sub = triangle.subgraph(vpred=lambda vid, attr: vid != 2)
        assert sub.num_vertices() == 4
        assert sub.num_edges() == 2  # 1->2 and 2->3 gone

    def test_degrees(self, triangle):
        assert dict(triangle.out_degrees().collect())[1] == 1
        assert dict(triangle.in_degrees().collect())[1] == 1
        degrees = dict(triangle.degrees().collect())
        assert degrees[1] == 2 and degrees[5] == 1

    def test_outerJoinVertices(self, triangle, sc):
        labels = sc.parallelize([(1, "one")])
        joined = triangle.outerJoinVertices(
            labels, lambda vid, attr, opt: opt or "none"
        )
        attrs = dict(joined.vertices.collect())
        assert attrs[1] == "one" and attrs[2] == "none"

    def test_joinVertices_keeps_unmatched_attr(self, triangle, sc):
        base = triangle.mapVertices(lambda vid, attr: "base")
        joined = base.joinVertices(
            sc.parallelize([(1, "x")]), lambda vid, attr, value: value
        )
        attrs = dict(joined.vertices.collect())
        assert attrs[1] == "x" and attrs[2] == "base"


class TestAggregateMessages:
    def test_in_degree_via_messages(self, triangle):
        messages = triangle.aggregateMessages(
            lambda ctx: ctx.send_to_dst(1), lambda a, b: a + b
        )
        degrees = dict(messages.collect())
        assert degrees == {2: 1, 3: 1, 1: 1, 5: 1}

    def test_send_to_both_endpoints(self, triangle):
        messages = triangle.aggregateMessages(
            lambda ctx: (ctx.send_to_src(1), ctx.send_to_dst(1)),
            lambda a, b: a + b,
        )
        degrees = dict(messages.collect())
        assert degrees[1] == 2

    def test_only_messaged_vertices_present(self, sc):
        graph = Graph.from_edge_tuples(sc, [(1, 2, None)])
        messages = graph.aggregateMessages(
            lambda ctx: ctx.send_to_dst("m"), lambda a, b: a
        )
        assert dict(messages.collect()) == {2: "m"}

    def test_attributes_visible_in_context(self, sc):
        graph = Graph.from_edge_tuples(
            sc, [(1, 2, "e")], default_vertex_attr="attr"
        )
        seen = graph.aggregateMessages(
            lambda ctx: ctx.send_to_dst((ctx.src_attr, ctx.dst_attr, ctx.attr)),
            lambda a, b: a,
        )
        assert dict(seen.collect())[2] == ("attr", "attr", "e")


class TestPregel:
    def test_propagate_max_value(self, sc):
        graph = Graph.from_edge_tuples(
            sc, [(1, 2, None), (2, 3, None), (3, 4, None)]
        ).mapVertices(lambda vid, attr: vid)
        result = pregel(
            graph,
            initial_message=0,
            vprog=lambda vid, attr, msg: max(attr, msg),
            send=lambda ctx: (
                ctx.send_to_dst(ctx.src_attr)
                if ctx.src_attr > ctx.dst_attr
                else None
            ),
            merge=max,
        )
        attrs = dict(result.vertices.collect())
        # Max flows downstream only: vertex 4 sees everyone's max upstream.
        assert attrs[4] == 4 and attrs[2] == 2

    def test_stops_without_messages(self, sc):
        graph = Graph.from_edge_tuples(sc, [(1, 2, None)])
        calls = []

        def send(ctx):
            calls.append(1)

        pregel(
            graph,
            initial_message=None,
            vprog=lambda vid, attr, msg: attr,
            send=send,
            merge=lambda a, b: a,
            max_iterations=10,
        )
        # One superstep evaluated send; no messages -> loop ended.
        assert len(calls) == graph.num_edges()

    def test_iterate_until_fixpoint(self, sc):
        graph = Graph.from_edge_tuples(sc, [(1, 2, None)]).mapVertices(
            lambda vid, attr: 0
        )
        state = {"rounds": 0}

        def step(g):
            if state["rounds"] == 3:
                return None
            state["rounds"] += 1
            return g

        iterate_until_fixpoint(graph, step)
        assert state["rounds"] == 3


class TestLibraryAlgorithms:
    def test_pagerank_sums_to_vertex_count(self, triangle):
        ranks = pagerank(triangle, num_iterations=15)
        assert ranks  # non-empty
        # Cycle members get equal rank.
        assert abs(ranks[1] - ranks[2]) < 1e-9
        assert ranks[5] > ranks[4]  # 5 has an in-edge, 4 does not

    def test_pagerank_empty_graph(self, sc):
        graph = Graph(sc.parallelize([]), sc.parallelize([]))
        assert pagerank(graph) == {}

    def test_connected_components(self, triangle):
        components = connected_components(triangle)
        assert components[1] == components[2] == components[3]
        assert components[4] == components[5]
        assert components[1] != components[4]

    def test_triangle_count(self, triangle):
        counts = triangle_count(triangle)
        assert counts[1] == counts[2] == counts[3] == 1
        assert counts[4] == 0

    def test_shortest_paths(self, sc):
        graph = Graph.from_edge_tuples(
            sc, [(1, 2, None), (2, 3, None), (1, 3, None)]
        )
        distances = shortest_paths(graph, landmarks=[3])
        assert distances[1][3] == 1
        assert distances[2][3] == 1
        assert distances[3][3] == 0

    def test_shortest_paths_unreachable_absent(self, sc):
        graph = Graph.from_edge_tuples(sc, [(1, 2, None), (3, 4, None)])
        distances = shortest_paths(graph, landmarks=[2])
        assert 2 not in distances[3]
