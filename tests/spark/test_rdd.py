"""Unit tests for the RDD core: transformations, actions, shuffles."""

import pytest

from repro.spark.context import SparkContext
from repro.spark.partitioner import HashPartitioner, FunctionPartitioner


class TestBasicTransformations:
    def test_parallelize_collect_roundtrip(self, sc):
        data = list(range(37))
        assert sc.parallelize(data).collect() == data

    def test_parallelize_respects_partition_count(self, sc):
        rdd = sc.parallelize(range(100), 8)
        assert rdd.num_partitions == 8
        assert sum(len(p) for p in rdd.collectPartitions()) == 100

    def test_parallelize_more_partitions_than_items(self, sc):
        rdd = sc.parallelize([1, 2], 10)
        assert rdd.num_partitions == 2
        assert sorted(rdd.collect()) == [1, 2]

    def test_parallelize_empty(self, sc):
        assert sc.parallelize([]).collect() == []

    def test_map(self, sc):
        assert sc.parallelize([1, 2, 3]).map(lambda x: x * 10).collect() == [
            10,
            20,
            30,
        ]

    def test_filter(self, sc):
        result = sc.parallelize(range(10)).filter(lambda x: x % 2 == 0)
        assert result.collect() == [0, 2, 4, 6, 8]

    def test_flatMap(self, sc):
        result = sc.parallelize([1, 2]).flatMap(lambda x: [x] * x)
        assert result.collect() == [1, 2, 2]

    def test_mapPartitions_sees_whole_partition(self, sc):
        rdd = sc.parallelize(range(8), 4)
        sizes = rdd.mapPartitions(lambda p: [len(p)]).collect()
        assert sum(sizes) == 8
        assert len(sizes) == 4

    def test_mapPartitionsWithIndex(self, sc):
        rdd = sc.parallelize(range(4), 4)
        tagged = rdd.mapPartitionsWithIndex(
            lambda i, part: [(i, x) for x in part]
        )
        indices = {i for i, _x in tagged.collect()}
        assert indices <= {0, 1, 2, 3}

    def test_keyBy(self, sc):
        assert sc.parallelize([3, 4]).keyBy(lambda x: x % 2).collect() == [
            (1, 3),
            (0, 4),
        ]

    def test_keys_values_mapValues(self, sc):
        pairs = sc.parallelize([("a", 1), ("b", 2)])
        assert pairs.keys().collect() == ["a", "b"]
        assert pairs.values().collect() == [1, 2]
        assert pairs.mapValues(lambda v: v + 1).collect() == [
            ("a", 2),
            ("b", 3),
        ]

    def test_flatMapValues(self, sc):
        pairs = sc.parallelize([("a", [1, 2]), ("b", [])])
        assert pairs.flatMapValues(lambda v: v).collect() == [
            ("a", 1),
            ("a", 2),
        ]

    def test_glom(self, sc):
        rdd = sc.parallelize(range(6), 3)
        assert [len(g) for g in rdd.glom().collect()] == [2, 2, 2]

    def test_union_preserves_duplicates(self, sc):
        a = sc.parallelize([1, 2])
        b = sc.parallelize([2, 3])
        assert sorted(a.union(b).collect()) == [1, 2, 2, 3]

    def test_distinct(self, sc):
        rdd = sc.parallelize([1, 2, 2, 3, 3, 3])
        assert sorted(rdd.distinct().collect()) == [1, 2, 3]

    def test_sample_is_deterministic(self, sc):
        rdd = sc.parallelize(range(100))
        first = rdd.sample(0.3, seed=5).collect()
        second = rdd.sample(0.3, seed=5).collect()
        assert first == second
        assert 0 < len(first) < 100

    def test_zipWithIndex(self, sc):
        rdd = sc.parallelize(["a", "b", "c"], 2)
        assert rdd.zipWithIndex().collect() == [
            ("a", 0),
            ("b", 1),
            ("c", 2),
        ]


class TestWideTransformations:
    def test_reduceByKey(self, sc):
        pairs = sc.parallelize([("a", 1), ("b", 2), ("a", 3)])
        assert sorted(pairs.reduceByKey(lambda x, y: x + y).collect()) == [
            ("a", 4),
            ("b", 2),
        ]

    def test_groupByKey(self, sc):
        pairs = sc.parallelize([("a", 1), ("a", 2), ("b", 3)])
        grouped = dict(pairs.groupByKey().collect())
        assert sorted(grouped["a"]) == [1, 2]
        assert grouped["b"] == [3]

    def test_map_side_combine_reduces_shuffle_volume(self, sc):
        # 100 records, 2 keys: combining ships at most 2 records per map
        # partition instead of all 100.
        pairs = sc.parallelize([(i % 2, 1) for i in range(100)], 4)
        before = sc.metrics.snapshot()
        pairs.reduceByKey(lambda a, b: a + b).collect()
        cost = sc.metrics.snapshot() - before
        assert cost.shuffle_records <= 8  # 4 partitions x 2 keys

    def test_groupByKey_ships_every_record(self, sc):
        pairs = sc.parallelize([(i % 2, 1) for i in range(100)], 4)
        before = sc.metrics.snapshot()
        pairs.groupByKey().collect()
        cost = sc.metrics.snapshot() - before
        # list-append combiners still combine map-side in our model, but
        # the shipped payloads carry every record's value.
        assert cost.shuffle_records >= 2

    def test_partitionBy_places_keys_deterministically(self, sc):
        pairs = sc.parallelize([(i, i) for i in range(40)])
        part = HashPartitioner(4)
        placed = pairs.partitionBy(part)
        for index, bucket in enumerate(placed.collectPartitions()):
            for key, _value in bucket:
                assert part.partition_for(key) == index

    def test_partitionBy_same_partitioner_is_noop(self, sc):
        pairs = sc.parallelize([(i, i) for i in range(10)])
        placed = pairs.partitionBy(HashPartitioner(4))
        again = placed.partitionBy(HashPartitioner(4))
        assert again is placed

    def test_join(self, sc):
        left = sc.parallelize([("a", 1), ("b", 2), ("a", 3)])
        right = sc.parallelize([("a", "x"), ("c", "y")])
        assert sorted(left.join(right).collect()) == [
            ("a", (1, "x")),
            ("a", (3, "x")),
        ]

    def test_leftOuterJoin(self, sc):
        left = sc.parallelize([("a", 1), ("b", 2)])
        right = sc.parallelize([("a", "x")])
        assert sorted(left.leftOuterJoin(right).collect()) == [
            ("a", (1, "x")),
            ("b", (2, None)),
        ]

    def test_rightOuterJoin(self, sc):
        left = sc.parallelize([("a", 1)])
        right = sc.parallelize([("a", "x"), ("b", "y")])
        assert sorted(left.rightOuterJoin(right).collect()) == [
            ("a", (1, "x")),
            ("b", (None, "y")),
        ]

    def test_fullOuterJoin(self, sc):
        left = sc.parallelize([("a", 1)])
        right = sc.parallelize([("b", "y")])
        assert sorted(left.fullOuterJoin(right).collect()) == [
            ("a", (1, None)),
            ("b", (None, "y")),
        ]

    def test_join_on_shared_partitioner_moves_no_data(self, sc):
        part = HashPartitioner(4)
        left = sc.parallelize([(i, "l%d" % i) for i in range(50)]).partitionBy(
            part
        )
        right = sc.parallelize(
            [(i, "r%d" % i) for i in range(50)]
        ).partitionBy(part)
        left.cache().collect()
        right.cache().collect()
        before = sc.metrics.snapshot()
        assert left.join(right).count() == 50
        cost = sc.metrics.snapshot() - before
        assert cost.shuffle_records == 0

    def test_broadcastJoin_matches_partitioned_join(self, sc):
        left = sc.parallelize([(i % 5, i) for i in range(30)])
        right = sc.parallelize([(i, "x%d" % i) for i in range(5)])
        partitioned = sorted(left.join(right).collect())
        broadcast = sorted(left.broadcastJoin(right).collect())
        assert partitioned == broadcast

    def test_broadcastJoin_shuffles_nothing(self, sc):
        left = sc.parallelize([(i % 5, i) for i in range(30)])
        right = sc.parallelize([(i, "x") for i in range(5)])
        before = sc.metrics.snapshot()
        left.broadcastJoin(right).collect()
        cost = sc.metrics.snapshot() - before
        assert cost.shuffle_records == 0
        assert cost.broadcast_bytes > 0

    def test_cogroup(self, sc):
        left = sc.parallelize([("a", 1), ("a", 2)])
        right = sc.parallelize([("a", "x"), ("b", "y")])
        grouped = dict(left.cogroup(right).collect())
        assert sorted(grouped["a"][0]) == [1, 2]
        assert grouped["a"][1] == ["x"]
        assert grouped["b"] == ([], ["y"])

    def test_subtract(self, sc):
        a = sc.parallelize([1, 2, 3, 4])
        b = sc.parallelize([2, 4])
        assert sorted(a.subtract(b).collect()) == [1, 3]

    def test_subtractByKey(self, sc):
        a = sc.parallelize([("a", 1), ("b", 2)])
        b = sc.parallelize([("a", 99)])
        assert a.subtractByKey(b).collect() == [("b", 2)]

    def test_intersection(self, sc):
        a = sc.parallelize([1, 2, 3])
        b = sc.parallelize([2, 3, 4])
        assert sorted(a.intersection(b).collect()) == [2, 3]

    def test_cartesian(self, sc):
        a = sc.parallelize([1, 2], 1)
        b = sc.parallelize(["x", "y"], 1)
        assert sorted(a.cartesian(b).collect()) == [
            (1, "x"),
            (1, "y"),
            (2, "x"),
            (2, "y"),
        ]

    def test_cartesian_charges_nested_loop_comparisons(self, sc):
        a = sc.parallelize(range(10), 2)
        b = sc.parallelize(range(20), 2)
        before = sc.metrics.snapshot()
        assert a.cartesian(b).count() == 200
        cost = sc.metrics.snapshot() - before
        assert cost.join_comparisons == 200

    def test_sortBy_ascending(self, sc):
        rdd = sc.parallelize([5, 1, 4, 2, 3], 3)
        assert rdd.sortBy(lambda x: x).collect() == [1, 2, 3, 4, 5]

    def test_sortBy_descending(self, sc):
        rdd = sc.parallelize([5, 1, 4, 2, 3], 3)
        assert rdd.sortBy(lambda x: x, ascending=False).collect() == [
            5,
            4,
            3,
            2,
            1,
        ]

    def test_sortByKey(self, sc):
        rdd = sc.parallelize([(3, "c"), (1, "a"), (2, "b")])
        assert rdd.sortByKey().collect() == [(1, "a"), (2, "b"), (3, "c")]

    def test_repartition(self, sc):
        rdd = sc.parallelize(range(20), 2)
        wider = rdd.repartition(5)
        assert wider.num_partitions == 5
        assert sorted(wider.collect()) == list(range(20))

    def test_coalesce(self, sc):
        rdd = sc.parallelize(range(20), 8)
        narrower = rdd.coalesce(2)
        assert narrower.num_partitions == 2
        assert sorted(narrower.collect()) == list(range(20))

    def test_coalesce_does_not_shuffle(self, sc):
        rdd = sc.parallelize(range(20), 8)
        before = sc.metrics.snapshot()
        rdd.coalesce(2).collect()
        cost = sc.metrics.snapshot() - before
        assert cost.shuffle_records == 0


class TestActions:
    def test_count(self, sc):
        assert sc.parallelize(range(17)).count() == 17

    def test_first_and_take(self, sc):
        rdd = sc.parallelize([7, 8, 9], 2)
        assert rdd.first() == 7
        assert rdd.take(2) == [7, 8]
        assert rdd.take(100) == [7, 8, 9]

    def test_first_on_empty_raises(self, sc):
        with pytest.raises(ValueError):
            sc.emptyRDD().first()

    def test_isEmpty(self, sc):
        assert sc.emptyRDD().isEmpty()
        assert not sc.parallelize([1]).isEmpty()

    def test_reduce(self, sc):
        assert sc.parallelize(range(5)).reduce(lambda a, b: a + b) == 10

    def test_reduce_empty_raises(self, sc):
        with pytest.raises(ValueError):
            sc.emptyRDD().reduce(lambda a, b: a + b)

    def test_fold(self, sc):
        assert sc.parallelize([1, 2, 3]).fold(10, lambda a, b: a + b) == 16

    def test_sum_min_max(self, sc):
        rdd = sc.parallelize([4, 2, 9])
        assert rdd.sum() == 15
        assert rdd.min() == 2
        assert rdd.max() == 9

    def test_top(self, sc):
        assert sc.parallelize([3, 1, 4, 1, 5]).top(2) == [5, 4]

    def test_countByKey(self, sc):
        pairs = sc.parallelize([("a", 1), ("a", 2), ("b", 3)])
        assert pairs.countByKey() == {"a": 2, "b": 1}

    def test_countByValue(self, sc):
        assert sc.parallelize([1, 1, 2]).countByValue() == {1: 2, 2: 1}

    def test_lookup_with_partitioner_scans_one_partition(self, sc):
        pairs = sc.parallelize([(i, i * i) for i in range(40)]).partitionBy(
            HashPartitioner(4)
        )
        pairs.cache().collect()
        before = sc.metrics.snapshot()
        assert pairs.lookup(7) == [49]
        cost = sc.metrics.snapshot() - before
        assert cost.tasks <= 1

    def test_foreach(self, sc):
        seen = []
        sc.parallelize([1, 2, 3]).foreach(seen.append)
        assert seen == [1, 2, 3]


class TestCaching:
    def test_cache_prevents_recomputation(self, sc):
        calls = []

        def traced(x):
            calls.append(x)
            return x

        rdd = sc.parallelize(range(10)).map(traced).cache()
        rdd.collect()
        first = len(calls)
        rdd.collect()
        assert len(calls) == first

    def test_unpersist_recomputes(self, sc):
        calls = []
        rdd = sc.parallelize(range(5)).map(lambda x: calls.append(x) or x)
        rdd.cache().collect()
        rdd.unpersist()
        rdd.collect()
        assert len(calls) == 10


class TestCustomPartitioner:
    def test_function_partitioner(self, sc):
        pairs = sc.parallelize([(i, i) for i in range(10)])
        part = FunctionPartitioner(2, lambda k: 0 if k < 5 else 1, "split5")
        placed = pairs.partitionBy(part)
        buckets = placed.collectPartitions()
        assert all(k < 5 for k, _v in buckets[0])
        assert all(k >= 5 for k, _v in buckets[1])

    def test_function_partitioner_out_of_range_raises(self, sc):
        pairs = sc.parallelize([(99, 1)])
        part = FunctionPartitioner(2, lambda k: 7, "bad")
        with pytest.raises(ValueError):
            pairs.partitionBy(part).collect()


class TestExecutorModel:
    def test_remote_vs_local_shuffle_accounting(self):
        # 2 executors, 4 partitions: partition i lives on executor i % 2.
        sc = SparkContext(default_parallelism=4, num_executors=2)
        pairs = sc.parallelize([(i, i) for i in range(100)], 4)
        before = sc.metrics.snapshot()
        pairs.partitionBy(HashPartitioner(4)).collect()
        cost = sc.metrics.snapshot() - before
        assert cost.shuffle_records == 100
        assert 0 < cost.shuffle_remote_records < 100

    def test_executor_for_is_modular(self):
        sc = SparkContext(default_parallelism=8, num_executors=3)
        assert sc.executor_for(0) == 0
        assert sc.executor_for(3) == 0
        assert sc.executor_for(4) == 1
