"""Tests for GraphFrames: construction, degrees, filtering, motif finding."""

import pytest

from repro.spark.column import col, lit
from repro.spark.graphframes import GraphFrame, MotifSyntaxError, parse_motif
from repro.spark.graphframes.motif import MotifPattern


@pytest.fixture
def social(session):
    vertices = session.createDataFrame(
        [(i, "person%d" % i) for i in range(1, 6)], ["id", "name"]
    )
    edges = session.createDataFrame(
        [
            (1, 2, "knows"),
            (2, 3, "knows"),
            (1, 3, "likes"),
            (3, 4, "knows"),
            (5, 5, "knows"),
        ],
        ["src", "dst", "relationship"],
    )
    return GraphFrame(vertices, edges)


class TestMotifParser:
    def test_single_pattern(self):
        assert parse_motif("(a)-[e]->(b)") == [MotifPattern("a", "e", "b")]

    def test_multiple_patterns(self):
        patterns = parse_motif("(a)-[e]->(b); (b)-[f]->(c)")
        assert len(patterns) == 2
        assert patterns[1].src == "b"

    def test_anonymous_elements(self):
        patterns = parse_motif("(a)-[]->()")
        assert patterns[0].edge is None and patterns[0].dst is None

    def test_whitespace_tolerant(self):
        assert parse_motif(" ( a ) - [ e ] -> ( b ) ")[0].src == "a"

    def test_duplicate_edge_name_rejected(self):
        with pytest.raises(MotifSyntaxError):
            parse_motif("(a)-[e]->(b); (b)-[e]->(c)")

    def test_garbage_rejected(self):
        with pytest.raises(MotifSyntaxError):
            parse_motif("(a)->(b)")

    def test_empty_rejected(self):
        with pytest.raises(MotifSyntaxError):
            parse_motif("  ;  ")


class TestGraphFrame:
    def test_requires_id_src_dst(self, session):
        bad_vertices = session.createDataFrame([(1,)], ["vid"])
        good_vertices = session.createDataFrame([(1,)], ["id"])
        edges = session.createDataFrame([(1, 1, "x")], ["src", "dst", "l"])
        with pytest.raises(ValueError):
            GraphFrame(bad_vertices, edges)
        bad_edges = session.createDataFrame([(1, 1)], ["from", "to"])
        with pytest.raises(ValueError):
            GraphFrame(good_vertices, bad_edges)

    def test_degrees(self, social):
        in_degrees = {
            r["id"]: r["inDegree"] for r in social.inDegrees().collect()
        }
        assert in_degrees[3] == 2
        out_degrees = {
            r["id"]: r["outDegree"] for r in social.outDegrees().collect()
        }
        assert out_degrees[1] == 2
        degrees = {r["id"]: r["degree"] for r in social.degrees().collect()}
        assert degrees[5] == 2  # self loop counts twice

    def test_filterVertices_drops_dangling_edges(self, social):
        filtered = social.filterVertices(col("id") != lit(3))
        assert filtered.vertices.count() == 4
        assert filtered.edges.count() == 2  # only 1->2 and 5->5 survive

    def test_filterEdges(self, social):
        filtered = social.filterEdges(col("relationship") == lit("likes"))
        assert filtered.edges.count() == 1
        assert filtered.vertices.count() == 5  # untouched

    def test_dropIsolatedVertices(self, social):
        filtered = social.filterEdges(
            col("relationship") == lit("likes")
        ).dropIsolatedVertices()
        assert {r["id"] for r in filtered.vertices.collect()} == {1, 3}


class TestMotifFinding:
    def test_single_edge_motif(self, social):
        result = social.find("(a)-[e]->(b)")
        assert result.count() == 5
        assert "a.id" in result.columns and "e.relationship" in result.columns

    def test_vertex_attributes_joined(self, social):
        result = social.find("(a)-[e]->(b)")
        row = result.where(col("a.id") == lit(1)).where(
            col("b.id") == lit(2)
        ).collect()[0]
        assert row["a.name"] == "person1"
        assert row["b.name"] == "person2"

    def test_two_hop_motif(self, social):
        result = social.find("(a)-[e]->(b); (b)-[f]->(c)")
        paths = {
            (r["a.id"], r["b.id"], r["c.id"]) for r in result.collect()
        }
        assert (1, 2, 3) in paths
        assert (2, 3, 4) in paths

    def test_motif_with_filter(self, social):
        result = social.find("(a)-[e]->(b)").where(
            col("e.relationship") == lit("likes")
        )
        assert result.count() == 1

    def test_anonymous_edge_has_no_columns(self, social):
        result = social.find("(a)-[]->(b)")
        assert not any("relationship" in c for c in result.columns)
        assert result.count() == 5

    def test_anonymous_vertex_constrains_but_hidden(self, social):
        result = social.find("(a)-[e]->()")
        assert result.count() == 5
        assert all(not c.startswith("__") for c in result.columns)

    def test_self_loop_matched(self, social):
        result = social.find("(a)-[e]->(a)")
        assert [r["a.id"] for r in result.collect()] == [5]

    def test_triangle_motif(self, social):
        result = social.find("(a)-[e]->(b); (b)-[f]->(c); (a)-[g]->(c)")
        triangles = {
            (r["a.id"], r["b.id"], r["c.id"]) for r in result.collect()
        }
        # Motifs do not enforce vertex distinctness: the 5->5 self loop
        # satisfies all three terms, exactly as in GraphFrames proper.
        assert triangles == {(1, 2, 3), (5, 5, 5)}

    def test_disconnected_motif_is_cartesian(self, social):
        result = social.find("(a)-[e]->(b); (c)-[f]->(d)")
        assert result.count() == 25
