"""Tests for the Spark SQL stack: lexer, parser, optimizer, execution."""

import pytest

from repro.spark.column import col, lit
from repro.spark.sql.ast import Filter, Join, Limit, Project, Scan, Sort
from repro.spark.sql.catalyst import (
    estimated_rows,
    fold_constants,
    optimize,
    output_columns,
)
from repro.spark.sql.executor import SqlAnalysisError, resolve_name
from repro.spark.sql.lexer import SqlSyntaxError, Token, tokenize
from repro.spark.sql.parser import parse_sql


@pytest.fixture
def catalog(session):
    orders = session.createDataFrame(
        [
            (1, "alice", 100, "books"),
            (2, "bob", 250, "tools"),
            (3, "alice", 50, "books"),
            (4, "carol", 300, "games"),
        ],
        ["order_id", "customer", "amount", "category"],
    )
    customers = session.createDataFrame(
        [("alice", "GR"), ("bob", "DE"), ("carol", "US")],
        ["name", "country"],
    )
    session.createOrReplaceTempView("orders", orders)
    session.createOrReplaceTempView("customers", customers)
    return session


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT a FROM t WHERE x = 'hi'")
        kinds = [t.kind for t in tokens]
        assert kinds == [
            "keyword", "ident", "keyword", "ident", "keyword",
            "ident", "op", "string", "eof",
        ]

    def test_string_escapes(self):
        tokens = tokenize(r"SELECT 'it\'s'")
        assert tokens[1].value == "it's"

    def test_qualified_identifier_is_one_token(self):
        tokens = tokenize("SELECT a.b FROM t")
        assert tokens[1] == Token("ident", "a.b", 7)

    def test_numbers(self):
        tokens = tokenize("SELECT 12, 3.5")
        assert tokens[1].kind == "number" and tokens[3].kind == "number"

    def test_backquoted_identifier(self):
        tokens = tokenize("SELECT `weird name` FROM t")
        assert tokens[1] == Token("ident", "weird name", 7)

    def test_garbage_raises(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT #~@ FROM")

    def test_comparison_operators(self):
        values = [t.value for t in tokenize("a <= b >= c <> d != e")]
        assert "<=" in values and ">=" in values and "<>" in values


class TestParser:
    def test_simple_select(self):
        plan = parse_sql("SELECT a, b FROM t")
        assert isinstance(plan, Project)
        assert isinstance(plan.child, Scan)
        assert [name for _e, name in plan.items] == ["a", "b"]

    def test_select_star(self):
        plan = parse_sql("SELECT * FROM t")
        assert isinstance(plan, Scan)

    def test_where_builds_filter(self):
        plan = parse_sql("SELECT a FROM t WHERE a > 3 AND b = 'x'")
        assert isinstance(plan.child, Filter)

    def test_join_with_on(self):
        plan = parse_sql("SELECT a FROM t JOIN u ON t.k = u.k")
        join = plan.child
        assert isinstance(join, Join) and join.how == "inner"

    def test_join_kinds(self):
        for sql_kind, expected in [
            ("LEFT JOIN", "left"),
            ("LEFT OUTER JOIN", "left"),
            ("RIGHT JOIN", "right"),
            ("FULL OUTER JOIN", "outer"),
            ("LEFT SEMI JOIN", "semi"),
        ]:
            plan = parse_sql(
                "SELECT a FROM t %s u ON t.k = u.k" % sql_kind
            )
            assert plan.child.how == expected

    def test_cross_join_needs_no_on(self):
        plan = parse_sql("SELECT a FROM t CROSS JOIN u")
        assert plan.child.how == "cross"

    def test_join_without_on_raises(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT a FROM t JOIN u")

    def test_group_by_aggregates(self):
        plan = parse_sql(
            "SELECT k, COUNT(*) AS n, SUM(v) AS total FROM t GROUP BY k"
        )
        aggregate = plan.child
        assert aggregate.group_by == ["k"]
        assert ("count", "*", "n") in aggregate.aggregates
        assert ("sum", "v", "total") in aggregate.aggregates

    def test_count_distinct(self):
        plan = parse_sql("SELECT COUNT(DISTINCT v) AS n FROM t")
        assert plan.child.aggregates == [("count_distinct", "v", "n")]

    def test_non_grouped_column_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT k, v, COUNT(*) AS n FROM t GROUP BY k")

    def test_order_limit_offset(self):
        plan = parse_sql(
            "SELECT a FROM t ORDER BY a DESC, b LIMIT 5 OFFSET 2"
        )
        assert isinstance(plan, Limit)
        assert plan.count == 5 and plan.offset == 2
        sort = plan.child
        assert sort.orders == [("a", False), ("b", True)]

    def test_union_all_vs_union(self):
        plan = parse_sql("SELECT a FROM t UNION ALL SELECT a FROM u")
        assert plan._describe() == "Union(ALL)"
        plan = parse_sql("SELECT a FROM t UNION SELECT a FROM u")
        assert "Distinct" in plan.pretty()

    def test_in_list_and_is_null(self):
        plan = parse_sql(
            "SELECT a FROM t WHERE a IN (1, 2) AND b IS NOT NULL"
        )
        assert isinstance(plan.child, Filter)

    def test_pretty_renders_tree(self):
        text = parse_sql("SELECT a FROM t WHERE a = 1").pretty()
        assert "Project" in text and "Filter" in text and "Scan" in text


class TestCatalyst:
    def test_fold_constants(self):
        folded = fold_constants((lit(2) + lit(3)) * lit(4))
        assert folded.value == 20

    def test_fold_boolean_shortcuts(self):
        expr = fold_constants(lit(True) & (col("a") > lit(1)))
        assert repr(expr) == repr(col("a") > lit(1))
        assert fold_constants(lit(False) & (col("a") > lit(1))).value is False
        assert fold_constants(lit(True) | (col("a") > lit(1))).value is True

    def test_predicate_pushdown_reaches_scan(self, catalog):
        text = catalog.explain(
            "SELECT orders.amount FROM orders JOIN customers "
            "ON orders.customer = customers.name WHERE orders.amount > 100"
        )
        lines = text.splitlines()
        filter_depth = next(
            i for i, l in enumerate(lines) if "Filter" in l
        )
        join_depth = next(i for i, l in enumerate(lines) if "Join" in l)
        assert filter_depth > join_depth  # filter moved below the join

    def test_projection_pruning_limits_scan_columns(self, catalog):
        text = catalog.explain("SELECT customer FROM orders")
        assert "[customer]" in text

    def test_build_side_swap_puts_smaller_right(self, catalog):
        text = catalog.explain(
            "SELECT orders.amount FROM customers JOIN orders "
            "ON customers.name = orders.customer"
        )
        # orders (4 rows) should stay left; customers (3 rows) moves right.
        lines = [l.strip() for l in text.splitlines() if "Scan" in l]
        assert "orders" in lines[0]

    def test_output_columns_qualified(self, catalog):
        plan = parse_sql("SELECT * FROM orders AS o")
        assert output_columns(plan, catalog) == [
            "o.order_id", "o.customer", "o.amount", "o.category",
        ]

    def test_estimated_rows(self, catalog):
        scan = Scan("orders")
        assert estimated_rows(scan, catalog) == 4
        assert estimated_rows(Filter(col("x") > lit(1), scan), catalog) < 4


class TestExecution:
    def test_select_where(self, catalog):
        result = catalog.sql(
            "SELECT customer, amount FROM orders WHERE amount >= 100"
        )
        assert {tuple(r) for r in result.collect()} == {
            ("alice", 100), ("bob", 250), ("carol", 300),
        }

    def test_join(self, catalog):
        result = catalog.sql(
            "SELECT orders.order_id, customers.country FROM orders "
            "JOIN customers ON orders.customer = customers.name "
            "ORDER BY order_id"
        )
        assert [tuple(r) for r in result.collect()] == [
            (1, "GR"), (2, "DE"), (3, "GR"), (4, "US"),
        ]

    def test_group_by(self, catalog):
        result = catalog.sql(
            "SELECT customer, SUM(amount) AS total FROM orders "
            "GROUP BY customer ORDER BY total DESC"
        )
        assert [tuple(r) for r in result.collect()] == [
            ("carol", 300), ("bob", 250), ("alice", 150),
        ]

    def test_distinct(self, catalog):
        result = catalog.sql("SELECT DISTINCT category FROM orders")
        assert result.count() == 3

    def test_limit_offset(self, catalog):
        result = catalog.sql(
            "SELECT order_id FROM orders ORDER BY order_id LIMIT 2 OFFSET 1"
        )
        assert [r["order_id"] for r in result.collect()] == [2, 3]

    def test_union_all(self, catalog):
        result = catalog.sql(
            "SELECT customer FROM orders UNION ALL SELECT customer FROM orders"
        )
        assert result.count() == 8

    def test_union_dedupes(self, catalog):
        result = catalog.sql(
            "SELECT customer FROM orders UNION SELECT customer FROM orders"
        )
        assert result.count() == 3

    def test_semi_join(self, catalog):
        result = catalog.sql(
            "SELECT a.order_id FROM orders AS a LEFT SEMI JOIN customers AS b "
            "ON a.customer = b.name"
        )
        assert result.count() == 4

    def test_cross_join(self, catalog):
        result = catalog.sql(
            "SELECT orders.order_id, customers.name FROM orders "
            "CROSS JOIN customers"
        )
        assert result.count() == 12

    def test_self_join_with_aliases(self, catalog):
        result = catalog.sql(
            "SELECT a.order_id, b.order_id AS other FROM orders AS a "
            "JOIN orders AS b ON a.customer = b.customer "
            "WHERE a.order_id != b.order_id"
        )
        assert {tuple(r) for r in result.collect()} == {(1, 3), (3, 1)}

    def test_in_and_is_null(self, catalog, session):
        nullable = session.createDataFrame(
            [(1, None), (2, "x")], ["id", "tag"]
        )
        session.createOrReplaceTempView("nullable", nullable)
        assert session.sql(
            "SELECT id FROM nullable WHERE tag IS NULL"
        ).collect()[0]["id"] == 1
        assert session.sql(
            "SELECT id FROM nullable WHERE id IN (2, 3)"
        ).collect()[0]["id"] == 2

    def test_arithmetic_in_projection(self, catalog):
        result = catalog.sql(
            "SELECT amount * 2 AS double_amount FROM orders "
            "WHERE order_id = 1"
        )
        assert result.collect()[0]["double_amount"] == 200

    def test_unknown_table_raises(self, catalog):
        with pytest.raises(KeyError):
            catalog.sql("SELECT a FROM missing")

    def test_unknown_column_raises(self, catalog):
        with pytest.raises(SqlAnalysisError):
            catalog.sql("SELECT missing_col FROM orders")

    def test_ambiguous_column_raises(self, catalog):
        with pytest.raises(SqlAnalysisError):
            catalog.sql(
                "SELECT customer FROM orders AS a JOIN orders AS b "
                "ON a.order_id = b.order_id"
            )

    def test_unoptimized_execution_agrees(self, catalog):
        sql = (
            "SELECT orders.customer, SUM(amount) AS total FROM orders "
            "JOIN customers ON orders.customer = customers.name "
            "WHERE amount > 60 GROUP BY customer ORDER BY customer"
        )
        optimized = [tuple(r) for r in catalog.sql(sql).collect()]
        plain = [tuple(r) for r in catalog.sql(sql, optimized=False).collect()]
        assert optimized == plain


class TestResolveName:
    def test_exact(self):
        assert resolve_name("a.x", ["a.x", "b.x"]) == "a.x"

    def test_suffix(self):
        assert resolve_name("y", ["a.x", "a.y"]) == "a.y"

    def test_missing_raises(self):
        with pytest.raises(SqlAnalysisError):
            resolve_name("z", ["a.x"])

    def test_ambiguous_raises(self):
        with pytest.raises(SqlAnalysisError):
            resolve_name("x", ["a.x", "b.x"])
