"""Property-based oracle-differential: random graphs, random BGPs.

The hand-written differential suite covers the committed workload; this
one closes the gap with generated inputs.  For every random small graph
and random connected basic graph pattern, the parallel backend must
produce the exact canonical wire bytes the in-process oracle produces,
and the merged driver-side cost counters (records scanned, shuffle
records) must be invariant to the worker-pool size -- scheduling is not
allowed to leak into the cost model.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rdf.graph import RDFGraph
from repro.rdf.terms import Literal, URI
from repro.rdf.triple import Triple
from repro.server.protocol import canonical_json, canonical_result
from repro.spark.context import SparkContext
from repro.spark.parallel import parallel_available
from repro.sparql.parser import parse_sparql
from repro.systems import NaiveEngine, SparqlgxEngine

pytestmark = pytest.mark.skipif(
    not parallel_available(),
    reason="parallel backend needs the fork start method",
)

NS = "http://example.org/"
PREDICATES = 3

#: One random edge: (subject id, predicate id, object id or literal id).
edges = st.lists(
    st.tuples(
        st.integers(0, 5),
        st.integers(0, PREDICATES - 1),
        st.one_of(st.integers(0, 5), st.text("ab", max_size=2)),
    ),
    min_size=1,
    max_size=30,
)

#: Per-pattern choices for a connected BGP: predicate id and whether the
#: pattern extends the chain or fans out of the first variable (a star).
shapes = st.lists(
    st.tuples(st.integers(0, PREDICATES - 1), st.booleans()),
    min_size=1,
    max_size=3,
)


def build_graph(raw_edges):
    triples = []
    for s, p, o in raw_edges:
        obj = (
            URI("%so%d" % (NS, o))
            if isinstance(o, int)
            else Literal(o)
        )
        triples.append(
            Triple(URI("%ss%d" % (NS, s)), URI("%sp%d" % (NS, p)), obj)
        )
    return RDFGraph(triples)


def build_bgp(raw_shapes):
    """A connected BGP: each pattern chains or stars off earlier ones."""
    patterns = []
    for index, (pred, chain) in enumerate(raw_shapes):
        subject = "?v%d" % index if chain else "?v0"
        patterns.append(
            "%s <%sp%d> ?v%d ." % (subject, NS, pred, index + 1)
        )
    variables = sorted({v for p in patterns for v in p.split() if v[0] == "?"})
    return "SELECT %s WHERE { %s }" % (
        " ".join(variables),
        " ".join(patterns),
    )


def run_canonical(engine_class, graph, query, backend, workers=None):
    ctx = SparkContext(4, backend=backend, workers=workers)
    engine = engine_class(ctx)
    engine.load(graph)
    result = engine.execute(query)
    counters = ctx.metrics.snapshot()
    return (
        canonical_json(canonical_result(result, query)),
        counters.records_scanned,
        counters.shuffle_records,
    )


@given(raw_edges=edges, raw_shapes=shapes)
@settings(max_examples=25, deadline=None)
def test_parallel_equals_inprocess_on_random_bgps(raw_edges, raw_shapes):
    graph = build_graph(raw_edges)
    query = parse_sparql(build_bgp(raw_shapes))
    oracle = run_canonical(NaiveEngine, graph, query, "inprocess")
    for workers in (2, 3):
        assert (
            run_canonical(NaiveEngine, graph, query, "parallel", workers)
            == oracle
        )


@given(raw_edges=edges, raw_shapes=shapes)
@settings(max_examples=10, deadline=None)
def test_partitioned_engine_agrees_on_random_bgps(raw_edges, raw_shapes):
    # A second engine family (vertical partitioning) exercises shuffle
    # paths the naive scan-join plan never builds.
    graph = build_graph(raw_edges)
    query = parse_sparql(build_bgp(raw_shapes))
    oracle = run_canonical(SparqlgxEngine, graph, query, "inprocess")
    assert (
        run_canonical(SparqlgxEngine, graph, query, "parallel", 2) == oracle
    )
