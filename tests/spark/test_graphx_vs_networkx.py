"""Cross-validate the GraphX library algorithms against networkx."""

import random

import networkx as nx
import pytest

from repro.spark.context import SparkContext
from repro.spark.graphx import (
    Graph,
    connected_components,
    pagerank,
    shortest_paths,
    triangle_count,
)


def random_edges(n, m, seed):
    rng = random.Random(seed)
    edges = set()
    while len(edges) < m:
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b:
            edges.add((a, b))
    return sorted(edges)


@pytest.fixture(params=[3, 11, 23], ids=lambda s: "seed%d" % s)
def graphs(request):
    edges = random_edges(n=12, m=20, seed=request.param)
    ours = Graph.from_edge_tuples(
        SparkContext(4), [(a, b, None) for a, b in edges]
    )
    theirs = nx.DiGraph(edges)
    return ours, theirs


def test_pagerank_agrees(graphs):
    ours, theirs = graphs
    mine = pagerank(ours, num_iterations=60, handle_dangling=True)
    reference = nx.pagerank(theirs, alpha=0.85, max_iter=200)
    # networkx normalizes to sum 1; ours to sum n.  Compare shapes.
    n = theirs.number_of_nodes()
    for node in theirs.nodes:
        assert mine[node] / n == pytest.approx(reference[node], abs=0.02)

    # Rankings agree on the extremes.
    top_mine = max(mine, key=mine.get)
    top_theirs = max(reference, key=reference.get)
    assert top_mine == top_theirs


def test_connected_components_agree(graphs):
    ours, theirs = graphs
    mine = connected_components(ours)
    reference = list(nx.connected_components(theirs.to_undirected()))
    # Same partition of the vertex set.
    mine_groups = {}
    for node, label in mine.items():
        mine_groups.setdefault(label, set()).add(node)
    assert sorted(map(sorted, mine_groups.values())) == sorted(
        map(sorted, reference)
    )


def test_triangle_count_agrees(graphs):
    ours, theirs = graphs
    mine = triangle_count(ours)
    reference = nx.triangles(theirs.to_undirected())
    assert mine == reference


def test_shortest_paths_agree(graphs):
    ours, theirs = graphs
    landmark = sorted(theirs.nodes)[0]
    mine = shortest_paths(ours, [landmark])
    # Our distances follow edge direction (vertex -> landmark).
    reference = nx.shortest_path_length(theirs, target=landmark)
    for node in theirs.nodes:
        expected = reference.get(node)
        got = mine[node].get(landmark)
        assert got == expected
