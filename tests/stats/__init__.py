"""Tests for the shared statistics catalog (repro.stats)."""
