"""The statistics catalog: correctness, determinism, serialization."""

import pytest

from repro.rdf.graph import RDFGraph
from repro.rdf.terms import URI
from repro.rdf.triple import Triple
from repro.stats import StatsCatalog

EX = "http://example.org/"


def _uri(name):
    return URI(EX + name)


@pytest.fixture(scope="module")
def small_graph():
    """Two advisors with papers, one loner: known exact statistics."""
    graph = RDFGraph()
    for student, advisor in (("s1", "a1"), ("s2", "a1"), ("s3", "a2")):
        graph.add(Triple(_uri(student), _uri("advisor"), _uri(advisor)))
    for student in ("s1", "s2"):
        graph.add(Triple(_uri(student), _uri("writes"), _uri("p_" + student)))
    graph.add(Triple(_uri("loner"), _uri("writes"), _uri("p_loner")))
    return graph


def test_totals_match_graph(lubm_graph):
    catalog = StatsCatalog.from_graph(lubm_graph)
    assert catalog.triples == len(lubm_graph)
    assert catalog.distinct_subjects == len(lubm_graph.subjects())
    assert catalog.distinct_predicates == len(lubm_graph.predicates())
    assert catalog.distinct_objects == len(lubm_graph.objects())


def test_per_predicate_counts_match_graph(lubm_graph):
    catalog = StatsCatalog.from_graph(lubm_graph)
    expected = {
        term.n3(): count
        for term, count in lubm_graph.predicate_counts().items()
    }
    assert {
        p: stats.count for p, stats in catalog.predicates.items()
    } == expected
    assert catalog.predicate_count("<http://example.org/nope>") == 0
    assert catalog.predicate_stats("<http://example.org/nope>") is None


def test_characteristic_sets_partition_subjects(small_graph):
    catalog = StatsCatalog.from_graph(small_graph)
    by_preds = {cs.predicates: cs for cs in catalog.characteristic_sets}
    advisor, writes = _uri("advisor").n3(), _uri("writes").n3()
    assert by_preds[(advisor, writes)].subjects == 2  # s1, s2
    assert by_preds[(advisor,)].subjects == 1  # s3
    assert by_preds[(writes,)].subjects == 1  # loner
    assert (
        sum(cs.subjects for cs in catalog.characteristic_sets)
        == catalog.distinct_subjects
    )


def test_star_cardinality_exact_on_small_graph(small_graph):
    catalog = StatsCatalog.from_graph(small_graph)
    advisor, writes = _uri("advisor").n3(), _uri("writes").n3()
    # Joining the two partitions on the subject yields exactly s1 and s2.
    assert catalog.star_cardinality([advisor, writes]) == pytest.approx(2.0)
    assert catalog.star_cardinality([advisor]) == pytest.approx(3.0)
    assert catalog.star_cardinality(["<http://example.org/nope>"]) is None


def test_pair_selectivity_fractions(small_graph):
    catalog = StatsCatalog.from_graph(small_graph)
    advisor, writes = _uri("advisor").n3(), _uri("writes").n3()
    # 2 of the 3 advisor triples have a subject that also writes.
    assert catalog.selectivity("ss", advisor, writes) == pytest.approx(2 / 3)
    # 2 of the 3 writes triples have a subject with an advisor.
    assert catalog.selectivity("ss", writes, advisor) == pytest.approx(2 / 3)
    # No advisor object is ever a writing subject: total reduction.
    assert catalog.selectivity("os", writes, advisor) == 0.0
    # Unstored pairs (same predicate is never stored) default to 1.0.
    assert catalog.selectivity("ss", advisor, advisor) == 1.0
    with pytest.raises(ValueError):
        catalog.selectivity("oo", advisor, writes)


def test_json_round_trip_and_build_determinism(lubm_graph):
    first = StatsCatalog.from_graph(lubm_graph, version=3)
    second = StatsCatalog.from_graph(lubm_graph, version=3)
    assert first.to_json() == second.to_json()
    restored = StatsCatalog.from_json(first.to_json())
    assert restored.version == 3
    assert restored.to_json() == first.to_json()
    assert restored.summary() == first.summary()


def test_from_payload_rejects_unknown_format():
    with pytest.raises(ValueError, match="format"):
        StatsCatalog.from_payload({"format": 999})
