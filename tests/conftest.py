"""Shared fixtures: contexts, sessions, and generated datasets."""

from __future__ import annotations

import pytest

from repro.data.lubm import LubmGenerator
from repro.data.watdiv import WatdivGenerator
from repro.spark.context import SparkContext
from repro.spark.sql.session import SparkSession


@pytest.fixture
def sc() -> SparkContext:
    """A fresh 4-partition context per test."""
    return SparkContext(default_parallelism=4)


@pytest.fixture
def session(sc: SparkContext) -> SparkSession:
    return SparkSession(sc)


@pytest.fixture(scope="session")
def lubm_graph():
    """A small LUBM-like instance graph (shared; treat as read-only)."""
    return LubmGenerator(num_universities=1, seed=42).generate()


@pytest.fixture(scope="session")
def lubm_graph_with_tbox():
    return LubmGenerator(num_universities=1, seed=42).generate(
        include_tbox=True
    )


@pytest.fixture(scope="session")
def watdiv_graph():
    """A small WatDiv-like instance graph (shared; treat as read-only)."""
    return WatdivGenerator(num_users=30, num_products=15, seed=7).generate()
