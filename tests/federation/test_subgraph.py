"""The harvester: exact paging, staleness, refresh, and the
differential property -- a harvested subgraph validates byte-identically
to the remote graph it was paged out of."""

import hashlib

import pytest

from repro.federation import (
    HarvestError,
    StaleSubgraphError,
    Subgraph,
    WireEndpoint,
    harvest_for_shapes,
    validate_remote_first,
)
from repro.federation.endpoint import pair_endpoint
from repro.server.service import QueryService
from repro.shacl import (
    ServiceExecutor,
    ShaclValidator,
    load_shapes_file,
)
from repro.spark.context import SparkContext

LUBM = "http://repro.example.org/lubm#"
ADVISOR_HARVEST = (
    "CONSTRUCT { ?s <%(l)sadvisor> ?o } WHERE { ?s <%(l)sadvisor> ?o }"
    % {"l": LUBM}
)
NEW_TRIPLE = (
    "<http://example.org/s> <http://example.org/p> <http://example.org/o> ."
)


def sha(report) -> str:
    return hashlib.sha256(report.to_json().encode("utf-8")).hexdigest()


class TestPaging:
    def test_pages_reassemble_the_full_answer(self, lubm_graph):
        unpaged = Subgraph(pair_endpoint(lubm_graph.copy()), page_size=10_000)
        bulk = unpaged.harvest(ADVISOR_HARVEST)
        paged = Subgraph(pair_endpoint(lubm_graph.copy()), page_size=5)
        record = paged.harvest(ADVISOR_HARVEST)
        assert bulk.pages == 1
        assert record.pages == (record.triples + 4) // 5
        assert record.pages > 1
        assert sorted(t.n3() for t in paged.head().to_list()) == sorted(
            t.n3() for t in unpaged.head().to_list()
        )

    def test_harvest_record_accounting(self, lubm_graph):
        subgraph = Subgraph(pair_endpoint(lubm_graph.copy()), page_size=7)
        record = subgraph.harvest(ADVISOR_HARVEST, id="advisors")
        assert record.id == "advisors"
        assert record.triples == record.new_triples == len(subgraph)
        assert record.units > 0
        assert record.remote_version == 0
        payload = record.to_payload()
        assert payload["pages"] == record.pages
        assert "text" not in payload

    def test_overlapping_harvests_dedupe(self, lubm_graph):
        subgraph = Subgraph(pair_endpoint(lubm_graph.copy()), page_size=16)
        first = subgraph.harvest(ADVISOR_HARVEST)
        second = subgraph.harvest(ADVISOR_HARVEST)
        assert first.new_triples == first.triples
        assert second.new_triples == 0
        assert len(subgraph) == first.triples

    def test_local_history_records_each_harvest(self, lubm_graph):
        subgraph = Subgraph(pair_endpoint(lubm_graph.copy()), page_size=16)
        assert subgraph.versions.head_version == 0
        subgraph.harvest(ADVISOR_HARVEST)
        assert subgraph.versions.head_version == 1

    def test_rejects_select_queries(self, lubm_graph):
        subgraph = Subgraph(pair_endpoint(lubm_graph.copy()))
        with pytest.raises(ValueError):
            subgraph.harvest("SELECT ?s WHERE { ?s ?p ?o }")

    def test_rejects_pre_paged_queries(self, lubm_graph):
        subgraph = Subgraph(pair_endpoint(lubm_graph.copy()))
        with pytest.raises(ValueError):
            subgraph.harvest(ADVISOR_HARVEST + " LIMIT 3")

    def test_rejects_bad_page_size(self, lubm_graph):
        with pytest.raises(ValueError):
            Subgraph(pair_endpoint(lubm_graph.copy()), page_size=0)

    def test_failed_page_raises_harvest_error(self, lubm_graph):
        # A 1-unit deadline kills the first page request.
        subgraph = Subgraph(pair_endpoint(lubm_graph.copy()), deadline=1)
        with pytest.raises(HarvestError):
            subgraph.harvest(ADVISOR_HARVEST)


class _ChurningEndpoint(WireEndpoint):
    """Commits a fresh triple under selected queries -- a writer racing
    the harvester.  ``every=0`` churns exactly once, under query 3."""

    def __init__(self, service, every: int = 0) -> None:
        super().__init__(service)
        self._every = every
        self._queries = 0

    def query(self, text, id="", tenant="federation", deadline=None):
        self._queries += 1
        churn = (
            self._queries % self._every == 0
            if self._every
            else self._queries == 3
        )
        if churn:
            self.commit(
                additions=[
                    "<http://example.org/churn%d> <http://example.org/p> "
                    '"%d" .' % (self._queries, self._queries)
                ]
            )
        return super().query(text, id=id, tenant=tenant, deadline=deadline)


class TestVersionConsistency:
    def test_mid_harvest_commit_triggers_restart(self, lubm_graph):
        # One churn under page 3: the first attempt aborts there, the
        # restart completes at the new (now stable) version.
        endpoint = _ChurningEndpoint(QueryService(lubm_graph.copy()))
        subgraph = Subgraph(endpoint, page_size=4)
        record = subgraph.harvest(ADVISOR_HARVEST)
        clean = Subgraph(pair_endpoint(lubm_graph.copy()), page_size=10_000)
        clean.harvest(ADVISOR_HARVEST)
        assert sorted(t.n3() for t in subgraph.head().to_list()) == sorted(
            t.n3() for t in clean.head().to_list()
        )
        assert record.remote_version == 1
        # The endpoint saw more page queries than the successful pass
        # kept: the discarded first attempt was real.
        assert endpoint._queries > record.pages

    def test_relentless_churn_exhausts_restarts(self, lubm_graph):
        endpoint = _ChurningEndpoint(QueryService(lubm_graph.copy()), every=2)
        subgraph = Subgraph(endpoint, page_size=4, max_restarts=1)
        with pytest.raises(HarvestError):
            subgraph.harvest(ADVISOR_HARVEST)


class TestStaleness:
    def test_unpopulated_cache_is_not_stale(self, lubm_graph):
        assert not Subgraph(pair_endpoint(lubm_graph.copy())).is_stale()

    def test_remote_commit_invalidates(self, lubm_graph):
        endpoint = pair_endpoint(lubm_graph.copy())
        subgraph = Subgraph(endpoint, page_size=64)
        subgraph.harvest(ADVISOR_HARVEST)
        assert not subgraph.is_stale()
        endpoint.commit(additions=[NEW_TRIPLE])
        assert subgraph.is_stale()
        with pytest.raises(StaleSubgraphError):
            subgraph.harvest(ADVISOR_HARVEST)

    def test_refresh_catches_up(self, lubm_graph):
        endpoint = pair_endpoint(lubm_graph.copy())
        subgraph = Subgraph(endpoint, page_size=64)
        subgraph.harvest(ADVISOR_HARVEST)
        grad = sorted(lubm_graph.to_list())[0].subject.n3()
        endpoint.commit(
            additions=["%s <%sadvisor> <%sNewAdvisor> ." % (grad, LUBM, LUBM)]
        )
        outcome = subgraph.refresh()
        assert outcome["refreshed"]
        assert outcome["added"] == 1
        assert outcome["remote_version"] == 1
        assert not subgraph.is_stale()
        # And harvesting is legal again at the new version.
        subgraph.harvest(ADVISOR_HARVEST, id="again")

    def test_refresh_removes_dropped_triples(self, lubm_graph):
        endpoint = pair_endpoint(lubm_graph.copy())
        subgraph = Subgraph(endpoint, page_size=64)
        before = subgraph.harvest(ADVISOR_HARVEST).triples
        dropped = sorted(
            subgraph.head().to_list(), key=lambda t: t.n3()
        )[0]
        endpoint.commit(deletions=[dropped.n3()])
        outcome = subgraph.refresh()
        assert outcome["removed"] == 1
        assert len(subgraph) == before - 1

    def test_noop_refresh(self, lubm_graph):
        endpoint = pair_endpoint(lubm_graph.copy())
        subgraph = Subgraph(endpoint, page_size=64)
        subgraph.harvest(ADVISOR_HARVEST)
        outcome = subgraph.refresh()
        assert outcome == {
            "refreshed": False,
            "remote_version": 0,
            "added": 0,
            "removed": 0,
            "pages": 0,
            "units": 0,
        }


class TestRemoteFirstValidation:
    @pytest.mark.parametrize(
        "fixture", ["lubm_clean", "lubm_violating"]
    )
    def test_harvested_equals_direct_remote_validation(
        self, lubm_graph, fixture
    ):
        shapes = load_shapes_file("examples/shapes/%s.json" % fixture)
        direct = ShaclValidator(
            ServiceExecutor(QueryService(lubm_graph.copy()))
        ).validate(shapes)
        harvested, subgraph = validate_remote_first(
            pair_endpoint(lubm_graph.copy()), shapes, page_size=9
        )
        assert sha(harvested) == sha(direct)
        assert harvested.to_json() == direct.to_json()
        # The harvest is shape-scoped: far fewer triples than the graph.
        assert 0 < len(subgraph) < len(lubm_graph)
        accounting = harvested.accounting["harvest"]
        assert accounting["remote_units"] > 0
        assert accounting["pages"] > 0
        assert accounting["remote_version"] == 0

    def test_harvest_for_shapes_one_record_per_harvest_query(
        self, lubm_graph
    ):
        from repro.shacl.compile import harvest_queries

        shapes = load_shapes_file("examples/shapes/lubm_clean.json")
        subgraph, records = harvest_for_shapes(
            pair_endpoint(lubm_graph.copy()), shapes, page_size=16
        )
        assert [r.id for r in records] == [
            c.id for c in harvest_queries(shapes)
        ]
        assert len(subgraph) == sum(r.new_triples for r in records)

    def test_local_query_needs_no_endpoint(self, lubm_graph):
        endpoint = pair_endpoint(lubm_graph.copy())
        subgraph = Subgraph(endpoint, page_size=64)
        subgraph.harvest(ADVISOR_HARVEST)
        before = endpoint.requests
        payload = subgraph.query(
            "SELECT ?s WHERE { ?s <%sadvisor> ?o }" % LUBM
        )
        assert payload["type"] == "bindings"
        assert payload["rows"]
        assert endpoint.requests == before

    def test_harvest_spans(self, lubm_graph):
        tracer = SparkContext(default_parallelism=2).tracer.enable()
        subgraph = Subgraph(
            pair_endpoint(lubm_graph.copy()), page_size=5, tracer=tracer
        )
        record = subgraph.harvest(ADVISOR_HARVEST, id="advisors")
        tracer.disable()
        spans = [
            span
            for root in tracer.roots
            for span in root.walk()
            if span.kind == "harvest"
        ]
        assert len(spans) == 1
        assert spans[0].name == "advisors"
        assert spans[0].attrs["pages"] == record.pages
        assert spans[0].attrs["triples"] == record.triples
