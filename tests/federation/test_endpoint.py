"""The wire endpoint: everything crosses as canonical JSON lines."""

import json

import pytest

from repro.federation import EndpointError, WireEndpoint
from repro.federation.endpoint import pair_endpoint
from repro.server.protocol import canonical_json
from repro.server.service import QueryRequest, QueryService

MEMBER_QUERY = (
    "PREFIX lubm: <http://repro.example.org/lubm#>\n"
    "SELECT ?s ?d WHERE { ?s lubm:memberOf ?d }"
)


class TestQueries:
    def test_wire_payload_equals_direct_submission(self, lubm_graph):
        endpoint = pair_endpoint(lubm_graph.copy())
        wire = endpoint.query(MEMBER_QUERY, id="q1", tenant="t")
        direct = QueryService(lubm_graph.copy()).submit(
            QueryRequest(text=MEMBER_QUERY, tenant="t", id="q1")
        )
        assert wire["status"] == "ok"
        assert wire["result"] == direct.payload
        assert wire["units"] == direct.service_units

    def test_response_is_json_clean(self, lubm_graph):
        response = pair_endpoint(lubm_graph.copy()).query(
            MEMBER_QUERY, id="q"
        )
        assert json.loads(canonical_json(response)) == response

    def test_error_status_passes_through(self, lubm_graph):
        response = pair_endpoint(lubm_graph.copy()).query("SELECT nope {")
        assert response["status"] != "ok"
        assert response.get("error")


class TestLifecycle:
    def test_requests_counter_counts_every_round_trip(self, lubm_graph):
        endpoint = pair_endpoint(lubm_graph.copy())
        assert endpoint.requests == 0
        endpoint.query(MEMBER_QUERY, id="q")
        endpoint.stats()
        _ = endpoint.version
        assert endpoint.requests == 3

    def test_commit_bumps_the_remote_version(self, lubm_graph):
        endpoint = pair_endpoint(lubm_graph.copy())
        before = endpoint.version
        endpoint.commit(
            additions=[
                "<http://example.org/s> <http://example.org/p> "
                "<http://example.org/o> ."
            ]
        )
        assert endpoint.version == before + 1

    def test_bad_commit_raises(self, lubm_graph):
        endpoint = pair_endpoint(lubm_graph.copy())
        with pytest.raises(EndpointError):
            endpoint.commit(additions=["this is not n-triples"])

    def test_malformed_request_raises(self, lubm_graph):
        endpoint = WireEndpoint(QueryService(lubm_graph.copy()))
        with pytest.raises(EndpointError):
            endpoint.request({"op": "no-such-op"})
