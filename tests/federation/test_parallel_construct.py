"""CONSTRUCT pages are byte-identical under every executor backend.

The harvester never sees which backend served a page, so pages fetched
from an in-process endpoint must match byte-for-byte whether the remote
service executes partition tasks serially or across 1, 2, or 4 worker
processes -- otherwise a harvest could stitch together backend-flavored
pages and the differential validation property would be vacuous.
"""

import pytest

from repro.federation import Subgraph
from repro.federation.endpoint import pair_endpoint
from repro.server.protocol import canonical_json
from repro.server.service import QueryRequest, QueryService
from repro.spark.parallel import parallel_available

pytestmark = pytest.mark.skipif(
    not parallel_available(),
    reason="parallel backend needs the fork start method",
)

LUBM = "http://repro.example.org/lubm#"
HARVEST = (
    "CONSTRUCT { ?s <%(l)sadvisor> ?o } WHERE { ?s <%(l)sadvisor> ?o }"
    % {"l": LUBM}
)
WORKERS = (1, 2, 4)


def _page_bytes(service) -> list:
    pages = []
    for offset in (0, 4, 8):
        outcome = service.submit(
            QueryRequest(
                text="%s LIMIT 4 OFFSET %d" % (HARVEST, offset),
                tenant="t",
                id="page@%d" % offset,
            )
        )
        assert outcome.status == "ok"
        pages.append(outcome.payload)
    return pages


class TestBackendIdentity:
    def test_pages_identical_across_worker_counts(self, lubm_graph):
        baseline = _page_bytes(QueryService(lubm_graph.copy()))
        for workers in WORKERS:
            pages = _page_bytes(
                QueryService(
                    lubm_graph.copy(), backend="parallel", workers=workers
                )
            )
            assert pages == baseline, "workers=%d diverged" % workers

    def test_harvest_identical_across_backends(self, lubm_graph):
        def harvested(**service_kwargs):
            endpoint = pair_endpoint(lubm_graph.copy(), **service_kwargs)
            subgraph = Subgraph(endpoint, page_size=5)
            subgraph.harvest(HARVEST)
            return canonical_json(subgraph.query(HARVEST))

        baseline = harvested()
        assert (
            harvested(backend="parallel", workers=2) == baseline
        )
