"""Tests for the LUBM-like and WatDiv-like generators."""

import pytest

from repro.data.lubm import LUBM, LubmGenerator
from repro.data.watdiv import WATDIV, WatdivGenerator
from repro.rdf.rdfs import RDFSReasoner
from repro.rdf.vocab import RDF
from repro.sparql.algebra import evaluate
from repro.sparql.parser import parse_sparql
from repro.sparql.shapes import QueryShape, classify_shape


class TestLubmGenerator:
    def test_deterministic(self):
        a = LubmGenerator(num_universities=1, seed=1).generate()
        b = LubmGenerator(num_universities=1, seed=1).generate()
        assert a == b

    def test_seed_changes_data(self):
        a = LubmGenerator(num_universities=1, seed=1).generate()
        b = LubmGenerator(num_universities=1, seed=2).generate()
        assert a != b

    def test_scales_with_universities(self):
        small = LubmGenerator(num_universities=1).generate()
        large = LubmGenerator(num_universities=3).generate()
        assert len(large) > 2 * len(small)

    def test_schema_structure(self, lubm_graph):
        assert lubm_graph.instances_of(LUBM.University)
        assert lubm_graph.instances_of(LUBM.Department)
        assert lubm_graph.instances_of(LUBM.Course)
        students = lubm_graph.instances_of(
            LUBM.GraduateStudent
        ) | lubm_graph.instances_of(LUBM.UndergraduateStudent)
        assert len(students) == 36  # 3 departments x 12

    def test_every_department_belongs_to_university(self, lubm_graph):
        for dept in lubm_graph.instances_of(LUBM.Department):
            parents = list(
                lubm_graph.triples((dept, LUBM.subOrganizationOf, None))
            )
            assert len(parents) == 1

    def test_advisors_are_professors(self, lubm_graph):
        professor_classes = {
            LUBM.FullProfessor,
            LUBM.AssociateProfessor,
            LUBM.AssistantProfessor,
        }
        for triple in lubm_graph.triples((None, LUBM.advisor, None)):
            assert lubm_graph.types_of(triple.object) & professor_classes

    def test_tbox_supports_inference(self):
        graph = LubmGenerator(num_universities=1).generate(include_tbox=True)
        closure = RDFSReasoner().materialize(graph)
        assert len(closure) > len(graph)

    def test_canonical_queries_parse_match_shape_and_answer(self, lubm_graph):
        expected_shapes = {
            "star": QueryShape.STAR,
            "linear": QueryShape.LINEAR,
            "snowflake": QueryShape.SNOWFLAKE,
            "complex": QueryShape.COMPLEX,
        }
        for name, text in LubmGenerator.all_queries().items():
            query = parse_sparql(text)
            if name in expected_shapes:
                assert classify_shape(query) is expected_shapes[name], name
            assert len(evaluate(query, lubm_graph)) > 0, name


class TestWatdivGenerator:
    def test_deterministic(self):
        a = WatdivGenerator(seed=3).generate()
        b = WatdivGenerator(seed=3).generate()
        assert a == b

    def test_entity_counts(self, watdiv_graph):
        assert len(watdiv_graph.instances_of(WATDIV.User)) == 30
        assert len(watdiv_graph.instances_of(WATDIV.Product)) == 15
        assert watdiv_graph.instances_of(WATDIV.Review)

    def test_reviews_connect_users_and_products(self, watdiv_graph):
        for review in watdiv_graph.instances_of(WATDIV.Review):
            reviewers = list(
                watdiv_graph.triples((review, WATDIV.reviewer, None))
            )
            targets = list(
                watdiv_graph.triples((review, WATDIV.reviewFor, None))
            )
            assert len(reviewers) == 1 and len(targets) == 1

    def test_product_popularity_skewed(self, watdiv_graph):
        counts = {}
        for triple in watdiv_graph.triples((None, WATDIV.purchased, None)):
            counts[triple.object] = counts.get(triple.object, 0) + 1
        most = max(counts.values())
        least = min(counts.values())
        assert most > least  # head product strictly more popular

    def test_canonical_queries(self, watdiv_graph):
        for name, text in WatdivGenerator.all_queries().items():
            query = parse_sparql(text)
            assert len(evaluate(query, watdiv_graph)) > 0, name
