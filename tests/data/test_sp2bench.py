"""Tests for the SP2Bench-like bibliographic generator."""

import pytest

from repro.data.sp2bench import SP2B, Sp2bGenerator
from repro.sparql.algebra import evaluate
from repro.sparql.parser import parse_sparql
from repro.sparql.shapes import QueryShape, classify_shape
from repro.spark.context import SparkContext
from repro.systems import S2RdfEngine, S2XEngine, SparqlgxEngine


@pytest.fixture(scope="module")
def sp2b_graph():
    return Sp2bGenerator(seed=11).generate()


class TestGenerator:
    def test_deterministic(self):
        assert Sp2bGenerator(seed=4).generate() == Sp2bGenerator(
            seed=4
        ).generate()

    def test_entity_counts(self, sp2b_graph):
        assert len(sp2b_graph.instances_of(SP2B.Article)) == 40
        assert len(sp2b_graph.instances_of(SP2B.Person)) == 25
        assert len(sp2b_graph.instances_of(SP2B.Journal)) == 6

    def test_citations_acyclic(self, sp2b_graph):
        # Citations point strictly backwards by construction: no article
        # reaches itself through cites edges.
        edges = {}
        for triple in sp2b_graph.triples((None, SP2B.cites, None)):
            edges.setdefault(triple.subject, []).append(triple.object)

        def reaches(start, target, seen):
            for nxt in edges.get(start, []):
                if nxt == target:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    if reaches(nxt, target, seen):
                        return True
            return False

        for article in list(edges)[:10]:
            assert not reaches(article, article, set())

    def test_every_article_has_journal_and_authors(self, sp2b_graph):
        for article in sp2b_graph.instances_of(SP2B.Article):
            assert list(sp2b_graph.triples((article, SP2B.journal, None)))
            assert list(sp2b_graph.triples((article, SP2B.creator, None)))


class TestCanonicalQueries:
    def test_shapes(self):
        assert (
            classify_shape(parse_sparql(Sp2bGenerator.query_article_star()))
            is QueryShape.STAR
        )
        assert (
            classify_shape(
                parse_sparql(Sp2bGenerator.query_citation_chain())
            )
            is QueryShape.LINEAR
        )
        assert (
            classify_shape(
                parse_sparql(Sp2bGenerator.query_journal_snowflake())
            )
            is QueryShape.SNOWFLAKE
        )

    @pytest.mark.parametrize("name", sorted(Sp2bGenerator.all_queries()))
    def test_queries_have_answers(self, sp2b_graph, name):
        query = parse_sparql(Sp2bGenerator.all_queries()[name])
        assert len(evaluate(query, sp2b_graph)) > 0

    def test_coauthors_symmetric(self, sp2b_graph):
        result = evaluate(
            parse_sparql(Sp2bGenerator.query_coauthors()), sp2b_graph
        )
        pairs = {
            (s.get("x"), s.get("y")) for s in result
        }
        assert all((y, x) in pairs for x, y in pairs)


class TestEnginesOnSp2b:
    @pytest.mark.parametrize(
        "engine_class", [SparqlgxEngine, S2RdfEngine, S2XEngine],
        ids=lambda c: c.profile.name,
    )
    @pytest.mark.parametrize("name", sorted(Sp2bGenerator.all_queries()))
    def test_cross_validation(self, sp2b_graph, engine_class, name):
        query = parse_sparql(Sp2bGenerator.all_queries()[name])
        engine = engine_class(SparkContext(4))
        if not engine.supports(query):
            pytest.skip("outside fragment")
        engine.load(sp2b_graph)
        assert engine.execute(query).same_as(evaluate(query, sp2b_graph))
