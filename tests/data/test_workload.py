"""Tests for the random query workload generator."""

import pytest

from repro.data.workload import (
    QueryWorkload,
    generate_query,
    generate_workload,
)
from repro.sparql.algebra import evaluate
from repro.sparql.parser import parse_sparql
from repro.sparql.shapes import QueryShape, classify_shape

SHAPES = [
    QueryShape.SINGLE,
    QueryShape.STAR,
    QueryShape.LINEAR,
    QueryShape.SNOWFLAKE,
    QueryShape.COMPLEX,
]


class TestGenerateQuery:
    @pytest.mark.parametrize("shape", SHAPES, ids=lambda s: s.value)
    def test_shape_matches_request(self, watdiv_graph, shape):
        query = generate_query(watdiv_graph, shape, seed=11)
        if shape is not QueryShape.SINGLE:
            assert classify_shape(query) is shape

    @pytest.mark.parametrize("shape", SHAPES, ids=lambda s: s.value)
    def test_generated_queries_have_answers(self, watdiv_graph, shape):
        query = generate_query(watdiv_graph, shape, seed=5)
        assert len(evaluate(query, watdiv_graph)) > 0

    def test_deterministic_for_seed(self, watdiv_graph):
        a = generate_query(watdiv_graph, QueryShape.STAR, seed=9)
        b = generate_query(watdiv_graph, QueryShape.STAR, seed=9)
        assert repr(a.where.triple_patterns()) == repr(
            b.where.triple_patterns()
        )

    def test_seeds_vary_queries(self, watdiv_graph):
        variants = {
            repr(
                generate_query(
                    watdiv_graph, QueryShape.STAR, seed=s
                ).where.triple_patterns()
            )
            for s in range(8)
        }
        assert len(variants) > 1

    def test_empty_shape_rejected(self, watdiv_graph):
        with pytest.raises(ValueError):
            generate_query(watdiv_graph, QueryShape.EMPTY)


class TestWorkload:
    def test_generate_workload_counts(self, watdiv_graph):
        workload = generate_workload(
            watdiv_graph,
            {QueryShape.STAR: 3, QueryShape.LINEAR: 2},
            seed=1,
        )
        assert len(workload) == 5

    def test_frequencies_decay(self, watdiv_graph):
        workload = generate_workload(
            watdiv_graph, {QueryShape.STAR: 4}, seed=1
        )
        freqs = [w.frequency for w in workload]
        assert freqs == sorted(freqs, reverse=True)

    def test_most_frequent(self, watdiv_graph):
        workload = QueryWorkload()
        q = generate_query(watdiv_graph, QueryShape.STAR, seed=1)
        workload.add("rare", q, 0.1)
        workload.add("hot", q, 5.0)
        assert workload.most_frequent(1)[0].name == "hot"

    def test_total_frequency(self, watdiv_graph):
        workload = QueryWorkload()
        q = generate_query(watdiv_graph, QueryShape.STAR, seed=1)
        workload.add("a", q, 1.5)
        workload.add("b", q, 2.5)
        assert workload.total_frequency() == 4.0
