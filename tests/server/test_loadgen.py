"""Closed-loop load generation: determinism, back-pressure, fairness."""

import pytest

from repro.server import (
    LoadGenerator,
    QueryService,
    build_shape_workload,
    build_workload,
    shape_tenant_profiles,
)
from repro.server.loadgen import percentile


def make_service(graph, **kwargs):
    kwargs.setdefault("engine", "SPARQLGX")
    kwargs.setdefault("pool_size", 2)
    return QueryService(graph, **kwargs)


def run_load(graph, service_kwargs=None, **gen_kwargs):
    service = make_service(graph, **(service_kwargs or {}))
    gen_kwargs.setdefault("clients", 6)
    gen_kwargs.setdefault("tenants", 2)
    gen_kwargs.setdefault("requests_per_client", 4)
    gen_kwargs.setdefault("think_units", 20)
    gen_kwargs.setdefault("seed", 42)
    workload = build_workload(graph, size=4, seed=gen_kwargs["seed"])
    return LoadGenerator(service, workload, **gen_kwargs).run()


class TestPercentile:
    def test_empty(self):
        assert percentile([], 50) == 0

    def test_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 95) == 95
        assert percentile(values, 99) == 99
        assert percentile(values, 100) == 100

    def test_single_sample(self):
        assert percentile([7], 99) == 7

    def test_unsorted_input(self):
        assert percentile([30, 10, 20], 50) == 20


class TestWorkloadBuilder:
    def test_deterministic(self, lubm_graph):
        first = build_workload(lubm_graph, size=6, seed=9)
        second = build_workload(lubm_graph, size=6, seed=9)
        assert first == second

    def test_seed_changes_workload(self, lubm_graph):
        assert build_workload(lubm_graph, size=6, seed=1) != build_workload(
            lubm_graph, size=6, seed=2
        )

    def test_queries_are_parseable_and_answerable(self, lubm_graph):
        from repro.sparql.algebra import evaluate
        from repro.sparql.parser import parse_sparql

        for _name, text in build_workload(lubm_graph, size=6, seed=42):
            assert len(evaluate(parse_sparql(text), lubm_graph)) > 0

    def test_empty_graph_rejected(self):
        from repro.rdf.graph import RDFGraph

        with pytest.raises(ValueError):
            build_workload(RDFGraph())


class TestDeterminism:
    def test_report_is_byte_reproducible(self, lubm_graph):
        """The headline guarantee: same seed, same bytes, fresh state."""
        first = run_load(lubm_graph, seed=7)
        second = run_load(lubm_graph, seed=7)
        assert first.to_json() == second.to_json()

    def test_different_seed_different_schedule(self, lubm_graph):
        assert run_load(lubm_graph, seed=1).to_json() != run_load(
            lubm_graph, seed=2
        ).to_json()


class TestClosedLoop:
    def test_all_requests_accounted_for(self, lubm_graph):
        report = run_load(lubm_graph)
        assert report.submitted == report.completed + report.rejected
        assert report.completed == len(report.latencies)

    def test_caching_lifts_throughput(self, lubm_graph):
        cached = run_load(lubm_graph)
        uncached = run_load(
            lubm_graph,
            service_kwargs={
                "enable_result_cache": False,
                "enable_plan_cache": False,
            },
        )
        assert cached.cache["result_hits"] > 0
        assert uncached.cache["result_hits"] == 0
        assert (
            cached.throughput_per_kilounit()
            > uncached.throughput_per_kilounit()
        )
        assert (
            cached.to_payload()["latency_units"]["p50"]
            <= uncached.to_payload()["latency_units"]["p50"]
        )

    def test_tiny_queue_rejects_under_pressure(self, lubm_graph):
        report = run_load(
            lubm_graph,
            service_kwargs={
                "pool_size": 1,
                "queue_limit": 1,
                "enable_result_cache": False,
            },
            clients=8,
            think_units=0,
        )
        assert report.rejected > 0
        assert report.max_queue_depth <= 1

    def test_ample_capacity_rejects_nothing(self, lubm_graph):
        report = run_load(
            lubm_graph,
            service_kwargs={"pool_size": 2, "queue_limit": 64},
        )
        assert report.rejected == 0

    def test_deadline_aborts_coexist_with_completions(self, lubm_graph):
        # Lint admission off: QL005 would reject the doomed queries up
        # front, and this test is about *runtime* deadline aborts.
        report = run_load(
            lubm_graph,
            deadline=30,
            service_kwargs={"lint_admission": False},
        )
        assert report.deadline_aborts > 0
        assert report.ok > 0  # concurrent queries still complete
        payload = report.to_payload()
        assert payload["totals"]["deadline_aborts"] == report.deadline_aborts

    def test_fair_share_balances_tenants(self, lubm_graph):
        report = run_load(
            lubm_graph,
            service_kwargs={"pool_size": 1, "queue_limit": 16},
            clients=6,
            tenants=3,
            think_units=0,
        )
        completed = [
            tenant["completed"] for tenant in report.per_tenant.values()
        ]
        assert len(completed) == 3
        assert max(completed) - min(completed) <= 2

    def test_latency_not_double_counted(self, lubm_graph):
        """Regression: a lone client never queues, so every wait is 0 and
        latency is exactly the service time (not service time twice)."""
        report = run_load(lubm_graph, clients=1, tenants=1)
        assert report.completed > 0
        assert report.waits == [0] * report.completed
        tenant = report.per_tenant["tenant0"]
        assert sum(report.latencies) == tenant["service_units"]

    def test_rejects_nonpositive_deadline(self, lubm_graph):
        with pytest.raises(ValueError):
            LoadGenerator(
                make_service(lubm_graph),
                [("q", "SELECT ?s WHERE { ?s ?p ?o }")],
                deadline=0,
            )

    def test_report_payload_shape(self, lubm_graph):
        payload = run_load(lubm_graph).to_payload()
        assert payload["version"] == 1
        for key in (
            "config",
            "totals",
            "latency_units",
            "queue",
            "cache",
            "tenants",
            "throughput_per_kilounit",
            "virtual_duration_units",
        ):
            assert key in payload
        assert payload["latency_units"]["p50"] <= payload["latency_units"]["p95"]
        assert payload["latency_units"]["p95"] <= payload["latency_units"]["p99"]

    def test_rejects_empty_workload(self, lubm_graph):
        with pytest.raises(ValueError):
            LoadGenerator(make_service(lubm_graph), [])


class TestShapeMix:
    def test_shape_workload_labels_are_honest(self, lubm_graph):
        from repro.sparql.parser import parse_sparql
        from repro.sparql.shapes import classify_shape

        workload = build_shape_workload(lubm_graph, per_shape=2, seed=42)
        assert len(workload) == 10
        for name, text in workload:
            shape = name.rstrip("0123456789")
            assert classify_shape(parse_sparql(text)).value == shape

    def test_shape_workload_is_deterministic(self, lubm_graph):
        first = build_shape_workload(lubm_graph, per_shape=1, seed=7)
        second = build_shape_workload(lubm_graph, per_shape=1, seed=7)
        assert first == second
        assert first != build_shape_workload(lubm_graph, per_shape=1, seed=8)

    def test_tenant_profiles_emphasize_distinct_shapes(self, lubm_graph):
        workload = build_shape_workload(lubm_graph, per_shape=1, seed=42)
        profiles = shape_tenant_profiles(workload, tenants=2, emphasis=3)
        assert set(profiles) == {"tenant0", "tenant1"}
        for profile in profiles.values():
            # Every workload query appears; the preferred shape repeats.
            assert set(profile) == {name for name, _ in workload}
            assert len(profile) > len(workload)
        assert profiles["tenant0"] != profiles["tenant1"]

    def test_unknown_profile_names_rejected(self, lubm_graph):
        workload = build_shape_workload(lubm_graph, per_shape=1, seed=42)
        with pytest.raises(ValueError):
            LoadGenerator(
                make_service(lubm_graph),
                workload,
                tenant_profiles={"tenant0": ["nope"]},
            )

    def test_report_breaks_out_shapes_and_engines(self, lubm_graph):
        service = make_service(lubm_graph, route=True, pool_size=1)
        workload = build_shape_workload(lubm_graph, per_shape=1, seed=42)
        report = LoadGenerator(
            service,
            workload,
            clients=4,
            tenants=2,
            requests_per_client=4,
            think_units=20,
            seed=42,
            tenant_profiles=shape_tenant_profiles(workload, 2),
        ).run()
        payload = report.to_payload()
        assert payload["config"]["route"] is True
        shapes = payload["shapes"]
        assert shapes and set(shapes) <= {
            "single", "star", "linear", "snowflake", "complex",
        }
        for block in shapes.values():
            assert {"completed", "ok", "service_units", "latency_units"} <= (
                set(block)
            )
        routing = payload["routing"]
        assert routing["enabled"] is True
        assert sum(routing["routed_to"].values()) == (
            payload["totals"]["completed"]
        )
        assert routing["policy"]["decisions"]

    def test_fixed_engine_report_attributes_everything_to_it(
        self, lubm_graph
    ):
        payload = run_load(lubm_graph).to_payload()
        assert payload["routing"]["enabled"] is False
        assert list(payload["routing"]["routed_to"]) == ["SPARQLGX"]
