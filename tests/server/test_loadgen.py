"""Closed-loop load generation: determinism, back-pressure, fairness."""

import pytest

from repro.server import (
    LoadGenerator,
    QueryService,
    build_shape_workload,
    build_workload,
    shape_tenant_profiles,
)
from repro.server.loadgen import percentile


def make_service(graph, **kwargs):
    kwargs.setdefault("engine", "SPARQLGX")
    kwargs.setdefault("pool_size", 2)
    return QueryService(graph, **kwargs)


def run_load(graph, service_kwargs=None, **gen_kwargs):
    service = make_service(graph, **(service_kwargs or {}))
    gen_kwargs.setdefault("clients", 6)
    gen_kwargs.setdefault("tenants", 2)
    gen_kwargs.setdefault("requests_per_client", 4)
    gen_kwargs.setdefault("think_units", 20)
    gen_kwargs.setdefault("seed", 42)
    workload = build_workload(graph, size=4, seed=gen_kwargs["seed"])
    return LoadGenerator(service, workload, **gen_kwargs).run()


class TestPercentile:
    def test_empty(self):
        assert percentile([], 50) == 0

    def test_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 95) == 95
        assert percentile(values, 99) == 99
        assert percentile(values, 100) == 100

    def test_single_sample(self):
        assert percentile([7], 99) == 7

    def test_unsorted_input(self):
        assert percentile([30, 10, 20], 50) == 20


class TestWorkloadBuilder:
    def test_deterministic(self, lubm_graph):
        first = build_workload(lubm_graph, size=6, seed=9)
        second = build_workload(lubm_graph, size=6, seed=9)
        assert first == second

    def test_seed_changes_workload(self, lubm_graph):
        assert build_workload(lubm_graph, size=6, seed=1) != build_workload(
            lubm_graph, size=6, seed=2
        )

    def test_queries_are_parseable_and_answerable(self, lubm_graph):
        from repro.sparql.algebra import evaluate
        from repro.sparql.parser import parse_sparql

        for _name, text in build_workload(lubm_graph, size=6, seed=42):
            assert len(evaluate(parse_sparql(text), lubm_graph)) > 0

    def test_empty_graph_rejected(self):
        from repro.rdf.graph import RDFGraph

        with pytest.raises(ValueError):
            build_workload(RDFGraph())


class TestDeterminism:
    def test_report_is_byte_reproducible(self, lubm_graph):
        """The headline guarantee: same seed, same bytes, fresh state."""
        first = run_load(lubm_graph, seed=7)
        second = run_load(lubm_graph, seed=7)
        assert first.to_json() == second.to_json()

    def test_different_seed_different_schedule(self, lubm_graph):
        assert run_load(lubm_graph, seed=1).to_json() != run_load(
            lubm_graph, seed=2
        ).to_json()


class TestClosedLoop:
    def test_all_requests_accounted_for(self, lubm_graph):
        report = run_load(lubm_graph)
        assert report.submitted == report.completed + report.rejected
        assert report.completed == len(report.latencies)

    def test_caching_lifts_throughput(self, lubm_graph):
        cached = run_load(lubm_graph)
        uncached = run_load(
            lubm_graph,
            service_kwargs={
                "enable_result_cache": False,
                "enable_plan_cache": False,
            },
        )
        assert cached.cache["result_hits"] > 0
        assert uncached.cache["result_hits"] == 0
        assert (
            cached.throughput_per_kilounit()
            > uncached.throughput_per_kilounit()
        )
        assert (
            cached.to_payload()["latency_units"]["p50"]
            <= uncached.to_payload()["latency_units"]["p50"]
        )

    def test_tiny_queue_rejects_under_pressure(self, lubm_graph):
        report = run_load(
            lubm_graph,
            service_kwargs={
                "pool_size": 1,
                "queue_limit": 1,
                "enable_result_cache": False,
            },
            clients=8,
            think_units=0,
        )
        assert report.rejected > 0
        assert report.max_queue_depth <= 1

    def test_ample_capacity_rejects_nothing(self, lubm_graph):
        report = run_load(
            lubm_graph,
            service_kwargs={"pool_size": 2, "queue_limit": 64},
        )
        assert report.rejected == 0

    def test_deadline_aborts_coexist_with_completions(self, lubm_graph):
        # Lint admission off: QL005 would reject the doomed queries up
        # front, and this test is about *runtime* deadline aborts.
        report = run_load(
            lubm_graph,
            deadline=30,
            service_kwargs={"lint_admission": False},
        )
        assert report.deadline_aborts > 0
        assert report.ok > 0  # concurrent queries still complete
        payload = report.to_payload()
        assert payload["totals"]["deadline_aborts"] == report.deadline_aborts

    def test_fair_share_balances_tenants(self, lubm_graph):
        report = run_load(
            lubm_graph,
            service_kwargs={"pool_size": 1, "queue_limit": 16},
            clients=6,
            tenants=3,
            think_units=0,
        )
        completed = [
            tenant["completed"] for tenant in report.per_tenant.values()
        ]
        assert len(completed) == 3
        assert max(completed) - min(completed) <= 2

    def test_latency_not_double_counted(self, lubm_graph):
        """Regression: a lone client never queues, so every wait is 0 and
        latency is exactly the service time (not service time twice)."""
        report = run_load(lubm_graph, clients=1, tenants=1)
        assert report.completed > 0
        assert report.waits == [0] * report.completed
        tenant = report.per_tenant["tenant0"]
        assert sum(report.latencies) == tenant["service_units"]

    def test_rejects_nonpositive_deadline(self, lubm_graph):
        with pytest.raises(ValueError):
            LoadGenerator(
                make_service(lubm_graph),
                [("q", "SELECT ?s WHERE { ?s ?p ?o }")],
                deadline=0,
            )

    def test_report_payload_shape(self, lubm_graph):
        payload = run_load(lubm_graph).to_payload()
        assert payload["version"] == 2
        for key in (
            "config",
            "totals",
            "latency_units",
            "queue",
            "cache",
            "tenants",
            "throughput_per_kilounit",
            "virtual_duration_units",
        ):
            assert key in payload
        assert payload["latency_units"]["p50"] <= payload["latency_units"]["p95"]
        assert payload["latency_units"]["p95"] <= payload["latency_units"]["p99"]

    def test_rejects_empty_workload(self, lubm_graph):
        with pytest.raises(ValueError):
            LoadGenerator(make_service(lubm_graph), [])


class TestShapeMix:
    def test_shape_workload_labels_are_honest(self, lubm_graph):
        from repro.sparql.parser import parse_sparql
        from repro.sparql.shapes import classify_shape

        workload = build_shape_workload(lubm_graph, per_shape=2, seed=42)
        assert len(workload) == 10
        for name, text in workload:
            shape = name.rstrip("0123456789")
            assert classify_shape(parse_sparql(text)).value == shape

    def test_shape_workload_is_deterministic(self, lubm_graph):
        first = build_shape_workload(lubm_graph, per_shape=1, seed=7)
        second = build_shape_workload(lubm_graph, per_shape=1, seed=7)
        assert first == second
        assert first != build_shape_workload(lubm_graph, per_shape=1, seed=8)

    def test_tenant_profiles_emphasize_distinct_shapes(self, lubm_graph):
        workload = build_shape_workload(lubm_graph, per_shape=1, seed=42)
        profiles = shape_tenant_profiles(workload, tenants=2, emphasis=3)
        assert set(profiles) == {"tenant0", "tenant1"}
        for profile in profiles.values():
            # Every workload query appears; the preferred shape repeats.
            assert set(profile) == {name for name, _ in workload}
            assert len(profile) > len(workload)
        assert profiles["tenant0"] != profiles["tenant1"]

    def test_unknown_profile_names_rejected(self, lubm_graph):
        workload = build_shape_workload(lubm_graph, per_shape=1, seed=42)
        with pytest.raises(ValueError):
            LoadGenerator(
                make_service(lubm_graph),
                workload,
                tenant_profiles={"tenant0": ["nope"]},
            )

    def test_report_breaks_out_shapes_and_engines(self, lubm_graph):
        service = make_service(lubm_graph, route=True, pool_size=1)
        workload = build_shape_workload(lubm_graph, per_shape=1, seed=42)
        report = LoadGenerator(
            service,
            workload,
            clients=4,
            tenants=2,
            requests_per_client=4,
            think_units=20,
            seed=42,
            tenant_profiles=shape_tenant_profiles(workload, 2),
        ).run()
        payload = report.to_payload()
        assert payload["config"]["route"] is True
        shapes = payload["shapes"]
        assert shapes and set(shapes) <= {
            "single", "star", "linear", "snowflake", "complex",
        }
        for block in shapes.values():
            assert {"completed", "ok", "service_units", "latency_units"} <= (
                set(block)
            )
        routing = payload["routing"]
        assert routing["enabled"] is True
        assert sum(routing["routed_to"].values()) == (
            payload["totals"]["completed"]
        )
        assert routing["policy"]["decisions"]

    def test_fixed_engine_report_attributes_everything_to_it(
        self, lubm_graph
    ):
        payload = run_load(lubm_graph).to_payload()
        assert payload["routing"]["enabled"] is False
        assert list(payload["routing"]["routed_to"]) == ["SPARQLGX"]


class TestShaclWorkload:
    def test_compiled_ids_plus_probes(self, lubm_graph):
        from repro.server import build_shacl_workload
        from repro.shacl import compile_shape_set, default_shapes_for

        workload = build_shacl_workload(lubm_graph, seed=42)
        names = [name for name, _ in workload]
        compiled_ids = [
            c.id
            for c in compile_shape_set(default_shapes_for(lubm_graph))
        ]
        assert names[: len(compiled_ids)] == compiled_ids
        probes = names[len(compiled_ids):]
        assert probes == ["probe%d" % i for i in range(len(probes))]
        assert probes  # the bursty ASK tail is present

    def test_deterministic_and_answerable(self, lubm_graph):
        from repro.server import build_shacl_workload
        from repro.sparql.algebra import evaluate
        from repro.sparql.parser import parse_sparql

        first = build_shacl_workload(lubm_graph, seed=42)
        assert first == build_shacl_workload(lubm_graph, seed=42)
        assert first != build_shacl_workload(lubm_graph, seed=43)
        for _name, text in first:
            evaluate(parse_sparql(text), lubm_graph)  # parses + evaluates

    def test_loadtest_plan_cache_warm_on_second_pass(self, lubm_graph):
        """The BENCH_shacl acceptance property at the loadgen level:
        replaying the shacl workload against a warm service answers
        (mostly) from cache."""
        from repro.server import build_shacl_workload

        service = make_service(lubm_graph, enable_result_cache=False)
        workload = build_shacl_workload(lubm_graph, seed=42)
        kwargs = dict(
            clients=2,
            tenants=1,
            requests_per_client=len(workload),
            think_units=0,
            seed=42,
        )
        LoadGenerator(service, workload, **kwargs).run()
        counters = service.stats()["counters"]
        hits = counters.get("plan_cache_hits", 0)
        misses = counters.get("plan_cache_misses", 0)
        assert hits / (hits + misses) > 0.5


class TestFederatedWorkload:
    def test_paged_construct_requests(self, lubm_graph):
        from repro.server import build_federated_workload
        from repro.sparql.ast import ConstructQuery
        from repro.sparql.parser import parse_sparql

        workload = build_federated_workload(
            lubm_graph, seed=42, predicates=3, pages=3
        )
        assert len(workload) == 9
        for name, text in workload:
            assert name.startswith("harvest")
            plan = parse_sparql(text)
            assert isinstance(plan, ConstructQuery)
            assert plan.limit is not None

    def test_deterministic(self, lubm_graph):
        from repro.server import build_federated_workload

        assert build_federated_workload(
            lubm_graph, seed=5
        ) == build_federated_workload(lubm_graph, seed=5)

    def test_workload_completes_through_the_service(self, lubm_graph):
        from repro.server import build_federated_workload

        workload = build_federated_workload(lubm_graph, seed=42)
        report = LoadGenerator(
            make_service(lubm_graph),
            workload,
            clients=2,
            tenants=2,
            requests_per_client=4,
            think_units=10,
            seed=42,
        ).run()
        assert report.ok == report.completed > 0


class TestGroupedProfiles:
    def test_each_tenant_emphasizes_a_distinct_group(self, lubm_graph):
        from repro.server import build_shacl_workload, grouped_tenant_profiles

        workload = build_shacl_workload(lubm_graph, seed=42)
        profiles = grouped_tenant_profiles(workload, tenants=3, emphasis=3)
        assert set(profiles) == {"tenant0", "tenant1", "tenant2"}
        for profile in profiles.values():
            assert set(profile) == {name for name, _ in workload}
        assert len({tuple(p) for p in profiles.values()}) == 3


class TestPerTenantRejections:
    def test_queue_rejections_break_out_by_tenant(self, lubm_graph):
        report = run_load(
            lubm_graph,
            service_kwargs={
                "pool_size": 1,
                "queue_limit": 1,
                "enable_result_cache": False,
            },
            clients=8,
            tenants=2,
            think_units=0,
        )
        assert report.rejected > 0
        per_tenant = report.to_payload()["tenants"]
        assert sum(
            entry["queue_rejected"] for entry in per_tenant.values()
        ) == report.rejected
        for entry in per_tenant.values():
            assert set(entry) >= {
                "submitted",
                "completed",
                "ok",
                "service_units",
                "queue_rejected",
                "lint_rejected",
                "deadline_aborts",
                "errors",
            }
            assert entry["submitted"] == (
                entry["completed"] + entry["queue_rejected"]
            )

    def test_no_pressure_no_rejections(self, lubm_graph):
        per_tenant = run_load(lubm_graph).to_payload()["tenants"]
        assert all(
            entry["queue_rejected"] == 0 for entry in per_tenant.values()
        )
