"""QueryService: warm pool, cache tiers, deadlines, version invalidation."""

import pytest

from repro.data.lubm import LUBM
from repro.rdf.triple import Triple
from repro.runtime import UnknownEngineError
from repro.server import QueryRequest, QueryService
from repro.spark.deadline import DeadlineExceededError

MEMBER_QUERY = (
    "PREFIX lubm: <http://repro.example.org/lubm#>\n"
    "SELECT DISTINCT ?d WHERE { ?s lubm:memberOf ?d }"
)
SCAN_QUERY = "SELECT ?s ?p ?o WHERE { ?s ?p ?o }"


@pytest.fixture
def service(lubm_graph):
    return QueryService(lubm_graph, engine="SPARQLGX", pool_size=2)


class TestConstruction:
    def test_unknown_engine_fails_fast(self, lubm_graph):
        with pytest.raises(UnknownEngineError):
            QueryService(lubm_graph, engine="NoSuchEngine")

    def test_pool_is_warm(self, service):
        """Every pooled engine has its store built before the first query."""
        for engine in service.pool:
            assert engine._loaded

    def test_rejects_empty_pool(self, lubm_graph):
        with pytest.raises(ValueError):
            QueryService(lubm_graph, pool_size=0)

    def test_rejects_nonpositive_default_deadline(self, lubm_graph):
        """Regression: a zero default deadline must fail at construction,
        not crash the serve loop on the first query."""
        for bad in (0, -5):
            with pytest.raises(ValueError):
                QueryService(lubm_graph, default_deadline=bad)


class TestCaching:
    def test_result_cache_hit_is_byte_identical_to_cold_run(self, service):
        cold = service.submit(QueryRequest(text=MEMBER_QUERY, id="cold"))
        warm = service.submit(QueryRequest(text=MEMBER_QUERY, id="warm"))
        assert cold.cache == "cold"
        assert warm.cache == "result"
        assert warm.payload == cold.payload  # byte identity (bytes stored)
        # And identical to a fresh service's cold execution.
        fresh = QueryService(
            service.versions.head(), engine="SPARQLGX", pool_size=1
        ).submit(QueryRequest(text=MEMBER_QUERY))
        assert fresh.payload == cold.payload

    def test_textual_variants_share_cache_entries(self, service):
        service.submit(QueryRequest(text=MEMBER_QUERY))
        variant = MEMBER_QUERY.replace("\n", "   \n") + "  # comment"
        again = service.submit(QueryRequest(text=variant))
        assert again.cache == "result"

    def test_literal_whitespace_queries_stay_distinct(self, service):
        """Regression: "a  b" and "a b" are different queries -- they
        must neither share a cache entry nor execute a rewritten text."""
        spaced = 'SELECT ?s WHERE { ?s ?p "a  b" }'
        collapsed = 'SELECT ?s WHERE { ?s ?p "a b" }'
        first = service.submit(QueryRequest(text=spaced))
        second = service.submit(QueryRequest(text=collapsed))
        assert first.status == "ok" and second.status == "ok"
        assert second.cache == "cold"  # distinct keys, no false sharing

    def test_cache_hit_is_cheap(self, service):
        cold = service.submit(QueryRequest(text=MEMBER_QUERY))
        warm = service.submit(QueryRequest(text=MEMBER_QUERY))
        assert warm.service_units < cold.service_units

    def test_plan_cache_without_result_cache(self, lubm_graph):
        service = QueryService(
            lubm_graph, pool_size=1, enable_result_cache=False
        )
        first = service.submit(QueryRequest(text=MEMBER_QUERY))
        second = service.submit(QueryRequest(text=MEMBER_QUERY))
        assert first.cache == "cold"
        assert second.cache == "plan"  # parsed once, executed twice
        assert second.payload == first.payload
        assert service.snapshot().result_cache_hits == 0

    def test_caches_fully_disabled(self, lubm_graph):
        service = QueryService(
            lubm_graph,
            pool_size=1,
            enable_plan_cache=False,
            enable_result_cache=False,
        )
        for _ in range(2):
            assert service.submit(QueryRequest(text=MEMBER_QUERY)).cache == "cold"

    def test_counters_track_hits_and_misses(self, service):
        service.submit(QueryRequest(text=MEMBER_QUERY))
        service.submit(QueryRequest(text=MEMBER_QUERY))
        snapshot = service.snapshot()
        assert snapshot.result_cache_misses == 1
        assert snapshot.result_cache_hits == 1
        assert snapshot.plan_cache_misses == 1
        assert snapshot.result_cache_hit_rate() == 0.5


class TestVersioning:
    def test_commit_bumps_version_and_invalidates(self, service):
        stale = service.submit(QueryRequest(text=MEMBER_QUERY))
        version = service.commit(
            additions=[
                Triple(LUBM["NewStudent"], LUBM.memberOf, LUBM["DeptNew"])
            ]
        )
        assert version == 1
        assert service.snapshot().result_cache_invalidations >= 1
        fresh = service.submit(QueryRequest(text=MEMBER_QUERY))
        # Old result entry is unusable; the text-keyed plan cache survives.
        assert fresh.cache == "plan"
        assert fresh.payload != stale.payload
        assert "DeptNew" in fresh.payload

    def test_answers_reflect_deletions(self, service, lubm_graph):
        # Non-DISTINCT projection: dropping one membership drops one row.
        query = (
            "PREFIX lubm: <http://repro.example.org/lubm#>\n"
            "SELECT ?s ?d WHERE { ?s lubm:memberOf ?d }"
        )
        victim = next(iter(lubm_graph.triples((None, LUBM.memberOf, None))))
        before = service.submit(QueryRequest(text=query))
        service.commit(deletions=[victim])
        after = service.submit(QueryRequest(text=query))
        assert after.version == 1
        assert after.payload != before.payload

    def test_new_version_repopulates_cache(self, service):
        service.submit(QueryRequest(text=MEMBER_QUERY))
        service.commit(
            additions=[Triple(LUBM["S"], LUBM.memberOf, LUBM["D"])]
        )
        service.submit(QueryRequest(text=MEMBER_QUERY))
        hit = service.submit(QueryRequest(text=MEMBER_QUERY))
        assert hit.cache == "result"


class TestDeadlines:
    """Runtime deadline behavior.

    These tests disable lint admission: the static linter (QL005) would
    otherwise reject the doomed queries before execution, which is the
    subject of tests/server/test_lint_admission.py -- here the point is
    what happens when an admitted query *runs out* of budget.
    """

    @pytest.fixture
    def unlinted(self, lubm_graph):
        return QueryService(
            lubm_graph, engine="SPARQLGX", pool_size=2, lint_admission=False
        )

    def test_over_deadline_query_fails_typed_while_others_complete(
        self, unlinted
    ):
        """The acceptance scenario: one doomed query, healthy neighbours."""
        doomed = unlinted.submit(
            QueryRequest(text=SCAN_QUERY, id="doomed", deadline=5)
        )
        assert doomed.status == "deadline"
        assert "cost unit" in doomed.error
        healthy = unlinted.submit(QueryRequest(text=MEMBER_QUERY, id="ok"))
        assert healthy.status == "ok"
        assert unlinted.snapshot().deadline_aborts == 1

    def test_deadline_abort_is_not_cached(self, unlinted):
        unlinted.submit(QueryRequest(text=SCAN_QUERY, deadline=5))
        retry = unlinted.submit(QueryRequest(text=SCAN_QUERY))
        assert retry.status == "ok"
        assert retry.cache in ("cold", "plan")

    def test_default_deadline_applies(self, lubm_graph):
        service = QueryService(
            lubm_graph, pool_size=1, default_deadline=5, lint_admission=False
        )
        assert (
            service.submit(QueryRequest(text=SCAN_QUERY)).status == "deadline"
        )

    def test_request_deadline_overrides_default(self, lubm_graph):
        service = QueryService(lubm_graph, pool_size=1, default_deadline=5)
        generous = service.submit(
            QueryRequest(text=MEMBER_QUERY, deadline=10**9)
        )
        assert generous.status == "ok"

    def test_deadline_disarmed_after_abort(self, unlinted):
        unlinted.submit(QueryRequest(text=SCAN_QUERY, deadline=5))
        for engine in unlinted.pool:
            assert engine.ctx.deadline is None

    def test_deadline_error_direct_engine_access(self, service):
        """The typed error also escapes raw engine use (no service wrapper)."""
        engine = service.pool[0]
        engine.ctx.set_deadline(3, query="raw")
        try:
            with pytest.raises(DeadlineExceededError) as info:
                engine.execute(SCAN_QUERY)
            assert info.value.spent > 3
            assert info.value.query == "raw"
        finally:
            engine.ctx.set_deadline(None)


class TestErrorStatuses:
    def test_parse_error_is_reported_not_raised(self, service):
        outcome = service.submit(QueryRequest(text="SELECT WHERE oops"))
        assert outcome.status == "error"
        assert "parse error" in outcome.error

    def test_unsupported_query_status(self, lubm_graph):
        # SparkRDF publishes a BGP-only fragment: ORDER BY is out.
        service = QueryService(lubm_graph, engine="SparkRDF", pool_size=1)
        outcome = service.submit(
            QueryRequest(
                text=MEMBER_QUERY.replace("SELECT DISTINCT", "SELECT")
                + " ORDER BY ?d"
            )
        )
        assert outcome.status == "unsupported"
        assert "BGP" in outcome.error


class TestFaultIntegration:
    def test_answers_survive_fault_schedule(self, lubm_graph):
        clean = QueryService(lubm_graph, pool_size=1).submit(
            QueryRequest(text=MEMBER_QUERY)
        )
        faulty = QueryService(
            lubm_graph,
            pool_size=1,
            faults="fail:p=0.3;seed=7",
            max_task_attempts=10,
        ).submit(QueryRequest(text=MEMBER_QUERY))
        assert faulty.status == "ok"
        assert faulty.payload == clean.payload


class TestPoolAndStats:
    def test_round_robin_across_pool(self, service):
        workers = {
            service.submit(QueryRequest(text=MEMBER_QUERY)).worker
            for _ in range(4)
        }
        assert workers == {0, 1}

    def test_stats_shape(self, service):
        service.submit(QueryRequest(text=MEMBER_QUERY))
        stats = service.stats()
        assert stats["engine"] == "SPARQLGX"
        assert stats["pool_size"] == 2
        assert stats["counters"]["queries_completed"] == 1

    def test_tracer_spans_when_enabled(self, service):
        service.tracer.clear().enable()
        service.submit(QueryRequest(text=MEMBER_QUERY, id="traced"))
        service.commit(
            additions=[Triple(LUBM["S"], LUBM.memberOf, LUBM["D"])]
        )
        service.tracer.disable()
        kinds = [span.kind for span in service.tracer.roots]
        assert "request" in kinds and "commit" in kinds
        request_span = service.tracer.roots[0]
        assert request_span.attrs["status"] == "ok"
