"""The query service with the cost-based optimizer enabled."""

import pytest

from repro.rdf.terms import URI
from repro.rdf.triple import Triple
from repro.server import QueryRequest, QueryService
from repro.server.cache import PlanCache

LUBM = "http://repro.example.org/lubm#"
QUERY = (
    "PREFIX lubm: <%s>\n"
    "SELECT ?s ?d WHERE { ?s lubm:memberOf ?d . ?s lubm:age ?a . }" % LUBM
)


def test_optimized_answers_match_unoptimized(lubm_graph):
    plain = QueryService(lubm_graph, pool_size=1)
    optimized = QueryService(lubm_graph, pool_size=1, optimize=True)
    for service in (plain, optimized):
        outcome = service.submit(QueryRequest(text=QUERY, id="q"))
        assert outcome.status == "ok"
    assert (
        optimized.submit(QueryRequest(text=QUERY)).payload
        == plain.submit(QueryRequest(text=QUERY)).payload
    )


def test_stats_surface(lubm_graph):
    optimized = QueryService(lubm_graph, pool_size=1, optimize=True)
    stats = optimized.stats()
    assert stats["optimizer"] == "dp"
    assert stats["stats_version"] == 0
    plain = QueryService(lubm_graph, pool_size=1)
    assert plain.stats()["optimizer"] is None


def test_commit_refreshes_statistics_and_plan_cache_key(lubm_graph):
    service = QueryService(lubm_graph, pool_size=1, optimize=True)
    assert service.stats_version == 0
    first = service.submit(QueryRequest(text=QUERY))
    assert first.cache == "cold"
    assert len(service.plan_cache) == 1

    service.commit(
        additions=[
            Triple(
                URI(LUBM + "StudentNew"),
                URI(LUBM + "memberOf"),
                URI(LUBM + "DepartmentNew"),
            )
        ]
    )
    # New statistics generation: the optimizer follows the new head...
    assert service.stats_version == 1
    assert service.optimizer.stats_version == 1
    for engine in service.pool:
        assert engine.optimizer is service.optimizer
    # ...and the same text misses the plan cache (stale-stats entry dead).
    second = service.submit(QueryRequest(text=QUERY))
    assert second.cache == "cold"
    assert len(service.plan_cache) == 2


def test_unoptimized_commit_keeps_plan_cache_warm(lubm_graph):
    service = QueryService(lubm_graph, pool_size=1)
    service.submit(QueryRequest(text=QUERY))
    service.commit(
        additions=[
            Triple(
                URI(LUBM + "StudentNew"),
                URI(LUBM + "memberOf"),
                URI(LUBM + "DepartmentNew"),
            )
        ]
    )
    # Without an optimizer the stats version is pinned to 0: the parsed
    # plan survives the commit (only the result cache is invalidated).
    outcome = service.submit(QueryRequest(text=QUERY))
    assert outcome.cache == "plan"
    assert len(service.plan_cache) == 1


def test_plan_cache_keys_on_stats_version():
    cache = PlanCache(capacity=8)
    text = "SELECT ?s WHERE { ?s ?p ?o }"
    _plan, hit = cache.get_or_parse(text, stats_version=0)
    assert not hit
    _plan, hit = cache.get_or_parse(text, stats_version=0)
    assert hit
    _plan, hit = cache.get_or_parse(text, stats_version=1)
    assert not hit
    assert len(cache) == 2
