"""Static lint admission: rejection before any service unit is spent."""

import pytest

from repro.rdf.triple import Triple
from repro.data.lubm import LUBM
from repro.server import QueryRequest, QueryService

CARTESIAN = (
    "PREFIX lubm: <http://repro.example.org/lubm#>\n"
    "SELECT ?s ?t WHERE { ?s lubm:memberOf ?d . ?t lubm:teacherOf ?c }"
)
UNKNOWN = (
    "PREFIX lubm: <http://repro.example.org/lubm#>\n"
    "SELECT ?s WHERE { ?s lubm:hasTelepathy ?x }"
)
CLEAN = (
    "PREFIX lubm: <http://repro.example.org/lubm#>\n"
    "SELECT DISTINCT ?d WHERE { ?s lubm:memberOf ?d }"
)
SCAN = "SELECT ?s ?p ?o WHERE { ?s ?p ?o }"


@pytest.fixture
def service(lubm_graph):
    return QueryService(lubm_graph, engine="SPARQLGX", pool_size=2)


class TestRejection:
    def test_status_and_structured_error(self, service):
        outcome = service.submit(QueryRequest(text=CARTESIAN, id="bad"))
        assert outcome.status == "rejected"
        assert outcome.error.startswith("lint: QL001")
        assert outcome.payload is None

    def test_diagnostics_in_outcome_and_response(self, service):
        outcome = service.submit(QueryRequest(text=CARTESIAN, id="bad"))
        assert outcome.diagnostics
        assert outcome.diagnostics[0]["code"] == "QL001"
        response = outcome.to_response()
        assert response["status"] == "rejected"
        assert response["diagnostics"] == outcome.diagnostics

    def test_clean_queries_unaffected(self, service):
        assert service.submit(QueryRequest(text=CLEAN)).status == "ok"

    def test_deadline_budget_feeds_ql005(self, service):
        doomed = service.submit(QueryRequest(text=SCAN, deadline=5))
        assert doomed.status == "rejected"
        assert "QL005" in doomed.error
        # Without a deadline the same scan is admitted and completes.
        assert service.submit(QueryRequest(text=SCAN)).status == "ok"

    def test_warnings_do_not_reject(self, lubm_graph):
        # A threshold above the dataset size only *warns* (QL006).
        service = QueryService(
            lubm_graph,
            engine="SPARQLGX",
            pool_size=1,
            broadcast_threshold=10**6,
        )
        outcome = service.submit(QueryRequest(text=CLEAN))
        assert outcome.status == "ok"


class TestNoSideEffects:
    """Satellite: a lint-rejected query leaves every tier untouched."""

    def test_no_service_units_charged(self, service):
        outcome = service.submit(QueryRequest(text=CARTESIAN))
        assert outcome.service_units == 0
        assert service.snapshot().get("service_units") == 0

    def test_no_engine_work(self, service):
        before = [engine.ctx.metrics.snapshot() for engine in service.pool]
        service.submit(QueryRequest(text=CARTESIAN))
        for engine, snapshot in zip(service.pool, before):
            delta = engine.ctx.metrics.snapshot() - snapshot
            assert delta.records_scanned == 0
            assert delta.tasks == 0

    def test_caches_stay_empty(self, service):
        service.submit(QueryRequest(text=CARTESIAN))
        assert len(service.plan_cache) == 0
        assert len(service.result_cache) == 0

    def test_no_cache_metrics_recorded(self, service):
        service.submit(QueryRequest(text=CARTESIAN))
        snapshot = service.snapshot()
        assert snapshot.plan_cache_hits == 0
        assert snapshot.plan_cache_misses == 0
        assert snapshot.result_cache_hits == 0
        assert snapshot.result_cache_misses == 0

    def test_retry_after_rejection_is_cold(self, service):
        service.submit(QueryRequest(text=SCAN, deadline=5))
        retry = service.submit(QueryRequest(text=SCAN))
        assert retry.status == "ok"
        assert retry.cache == "cold"

    def test_rejections_counted(self, service):
        service.submit(QueryRequest(text=CARTESIAN))
        service.submit(QueryRequest(text=CLEAN))
        snapshot = service.snapshot()
        assert snapshot.lint_rejections == 1
        assert snapshot.queries_completed == 2


class TestLintSpans:
    def test_lint_span_recorded(self, service):
        service.tracer.clear().enable()
        service.submit(QueryRequest(text=CARTESIAN, id="bad"))
        service.tracer.disable()
        (request_span,) = service.tracer.roots
        lint_spans = [
            s for s in request_span.children if s.kind == "lint"
        ]
        assert len(lint_spans) == 1
        assert lint_spans[0].attrs["errors"] >= 1
        assert lint_spans[0].attrs["rejected"] is True

    def test_admitted_query_also_linted(self, service):
        service.tracer.clear().enable()
        service.submit(QueryRequest(text=CLEAN, id="fine"))
        service.tracer.disable()
        (request_span,) = service.tracer.roots
        lint_spans = [
            s for s in request_span.children if s.kind == "lint"
        ]
        assert len(lint_spans) == 1
        assert lint_spans[0].attrs["rejected"] is False


class TestDisable:
    def test_no_lint_lets_cartesian_execute(self, lubm_graph):
        service = QueryService(
            lubm_graph,
            engine="SPARQLGX",
            pool_size=1,
            lint_admission=False,
        )
        outcome = service.submit(QueryRequest(text=CARTESIAN))
        assert outcome.status == "ok"
        assert service.snapshot().lint_rejections == 0

    def test_stats_reports_flag(self, lubm_graph, service):
        assert service.stats()["lint_admission"] is True
        off = QueryService(lubm_graph, pool_size=1, lint_admission=False)
        assert off.stats()["lint_admission"] is False


class TestCommitRefresh:
    def test_new_predicate_admitted_after_commit(self, lubm_graph):
        """QL004 must track the served head, not construction time."""
        service = QueryService(lubm_graph, engine="SPARQLGX", pool_size=1)
        before = service.submit(QueryRequest(text=UNKNOWN))
        assert before.status == "rejected"
        assert "QL004" in before.error
        service.commit(
            additions=[Triple(LUBM["S"], LUBM.hasTelepathy, LUBM["X"])]
        )
        after = service.submit(QueryRequest(text=UNKNOWN))
        assert after.status == "ok"
