"""Plan/result cache tiers and query-text normalization."""

import pytest

from repro.server.cache import PlanCache, ResultCache, normalize_query
from repro.spark.metrics import MetricsCollector


class TestNormalizeQuery:
    def test_collapses_whitespace(self):
        assert (
            normalize_query("SELECT  ?s\n\tWHERE   { ?s ?p ?o }")
            == "SELECT ?s WHERE { ?s ?p ?o }"
        )

    def test_strips_comments(self):
        text = "SELECT ?s # pick everything\nWHERE { ?s ?p ?o } # done"
        assert normalize_query(text) == "SELECT ?s WHERE { ?s ?p ?o }"

    def test_hash_inside_iri_is_not_a_comment(self):
        text = "SELECT ?s WHERE { ?s <http://x/ns#type> ?o }"
        assert normalize_query(text) == text

    def test_hash_inside_string_literal_survives(self):
        text = 'SELECT ?s WHERE { ?s ?p "a # b" }'
        assert normalize_query(text) == text

    def test_whitespace_inside_string_literal_survives(self):
        """Regression: literal content must stay byte-for-byte intact."""
        text = 'SELECT ?s WHERE { ?s ?p "a  b\tc" }'
        assert normalize_query(text) == text

    def test_collapse_is_quote_aware(self):
        text = 'SELECT  ?s\nWHERE { ?s ?p "a  b"  .\n ?s ?q \'x  y\' }'
        assert (
            normalize_query(text)
            == "SELECT ?s WHERE { ?s ?p \"a  b\" . ?s ?q 'x  y' }"
        )

    def test_equivalent_texts_share_a_key(self):
        a = "SELECT ?s WHERE { ?s ?p ?o }"
        b = "SELECT ?s  WHERE {\n  ?s ?p ?o\n}  # trailing comment"
        assert normalize_query(a) == normalize_query(b)


class TestPlanCache:
    def test_hit_returns_same_object(self):
        cache = PlanCache(4)
        text = normalize_query("SELECT ?s WHERE { ?s ?p ?o }")
        first, hit1 = cache.get_or_parse(text)
        second, hit2 = cache.get_or_parse(text)
        assert not hit1 and hit2
        assert first is second

    def test_counters(self):
        cache = PlanCache(4)
        metrics = MetricsCollector()
        text = normalize_query("SELECT ?s WHERE { ?s ?p ?o }")
        cache.get_or_parse(text, metrics)
        cache.get_or_parse(text, metrics)
        assert metrics.get("plan_cache_misses") == 1
        assert metrics.get("plan_cache_hits") == 1

    def test_lru_eviction(self):
        cache = PlanCache(2)
        texts = [
            "SELECT ?s WHERE { ?s <http://x/p%d> ?o }" % i for i in range(3)
        ]
        for text in texts:
            cache.get_or_parse(normalize_query(text))
        assert len(cache) == 2
        # Oldest entry evicted: re-fetch is a miss.
        _, hit = cache.get_or_parse(normalize_query(texts[0]))
        assert not hit

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            PlanCache(0)


class TestResultCache:
    def test_roundtrip_and_counters(self):
        cache = ResultCache(4)
        metrics = MetricsCollector()
        key = ("q", 0, "SPARQLGX")
        assert cache.get(key, metrics) is None
        cache.put(key, '{"rows":[]}', metrics)
        assert cache.get(key, metrics) == '{"rows":[]}'
        assert metrics.get("result_cache_misses") == 1
        assert metrics.get("result_cache_hits") == 1

    def test_lru_eviction_counts(self):
        cache = ResultCache(2)
        metrics = MetricsCollector()
        for i in range(3):
            cache.put(("q%d" % i, 0, "E"), "r%d" % i, metrics)
        assert len(cache) == 2
        assert metrics.get("result_cache_evictions") == 1
        assert cache.get(("q0", 0, "E")) is None
        assert cache.get(("q2", 0, "E")) == "r2"

    def test_version_bump_invalidates_old_entries_only(self):
        cache = ResultCache(8)
        metrics = MetricsCollector()
        cache.put(("q", 0, "E"), "old")
        cache.put(("p", 0, "E"), "old2")
        cache.put(("q", 1, "E"), "new")
        dropped = cache.invalidate_below(1, metrics)
        assert dropped == 2
        assert metrics.get("result_cache_invalidations") == 2
        assert cache.get(("q", 0, "E")) is None
        assert cache.get(("q", 1, "E")) == "new"

    def test_stale_version_never_hits_even_before_purge(self):
        cache = ResultCache(8)
        cache.put(("q", 0, "E"), "old")
        # Key carries the version: a bumped reader simply misses.
        assert cache.get(("q", 1, "E")) is None
