"""The routed QueryService: adaptive dispatch must never change answers.

The contract under test (docs/ROUTING.md): routing chooses *where* a
query runs, never *what* it answers -- payload bytes with ``route=True``
are identical to the fixed-engine service for every corpus query, under
every backend, for any worker count.
"""

import glob
import os

import pytest

from repro.data.lubm import LUBM
from repro.rdf.triple import Triple
from repro.server import QueryRequest, QueryService

CORPUS = sorted(
    glob.glob(
        os.path.join(
            os.path.dirname(__file__),
            "..",
            "..",
            "examples",
            "queries",
            "shapes",
            "*",
            "*.rq",
        )
    )
)
CORPUS_IDS = [os.path.basename(path) for path in CORPUS]

STAR_QUERY = (
    "PREFIX lubm: <http://repro.example.org/lubm#>\n"
    "SELECT ?s ?n ?a WHERE { ?s lubm:name ?n . ?s lubm:age ?a }"
)


def read_query(path):
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


@pytest.fixture
def routed(lubm_graph):
    return QueryService(lubm_graph, route=True, pool_size=1)


class TestConstruction:
    def test_route_engines_requires_route(self, lubm_graph):
        with pytest.raises(ValueError):
            QueryService(lubm_graph, route_engines=["SPARQLGX"])

    def test_pool_slots_hold_every_candidate(self, routed):
        slot = routed.pool[0]
        for name in routed.routing.engines:
            assert slot.engine_for(name).profile.name == name

    def test_route_enabled_property(self, routed, lubm_graph):
        assert routed.route_enabled
        assert not QueryService(lubm_graph).route_enabled


class TestDifferential:
    """Routing on == routing off, byte for byte, query by query."""

    @pytest.mark.parametrize("path", CORPUS, ids=CORPUS_IDS)
    def test_routed_payload_matches_fixed_engine(
        self, routed, lubm_graph, path
    ):
        text = read_query(path)
        fixed = QueryService(lubm_graph, pool_size=1).submit(
            QueryRequest(text=text)
        )
        outcome = routed.submit(QueryRequest(text=text))
        assert outcome.status == "ok"
        assert outcome.payload == fixed.payload

    def test_shape_and_engine_annotations(self, routed):
        outcome = routed.submit(QueryRequest(text=STAR_QUERY))
        assert outcome.shape == "star"
        assert outcome.engine == "HAQWA"  # fresh policy: survey preference
        # The wire envelope stays routing-agnostic.
        assert "engine" not in outcome.to_response()
        assert "shape" not in outcome.to_response()


class TestResultCache:
    def test_hits_are_keyed_by_routed_engine(self, routed):
        # Pin the winner first: otherwise exploration moves the next
        # request to a different engine (a different cache key).
        routed.routing.feedback.seed_prior("HAQWA", "star", 0.0001)
        cold = routed.submit(QueryRequest(text=STAR_QUERY))
        warm = routed.submit(QueryRequest(text=STAR_QUERY))
        assert (cold.engine, warm.engine) == ("HAQWA", "HAQWA")
        assert (cold.cache, warm.cache) == ("cold", "result")
        assert warm.payload == cold.payload

    def test_engine_change_misses_then_matches_bytes(self, routed):
        """When calibration moves a shape to a new engine, the cache must
        miss (different engine key) yet the bytes must still match."""
        cold = routed.submit(QueryRequest(text=STAR_QUERY))
        assert cold.engine == "HAQWA"
        routed.routing.feedback.seed_prior("SPARQLGX", "star", 0.0001)
        moved = routed.submit(QueryRequest(text=STAR_QUERY))
        assert moved.engine == "SPARQLGX"
        assert moved.cache != "result"  # no false sharing across engines
        assert moved.payload == cold.payload  # answers never change


class TestFeedbackLoop:
    def test_observed_units_feed_calibration(self, routed):
        routed.submit(QueryRequest(text=STAR_QUERY))
        snap = routed.stats()["routing"]
        assert snap["decisions"]["star"]["HAQWA"] == 1
        assert snap["calibration"]["HAQWA"]["star"]["observations"] == 1

    def test_stats_off_without_routing(self, lubm_graph):
        assert "routing" not in QueryService(lubm_graph).stats()

    def test_route_span_and_metrics(self, routed):
        routed.submit(QueryRequest(text=STAR_QUERY))
        assert routed.metrics.snapshot()["routing_decisions"] == 1

    def test_calibration_survives_commit(self, routed):
        routed.submit(QueryRequest(text=STAR_QUERY))
        before = routed.stats()["routing"]["calibration"]
        triple = Triple(
            LUBM.term("StudentX"), LUBM.term("age"), LUBM.term("99")
        )
        routed.commit(additions=[triple])
        after = routed.stats()["routing"]["calibration"]
        assert after == before
        # And the policy keeps serving against the new version.
        outcome = routed.submit(QueryRequest(text=STAR_QUERY))
        assert outcome.status == "ok"


class TestCustomPools:
    def test_narrow_pool_restricts_dispatch(self, lubm_graph):
        service = QueryService(
            lubm_graph, route=True, route_engines=["SPARQLGX"], pool_size=1
        )
        outcome = service.submit(QueryRequest(text=STAR_QUERY))
        assert outcome.engine == "SPARQLGX"

    def test_fallback_outside_pool_is_still_warmed(self, lubm_graph):
        """OPTIONAL is outside HAQWA's fragment; the fallback chain must
        dispatch to a warmed engine, not crash on a missing slot."""
        service = QueryService(
            lubm_graph, route=True, route_engines=["HAQWA"], pool_size=1
        )
        outcome = service.submit(
            QueryRequest(
                text=(
                    "PREFIX lubm: <http://repro.example.org/lubm#>\n"
                    "SELECT ?s ?p WHERE { ?s lubm:advisor ?p "
                    "OPTIONAL { ?p lubm:name ?n } }"
                )
            )
        )
        assert outcome.status == "ok"
        assert outcome.engine == "SPARQLGX"
        assert routed_stats_fallbacks(service) == 1


def routed_stats_fallbacks(service):
    return service.stats()["routing"]["fallback_decisions"]


class TestParallelBackend:
    """Routing decisions and wire bytes are backend- and worker-invariant."""

    @pytest.mark.parametrize("workers", [1, 2])
    def test_parallel_matches_oracle(self, lubm_graph, workers):
        queries = [read_query(path) for path in CORPUS[:4]]
        oracle = QueryService(lubm_graph, route=True, pool_size=1)
        parallel = QueryService(
            lubm_graph,
            route=True,
            pool_size=1,
            backend="parallel",
            workers=workers,
        )
        for text in queries:
            expected = oracle.submit(QueryRequest(text=text))
            actual = parallel.submit(QueryRequest(text=text))
            assert actual.engine == expected.engine
            assert actual.payload == expected.payload

    @pytest.mark.slow
    @pytest.mark.parametrize("workers", [4])
    def test_parallel_full_corpus(self, lubm_graph, workers):
        oracle = QueryService(lubm_graph, route=True, pool_size=1)
        parallel = QueryService(
            lubm_graph,
            route=True,
            pool_size=1,
            backend="parallel",
            workers=workers,
        )
        for path in CORPUS:
            text = read_query(path)
            expected = oracle.submit(QueryRequest(text=text))
            actual = parallel.submit(QueryRequest(text=text))
            assert actual.engine == expected.engine
            assert actual.payload == expected.payload
        assert (
            parallel.stats()["routing"]["decisions"]
            == oracle.stats()["routing"]["decisions"]
        )
