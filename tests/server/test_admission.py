"""Bounded-queue admission and per-tenant fair-share dequeueing."""

import pytest

from repro.server.admission import AdmissionRejectedError, FairShareQueue


class TestBoundedQueue:
    def test_rejects_beyond_limit(self):
        queue = FairShareQueue(queue_limit=2)
        queue.offer("a", 1)
        queue.offer("a", 2)
        with pytest.raises(AdmissionRejectedError) as info:
            queue.offer("b", 3)
        error = info.value
        assert error.tenant == "b"
        assert error.queue_depth == 2
        assert error.queue_limit == 2
        assert "queue full" in str(error)

    def test_zero_limit_rejects_everything(self):
        queue = FairShareQueue(queue_limit=0)
        with pytest.raises(AdmissionRejectedError):
            queue.offer("a", 1)

    def test_take_from_empty_is_none(self):
        assert FairShareQueue(4).take() is None


class TestFairShare:
    def test_round_robin_when_unbilled(self):
        queue = FairShareQueue(8)
        queue.offer("b", "b1")
        queue.offer("a", "a1")
        # No service billed yet: tie broken by tenant name.
        assert queue.take() == ("a", "a1")
        assert queue.take() == ("b", "b1")

    def test_light_tenant_jumps_heavy_tenants_backlog(self):
        queue = FairShareQueue(8)
        for i in range(4):
            queue.offer("heavy", "h%d" % i)
        queue.charge("heavy", 1000)  # the flood has consumed service
        queue.offer("light", "l0")
        tenant, item = queue.take()
        assert (tenant, item) == ("light", "l0")

    def test_service_units_accumulate(self):
        queue = FairShareQueue(8)
        queue.charge("a", 10)
        queue.charge("a", 5)
        assert queue.service_units("a") == 15

    def test_fifo_within_one_tenant(self):
        queue = FairShareQueue(8)
        queue.offer("a", 1)
        queue.offer("a", 2)
        queue.offer("a", 3)
        assert [queue.take()[1] for _ in range(3)] == [1, 2, 3]

    def test_deterministic_interleaving(self):
        def run():
            queue = FairShareQueue(8)
            queue.offer("a", "a1")
            queue.offer("b", "b1")
            queue.offer("a", "a2")
            out = [queue.take()]
            queue.charge("a", 50)
            queue.offer("b", "b2")
            out.extend(queue.drain())
            return out

        assert run() == run()

    def test_drain_empties_queue(self):
        queue = FairShareQueue(8)
        queue.offer("a", 1)
        queue.offer("b", 2)
        assert len(queue.drain()) == 2
        assert len(queue) == 0

    def test_waiting_by_tenant(self):
        queue = FairShareQueue(8)
        queue.offer("a", 1)
        queue.offer("a", 2)
        queue.offer("b", 3)
        assert queue.waiting_by_tenant() == {"a": 2, "b": 1}
