"""The query service with materialized views: counters, maintenance,
version consistency, and constructor validation."""

import pytest

from repro.rdf.terms import URI
from repro.rdf.triple import Triple
from repro.server import QueryRequest, QueryService
from repro.views import materialize_view

LUBM = "http://repro.example.org/lubm#"
QUERY = (
    "PREFIX lubm: <%s>\n"
    "SELECT ?x ?y WHERE { ?x lubm:advisor ?y . ?x lubm:takesCourse ?c . }"
    % LUBM
)


def views_service(graph, **kwargs):
    return QueryService(
        graph, pool_size=1, optimize=True, enable_views=True, **kwargs
    )


def test_views_require_optimize(lubm_graph):
    with pytest.raises(ValueError):
        QueryService(lubm_graph, pool_size=1, enable_views=True)


def test_views_answers_match_plain_service(lubm_graph):
    plain = QueryService(lubm_graph, pool_size=1, optimize=True)
    viewed = views_service(lubm_graph)
    assert (
        viewed.submit(QueryRequest(text=QUERY, id="q")).payload
        == plain.submit(QueryRequest(text=QUERY, id="q")).payload
    )


def test_view_hits_counter_and_stats_surface(lubm_graph):
    service = views_service(lubm_graph)
    assert service.view_catalog is not None
    assert len(service.view_catalog) > 0
    outcome = service.submit(QueryRequest(text=QUERY))
    assert outcome.status == "ok"
    assert service.snapshot()["view_hits"] >= 1
    payload = service.stats()
    assert payload["views"]["views"] == len(service.view_catalog)
    assert payload["views"]["version"] == service.version
    plain = QueryService(lubm_graph, pool_size=1, optimize=True)
    assert "views" not in plain.stats()


def test_commit_maintains_views_incrementally(lubm_graph):
    service = views_service(lubm_graph)
    catalog_before = service.view_catalog
    doomed = sorted(lubm_graph)[30:60]
    service.commit(deletions=doomed)
    # Same catalog object, delta-maintained -- not a rebuild...
    assert service.view_catalog is catalog_before
    assert service.view_catalog.version == service.version == 1
    assert service.last_maintenance is not None
    assert (
        service.snapshot()["views_maintained"]
        == service.last_maintenance.views_affected
        > 0
    )
    # ...and every view stays exact against the post-commit head.
    head = service.versions.head()
    for view in service.view_catalog.sorted_views()[:30]:
        oracle = materialize_view(head, view.key, view.factor)
        assert view.rows() == oracle.rows(), view.name
    # Post-commit queries still answer and still substitute.
    outcome = service.submit(QueryRequest(text=QUERY))
    assert outcome.status == "ok"
    assert service.snapshot()["view_hits"] >= 1


def test_post_commit_answers_match_views_off(lubm_graph):
    viewed = views_service(lubm_graph)
    plain = QueryService(lubm_graph, pool_size=1, optimize=True)
    addition = Triple(
        URI(LUBM + "StudentNew"),
        URI(LUBM + "advisor"),
        URI(LUBM + "ProfNew"),
    )
    doomed = sorted(lubm_graph)[10:25]
    for service in (viewed, plain):
        service.commit(additions=[addition], deletions=doomed)
    assert (
        viewed.submit(QueryRequest(text=QUERY)).payload
        == plain.submit(QueryRequest(text=QUERY)).payload
    )


def test_view_threshold_flows_through(lubm_graph):
    tight = views_service(lubm_graph, view_threshold=0.1)
    loose = views_service(lubm_graph, view_threshold=0.9)
    assert len(tight.view_catalog) < len(loose.view_catalog)
    assert tight.view_catalog.threshold == 0.1
