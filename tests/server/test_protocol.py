"""Canonical result serialization and the JSON-lines protocol.

The canonical-ordering regression suite: serialized results at the
service boundary must be byte-identical regardless of which engine
produced them (for unordered queries) and across repeated runs, or the
result cache's byte-identity guarantee is vacuous.
"""

import pytest

from repro.runtime import build_engine
from repro.server.protocol import (
    ProtocolError,
    canonical_json,
    canonical_result,
    decode_request,
    encode_response,
)
from repro.sparql.parser import parse_sparql

MEMBER_QUERY = (
    "PREFIX lubm: <http://repro.example.org/lubm#>\n"
    "SELECT ?s ?d WHERE { ?s lubm:memberOf ?d }"
)


class TestCanonicalOrdering:
    def test_unordered_select_sorts_rows(self, lubm_graph):
        engine = build_engine("Naive", lubm_graph)
        result = engine.execute(MEMBER_QUERY)
        payload = canonical_result(result, parse_sparql(MEMBER_QUERY))
        assert payload["type"] == "bindings"
        assert payload["ordered"] is False
        assert payload["rows"] == sorted(payload["rows"])

    def test_engines_agree_byte_for_byte(self, lubm_graph):
        """Different engines, different internal row orders -- one wire form."""
        renders = []
        for name in ("Naive", "SPARQLGX", "S2RDF"):
            engine = build_engine(name, lubm_graph)
            result = engine.execute(MEMBER_QUERY)
            renders.append(
                canonical_json(
                    canonical_result(result, parse_sparql(MEMBER_QUERY))
                )
            )
        assert renders[0] == renders[1] == renders[2]

    def test_repeated_runs_are_byte_identical(self, lubm_graph):
        engine = build_engine("SPARQLGX", lubm_graph)
        plan = parse_sparql(MEMBER_QUERY)
        first = canonical_json(canonical_result(engine.execute(plan), plan))
        second = canonical_json(canonical_result(engine.execute(plan), plan))
        assert first == second

    def test_order_by_is_preserved_not_sorted(self, lubm_graph):
        query = (
            "PREFIX lubm: <http://repro.example.org/lubm#>\n"
            "SELECT ?d WHERE { ?s lubm:memberOf ?d } ORDER BY DESC(?d)"
        )
        engine = build_engine("Naive", lubm_graph)
        plan = parse_sparql(query)
        payload = canonical_result(engine.execute(plan), plan)
        assert payload["ordered"] is True
        # Descending order: the serializer must NOT have re-sorted ascending.
        assert payload["rows"] == sorted(payload["rows"], reverse=True)
        assert payload["rows"] != sorted(payload["rows"])

    def test_ask_and_construct_forms(self, lubm_graph):
        engine = build_engine("Naive", lubm_graph)
        ask = engine.execute(
            "PREFIX lubm: <http://repro.example.org/lubm#>\n"
            "ASK { ?s lubm:memberOf ?d }"
        )
        assert canonical_result(ask) == {"type": "boolean", "value": True}
        construct = engine.execute(
            "PREFIX lubm: <http://repro.example.org/lubm#>\n"
            "CONSTRUCT { ?d lubm:hasMember ?s } WHERE { ?s lubm:memberOf ?d }"
        )
        payload = canonical_result(construct)
        assert payload["type"] == "graph"
        assert payload["triples"] == sorted(payload["triples"])

    def test_unbound_optional_variables_render_empty(self, lubm_graph):
        query = (
            "PREFIX lubm: <http://repro.example.org/lubm#>\n"
            "SELECT ?s ?x WHERE { ?s lubm:memberOf ?d "
            "OPTIONAL { ?s lubm:noSuchPredicate ?x } }"
        )
        engine = build_engine("Naive", lubm_graph)
        plan = parse_sparql(query)
        payload = canonical_result(engine.execute(plan), plan)
        assert all(row[1] == "" for row in payload["rows"])


class TestCanonicalJson:
    def test_sorted_compact_deterministic(self):
        payload = {"b": 1, "a": [1, 2]}
        assert canonical_json(payload) == '{"a":[1,2],"b":1}'


class TestRequestDecoding:
    def test_query_defaults(self):
        payload = decode_request('{"query": "SELECT ?s WHERE { ?s ?p ?o }"}')
        assert payload["op"] == "query"

    def test_rejects_bad_json(self):
        with pytest.raises(ProtocolError):
            decode_request("{nope")

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            decode_request("[1, 2]")

    def test_rejects_unknown_op(self):
        with pytest.raises(ProtocolError):
            decode_request('{"op": "explode"}')

    def test_rejects_query_without_text(self):
        with pytest.raises(ProtocolError):
            decode_request('{"op": "query"}')

    def test_rejects_empty_line(self):
        with pytest.raises(ProtocolError):
            decode_request("   \n")

    def test_encode_response_is_canonical(self):
        assert (
            encode_response({"status": "ok", "id": "x"})
            == '{"id":"x","status":"ok"}'
        )


class TestStablePaging:
    """The stable-paging contract for CONSTRUCT wire forms.

    Graph payloads are totally ordered (sorted N-Triples lines) and
    LIMIT/OFFSET slicing happens *after* the sort, at this layer only:
    at a fixed graph version, pages are disjoint, exhaustive, and
    reassemble the unpaged payload byte-identically.  The federation
    harvester's exactness rests on this class.
    """

    CONSTRUCT = (
        "PREFIX lubm: <http://repro.example.org/lubm#>\n"
        "CONSTRUCT { ?s lubm:advisor ?o } WHERE { ?s lubm:advisor ?o }"
    )

    def _unpaged(self, lubm_graph):
        engine = build_engine("Naive", lubm_graph)
        plan = parse_sparql(self.CONSTRUCT)
        return canonical_result(engine.execute(plan), plan)

    def _page(self, lubm_graph, limit, offset):
        text = "%s LIMIT %d OFFSET %d" % (self.CONSTRUCT, limit, offset)
        engine = build_engine("Naive", lubm_graph)
        plan = parse_sparql(text)
        return canonical_result(engine.execute(plan), plan)

    def test_unpaged_payload_has_no_page_key(self, lubm_graph):
        assert "page" not in self._unpaged(lubm_graph)

    def test_pages_are_disjoint_and_exhaustive(self, lubm_graph):
        full = self._unpaged(lubm_graph)
        total = len(full["triples"])
        limit = 5
        reassembled = []
        offset = 0
        while offset < total:
            page = self._page(lubm_graph, limit, offset)
            assert page["page"] == {
                "limit": limit,
                "offset": offset,
                "total": total,
            }
            assert len(page["triples"]) <= limit
            assert not set(reassembled) & set(page["triples"])
            reassembled.extend(page["triples"])
            offset += limit
        # Byte-identical reassembly of the unpaged form.
        assert reassembled == full["triples"]

    def test_page_boundaries_are_engine_independent(self, lubm_graph):
        text = self.CONSTRUCT + " LIMIT 4 OFFSET 4"
        plan = parse_sparql(text)
        payloads = {
            canonical_json(
                canonical_result(
                    build_engine(name, lubm_graph).execute(plan), plan
                )
            )
            for name in ["Naive", "SPARQLGX", "S2RDF", "HAQWA"]
        }
        assert len(payloads) == 1

    def test_offset_past_the_end_is_an_empty_page(self, lubm_graph):
        full = self._unpaged(lubm_graph)
        total = len(full["triples"])
        page = self._page(lubm_graph, 5, total + 10)
        assert page["triples"] == []
        assert page["page"]["total"] == total

    def test_pure_offset_slices_the_tail(self, lubm_graph):
        full = self._unpaged(lubm_graph)
        text = self.CONSTRUCT + " OFFSET 3"
        engine = build_engine("Naive", lubm_graph)
        plan = parse_sparql(text)
        payload = canonical_result(engine.execute(plan), plan)
        assert payload["triples"] == full["triples"][3:]
        assert payload["page"]["limit"] is None
