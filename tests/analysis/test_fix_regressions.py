"""Regression tests for the determinism bugs the checker flagged.

The checker's first run over ``src/repro`` found three genuine
set-iteration-order bugs (DT002).  Each test here reruns the fixed code
path in subprocesses under *different* ``PYTHONHASHSEED`` values -- the
condition that actually perturbs set order for str-hashed elements --
and asserts byte-identical output.
"""

import os
import subprocess
import sys

import pytest

SRC = os.path.normpath(
    os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        os.pardir,
        "src",
    )
)


def run_hashseeded(script: str, seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = SRC
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return proc.stdout


def assert_hashseed_invariant(script: str) -> None:
    outputs = {run_hashseeded(script, seed) for seed in ("1", "2", "77")}
    assert len(outputs) == 1, "output varies with PYTHONHASHSEED"
    (only,) = outputs
    assert only.strip(), "script produced no output"


@pytest.mark.slow
class TestHashSeedInvariance:
    def test_cardinality_estimate(self):
        """optimizer/cardinality.py: per-variable products accumulated
        in sorted order, not set order (float * is not associative)."""
        assert_hashseed_invariant(
            """
from repro.data.lubm import LubmGenerator
from repro.optimizer.cardinality import CardinalityEstimator
from repro.sparql.parser import parse_sparql
from repro.stats import StatsCatalog

graph = LubmGenerator(num_universities=1, seed=42).generate()
estimator = CardinalityEstimator(StatsCatalog.from_graph(graph))
query = parse_sparql(
    'PREFIX lubm: <http://repro.example.org/lubm#> '
    'SELECT * WHERE { ?s lubm:memberOf ?d . ?s lubm:name ?n . '
    '?s lubm:age ?a . ?s lubm:takesCourse ?c }'
)
patterns = query.where.elements
print(repr(estimator._independence_cardinality(patterns)))
print(repr(estimator.subset_cardinality(patterns)))
"""
        )

    def test_paper_diff_report(self):
        """core/reports.py: Table I cells compared in sorted order."""
        assert_hashseed_invariant(
            """
from repro.core.registry import default_registry
from repro.core.reports import diff_against_paper

print(diff_against_paper(default_registry()))
"""
        )

    def test_graphframes_pruning(self):
        """systems/graphframes_sys.py: pruned predicate labels sorted."""
        assert_hashseed_invariant(
            """
from repro.data.lubm import LubmGenerator
from repro.spark.context import SparkContext
from repro.systems.graphframes_sys import GraphFramesEngine

graph = LubmGenerator(num_universities=1, seed=42).generate()
engine = GraphFramesEngine(SparkContext(default_parallelism=4))
engine.load(graph)
result = engine.execute(
    'PREFIX lubm: <http://repro.example.org/lubm#> '
    'SELECT ?s ?n WHERE { ?s lubm:memberOf ?d . ?s lubm:name ?n }'
)
rows = sorted(
    tuple(sol.get(v).n3() for v in result.variables)
    for sol in result.solutions
)
print(rows)
print(engine.last_pruned_edge_count)
"""
        )
