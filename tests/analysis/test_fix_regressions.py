"""Regression tests for the determinism bugs the checker flagged.

The checker's first run over ``src/repro`` found three genuine
set-iteration-order bugs (DT002); sharpening DT002 to follow names
bound to set values found three more (ExtVP reduction factors,
incremental-update rebuild order, metrics-snapshot deltas).  Each test
here reruns the fixed code path in subprocesses under *different*
``PYTHONHASHSEED`` values -- the condition that actually perturbs set
order for str-hashed elements -- and asserts byte-identical output.
"""

import os
import subprocess
import sys

import pytest

SRC = os.path.normpath(
    os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        os.pardir,
        "src",
    )
)


def run_hashseeded(script: str, seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = SRC
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return proc.stdout


def assert_hashseed_invariant(script: str) -> None:
    outputs = {run_hashseeded(script, seed) for seed in ("1", "2", "77")}
    assert len(outputs) == 1, "output varies with PYTHONHASHSEED"
    (only,) = outputs
    assert only.strip(), "script produced no output"


@pytest.mark.slow
class TestHashSeedInvariance:
    def test_cardinality_estimate(self):
        """optimizer/cardinality.py: per-variable products accumulated
        in sorted order, not set order (float * is not associative)."""
        assert_hashseed_invariant(
            """
from repro.data.lubm import LubmGenerator
from repro.optimizer.cardinality import CardinalityEstimator
from repro.sparql.parser import parse_sparql
from repro.stats import StatsCatalog

graph = LubmGenerator(num_universities=1, seed=42).generate()
estimator = CardinalityEstimator(StatsCatalog.from_graph(graph))
query = parse_sparql(
    'PREFIX lubm: <http://repro.example.org/lubm#> '
    'SELECT * WHERE { ?s lubm:memberOf ?d . ?s lubm:name ?n . '
    '?s lubm:age ?a . ?s lubm:takesCourse ?c }'
)
patterns = query.where.elements
print(repr(estimator._independence_cardinality(patterns)))
print(repr(estimator.subset_cardinality(patterns)))
"""
        )

    def test_paper_diff_report(self):
        """core/reports.py: Table I cells compared in sorted order."""
        assert_hashseed_invariant(
            """
from repro.core.registry import default_registry
from repro.core.reports import diff_against_paper

print(diff_against_paper(default_registry()))
"""
        )

    def test_extvp_reduction_factor(self):
        """optimizer/cardinality.py: reduction_factor multiplies the
        per-shared-variable factors in sorted order, not set order."""
        assert_hashseed_invariant(
            """
from repro.data.lubm import LubmGenerator
from repro.optimizer.cardinality import CardinalityEstimator
from repro.sparql.parser import parse_sparql
from repro.stats import StatsCatalog

graph = LubmGenerator(num_universities=1, seed=42).generate()
estimator = CardinalityEstimator(StatsCatalog.from_graph(graph))
query = parse_sparql(
    'PREFIX lubm: <http://repro.example.org/lubm#> '
    'SELECT * WHERE { ?s lubm:memberOf ?o . ?o lubm:subOrganizationOf ?s }'
)
first, second = query.where.elements
print(repr(estimator.reduction_factor(first, second)))
"""
        )

    def test_incremental_update_rebuild_order(self):
        """evolution/live.py: touched predicate stores rebuild in sorted
        order, so RDD ids and vp_tables insertion order are stable."""
        assert_hashseed_invariant(
            """
from repro.data.lubm import LubmGenerator
from repro.evolution.live import UpdatableSparqlgxEngine
from repro.rdf.triple import Triple
from repro.rdf.terms import URI
from repro.spark.context import SparkContext

graph = LubmGenerator(num_universities=1, seed=42).generate()
engine = UpdatableSparqlgxEngine(SparkContext(default_parallelism=4))
engine.load(graph)
subject = URI('http://repro.example.org/lubm#extra1')
additions = [
    Triple(subject, URI('http://repro.example.org/lubm#name'), subject),
    Triple(subject, URI('http://repro.example.org/lubm#memberOf'), subject),
    Triple(subject, URI('http://repro.example.org/lubm#age'), subject),
]
engine.apply_update(additions=additions)
print([p.n3() for p in sorted(engine.vp_sizes, key=lambda t: t.sort_key())])
print([t.id for t in engine.vp_tables.values()])
print(engine.last_update_touched)
"""
        )

    def test_metrics_snapshot_subtraction(self):
        """spark/metrics.py: snapshot deltas build their counter dict in
        sorted-name order, not set-union order."""
        assert_hashseed_invariant(
            """
from repro.spark.metrics import MetricsSnapshot

before = MetricsSnapshot({'records_scanned': 1, 'alpha': 2})
after = MetricsSnapshot({'records_scanned': 5, 'zeta': 9, 'beta': 3})
print((after - before).counters)
"""
        )

    def test_graphframes_pruning(self):
        """systems/graphframes_sys.py: pruned predicate labels sorted."""
        assert_hashseed_invariant(
            """
from repro.data.lubm import LubmGenerator
from repro.spark.context import SparkContext
from repro.systems.graphframes_sys import GraphFramesEngine

graph = LubmGenerator(num_universities=1, seed=42).generate()
engine = GraphFramesEngine(SparkContext(default_parallelism=4))
engine.load(graph)
result = engine.execute(
    'PREFIX lubm: <http://repro.example.org/lubm#> '
    'SELECT ?s ?n WHERE { ?s lubm:memberOf ?d . ?s lubm:name ?n }'
)
rows = sorted(
    tuple(sol.get(v).n3() for v in result.variables)
    for sol in result.solutions
)
print(rows)
print(engine.last_pruned_edge_count)
"""
        )
