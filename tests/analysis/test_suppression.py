"""The shared ``# repro: allow(CODE)`` suppression contract, proven
uniformly across all four analyzers.

For every suppressible rule code the same three facts must hold:

1. the trigger fixture is flagged with the code when no allow comment
   is present;
2. an allow naming exactly that code drops the finding;
3. an allow naming a *different* code changes nothing -- suppression is
   per-code, never per-line-blanket.

Codes whose findings carry no line anchor and no text to host a comment
are excluded by nature, not oversight: ``DT000`` (the file does not
parse, so no comment inside it is reliably attributable) and ``DS005``
(the finding is about a *page never being mentioned* -- there is no
flagged line to annotate).  The query linter's findings are plan-level,
so its allow is file-level (any comment line of the query).
"""

import textwrap

import pytest

from repro.analysis.closures import check_source as closures_check
from repro.analysis.determinism import check_source as determinism_check
from repro.analysis.docsync import check_root, registered_rule_codes
from repro.analysis.docsync import render_cli_reference
from repro.analysis.query import lint_text


def codes_of(report):
    return {d.code for d in report.diagnostics}


# ---------------------------------------------------------------------------
# Source-level analyzers: determinism and closures
# ---------------------------------------------------------------------------

#: code -> a source template with ``%s`` where the allow comment goes
#: (trailing on the flagged line).
DETERMINISM_TRIGGERS = {
    "DT001": """
        import json
        def f(payload):
            return json.dumps(payload)%s
        """,
    "DT002": """
        def f(items):
            for item in set(items):%s
                print(item)
        """,
    "DT003": """
        import random
        def f():
            return random.random()%s
        """,
    "DT004": """
        import time
        def f():
            return time.time()%s
        """,
    "DT005": """
        def f(out=[]):%s
            return out
        """,
}

CLOSURE_PRELUDE = """
    from repro.spark.context import SparkContext

    sc = SparkContext(4)
    rdd = sc.parallelize(range(10))
"""

CLOSURE_TRIGGERS = {
    "CL000": """
        out = rdd.map(lambda x: sc.parallelize([x]).count()).collect()%s
        """,
    "CL001": """
        seen = {}
        rdd.foreach(lambda x: seen.update({x: 1}))%s
        """,
    "CL002": """
        acc = sc.accumulator(0)
        out = rdd.map(lambda x: x + acc.value).collect()%s
        """,
    "CL003": """
        table = sc.broadcast({"a": 1})
        table.value["b"] = 2%s
        """,
    "CL004": """
        class TwoArgError(ValueError):
            def __init__(self, a, b):
                super().__init__(a)

        def guard(x):
            if x < 0:
                raise TwoArgError(x, "neg")%s
            return x
        out = rdd.map(guard).collect()
        """,
    "CL005": """
        pending = []
        for p in ("a", "b"):
            pending.append(rdd.filter(lambda t: t == p))%s
        """,
    "CL006": """
        TOTAL = 0
        def bump(x):
            global TOTAL%s
            TOTAL += x  # repro: allow(CL001)
        rdd.foreach(bump)
        """,
    "CL007": """
        acc = sc.accumulator(0)
        def peek(x):
            return x + acc.value  # repro: allow(CL002)
        out = rdd.map(lambda x: peek(x)).collect()%s
        """,
}


def _source_report(checker, prelude, template, allow):
    comment = "  # repro: allow(%s)" % allow if allow else ""
    source = textwrap.dedent(prelude) + textwrap.dedent(template % comment)
    return checker("mod.py", source)


OTHER = {"DT": "DT999", "CL": "CL999", "QL": "QL999", "DS": "DS999"}


class TestSourceAnalyzers:
    @pytest.mark.parametrize(
        "code",
        sorted(DETERMINISM_TRIGGERS) + sorted(CLOSURE_TRIGGERS),
    )
    def test_allow_suppresses_exactly_the_named_code(self, code):
        if code.startswith("DT"):
            checker, prelude, template = (
                determinism_check,
                "",
                DETERMINISM_TRIGGERS[code],
            )
        else:
            checker, prelude, template = (
                closures_check,
                CLOSURE_PRELUDE,
                CLOSURE_TRIGGERS[code],
            )
        bare = _source_report(checker, prelude, template, None)
        assert code in codes_of(bare), "trigger fixture must fire"
        named = _source_report(checker, prelude, template, code)
        assert code not in codes_of(named), "allow(code) must suppress"
        other = _source_report(
            checker, prelude, template, OTHER[code[:2]]
        )
        assert code in codes_of(other), "allow(other) must not suppress"


# ---------------------------------------------------------------------------
# The query linter: file-level allows in SPARQL comments
# ---------------------------------------------------------------------------

QUERY_TRIGGERS = {
    "QL000": "SELECT ?s WHERE {",
    "QL001": "SELECT ?a ?b WHERE { ?a <urn:p> ?x . ?b <urn:q> ?y }",
    "QL002": "SELECT ?s ?ghost WHERE { ?s <urn:p> ?o }",
    "QL003": 'SELECT ?s WHERE { ?s <urn:p> ?o FILTER(1 = 2) }',
}


class TestQueryLinter:
    @pytest.mark.parametrize("code", sorted(QUERY_TRIGGERS))
    def test_allow_suppresses_exactly_the_named_code(self, code):
        query = QUERY_TRIGGERS[code]
        assert code in codes_of(lint_text(query))
        named = "# repro: allow(%s)\n%s" % (code, query)
        assert code not in codes_of(lint_text(named))
        other = "# repro: allow(QL999)\n%s" % query
        assert code in codes_of(lint_text(other))

    def test_statistics_rules_suppressible(self, lubm_graph):
        from repro.stats import StatsCatalog

        catalog = StatsCatalog.from_graph(lubm_graph)
        query = "SELECT ?s WHERE { ?s <urn:never-seen> ?o }"
        assert "QL004" in codes_of(lint_text(query, catalog=catalog))
        named = "# repro: allow(QL004)\n" + query
        assert "QL004" not in codes_of(lint_text(named, catalog=catalog))


# ---------------------------------------------------------------------------
# Docsync: markdown-native allows
# ---------------------------------------------------------------------------


def _docs_root(tmp_path, readme_extra="", analysis_extra=""):
    """A minimal, otherwise-clean docsync root."""
    tmp_path.mkdir(parents=True, exist_ok=True)
    rows = "\n".join(
        "| %s | error | pinned |" % code
        for code in sorted(registered_rule_codes())
    )
    analysis = "# Analysis\n\n| code | severity | what |\n|--|--|--|\n"
    analysis += rows + "\n" + analysis_extra
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "ANALYSIS.md").write_text(
        analysis, encoding="utf-8"
    )
    readme = "\n".join(
        [
            "# Repo",
            "",
            "See docs/ANALYSIS.md.",
            "",
            "| code | meaning |",
            "|--|--|",
            "| 0 | clean |",
            "| 1 | failed checks |",
            "| 2 | unusable inputs |",
            "| 3 | fault budget exhausted |",
            "| 4 | warnings |",
            "| 5 | errors |",
            "",
            render_cli_reference(),
            "",
            readme_extra,
            "",
        ]
    )
    (tmp_path / "README.md").write_text(readme, encoding="utf-8")
    return str(tmp_path)


class TestDocsync:
    def test_baseline_root_is_clean(self, tmp_path):
        report = check_root(_docs_root(tmp_path))
        assert codes_of(report) == set()

    @pytest.mark.parametrize("allow,expect_gone", [
        (None, False),
        ("DS002", True),
        ("DS999", False),
    ])
    def test_ds002_allow(self, tmp_path, allow, expect_gone):
        comment = (
            " <!-- repro: allow(%s) -->" % allow if allow else ""
        )
        root = _docs_root(
            tmp_path, readme_extra="Use `--bogus-flag` here.%s" % comment
        )
        found = codes_of(check_root(root))
        assert ("DS002" not in found) == expect_gone

    def test_ds004_allow(self, tmp_path):
        line = "[missing](nowhere.md) <!-- repro: allow(DS004) -->"
        root = _docs_root(tmp_path / "allowed", readme_extra=line)
        assert "DS004" not in codes_of(check_root(root))
        root2 = _docs_root(
            tmp_path / "bare", readme_extra="[missing](nowhere.md)"
        )
        assert "DS004" in codes_of(check_root(root2))

    def test_ds006_allow(self, tmp_path):
        row = "| CL999 | error | ghost | <!-- repro: allow(DS006) -->"
        root = _docs_root(tmp_path, analysis_extra=row + "\n")
        assert "DS006" not in codes_of(check_root(root))
        root2 = _docs_root(
            tmp_path / "bare", analysis_extra="| CL998 | error | ghost |\n"
        )
        assert "DS006" in codes_of(check_root(root2))
