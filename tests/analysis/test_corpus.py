"""The example corpora: every pathological query is flagged and never
reaches execution through the service; the clean corpus sails through."""

import os

import pytest

from repro.analysis import lint_text
from repro.server import QueryRequest, QueryService
from repro.stats import StatsCatalog

CORPUS = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    os.pardir,
    "examples",
    "queries",
)
PATHOLOGICAL = os.path.normpath(os.path.join(CORPUS, "pathological"))
CLEAN = os.path.normpath(os.path.join(CORPUS, "clean"))

#: file name -> the error code it must be flagged with.
EXPECTED = {
    "cartesian_product.rq": "QL001",
    "disconnected_groups.rq": "QL001",
    "unbound_projection.rq": "QL002",
    "constant_false_filter.rq": "QL003",
    "contradictory_range.rq": "QL003",
    "conflicting_equality.rq": "QL003",
    "unknown_predicate.rq": "QL004",
    "over_budget.rq": "QL005",
    "syntax_error.rq": "QL000",
}


def read(directory, name):
    with open(os.path.join(directory, name), "r", encoding="utf-8") as f:
        return f.read()


@pytest.fixture(scope="module")
def catalog(lubm_graph):
    return StatsCatalog.from_graph(lubm_graph)


@pytest.fixture(scope="module")
def service(lubm_graph):
    return QueryService(lubm_graph, engine="SPARQLGX", pool_size=1)


class TestCorpusShape:
    def test_at_least_eight_pathological_queries(self):
        files = sorted(
            f for f in os.listdir(PATHOLOGICAL) if f.endswith(".rq")
        )
        assert len(files) >= 8
        assert files == sorted(EXPECTED)

    def test_clean_corpus_exists(self):
        assert len(
            [f for f in os.listdir(CLEAN) if f.endswith(".rq")]
        ) >= 3


class TestPathological:
    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_flagged_with_expected_code(self, name, catalog):
        report = lint_text(
            read(PATHOLOGICAL, name),
            subject=name,
            catalog=catalog,
            deadline=5,
        )
        flagged = {d.code for d in report.errors}
        assert EXPECTED[name] in flagged, (
            "%s: expected %s, got %s" % (name, EXPECTED[name], flagged)
        )
        assert report.exit_code() == 5

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_never_reaches_execution(self, name, service):
        before = [
            engine.ctx.metrics.snapshot() for engine in service.pool
        ]
        outcome = service.submit(
            QueryRequest(text=read(PATHOLOGICAL, name), deadline=5)
        )
        # Syntax errors fail at parse, the rest at lint admission; in
        # either case no engine ever sees the query.
        assert outcome.status in ("rejected", "error")
        assert outcome.service_units == 0
        for engine, snapshot in zip(service.pool, before):
            delta = engine.ctx.metrics.snapshot() - snapshot
            assert delta.tasks == 0
            assert delta.records_scanned == 0


class TestClean:
    @pytest.mark.parametrize(
        "name",
        sorted(f for f in os.listdir(CLEAN) if f.endswith(".rq")),
    )
    def test_lints_clean(self, name, catalog):
        report = lint_text(
            read(CLEAN, name), subject=name, catalog=catalog
        )
        assert report.exit_code() == 0, report.render()

    @pytest.mark.parametrize(
        "name",
        sorted(f for f in os.listdir(CLEAN) if f.endswith(".rq")),
    )
    def test_executes_through_service(self, name, service):
        outcome = service.submit(QueryRequest(text=read(CLEAN, name)))
        assert outcome.status == "ok"
