"""The closure example corpus: every violation file trips exactly its
named rule; every clean exemplar sails through the analyzer *and* runs
under live enforcement."""

import os
import runpy

import pytest

from repro.analysis.closures import check_source

CORPUS = os.path.normpath(
    os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        os.pardir,
        "examples",
        "closures",
    )
)
VIOLATIONS = os.path.join(CORPUS, "violations")
CLEAN = os.path.join(CORPUS, "clean")

#: file name -> the rule it exists to demonstrate.
EXPECTED = {
    "cl000_driver_capture.py": "CL000",
    "cl001_shared_mutation.py": "CL001",
    "cl002_accumulator_read.py": "CL002",
    "cl003_broadcast_mutation.py": "CL003",
    "cl004_unpicklable_exception.py": "CL004",
    "cl005_loop_capture.py": "CL005",
    "cl006_global_write.py": "CL006",
    "cl007_guilty_helper.py": "CL007",
}


def read(directory, name):
    with open(os.path.join(directory, name), "r", encoding="utf-8") as f:
        return f.read()


class TestCorpusShape:
    def test_every_rule_has_a_violation_file(self):
        files = sorted(
            f for f in os.listdir(VIOLATIONS) if f.endswith(".py")
        )
        assert files == sorted(EXPECTED)

    def test_clean_corpus_exists(self):
        assert (
            len([f for f in os.listdir(CLEAN) if f.endswith(".py")]) >= 3
        )


class TestViolations:
    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_named_rule_fires(self, name):
        report = check_source(name, read(VIOLATIONS, name))
        found = {d.code for d in report.diagnostics}
        assert EXPECTED[name] in found


class TestClean:
    @pytest.mark.parametrize(
        "name",
        sorted(f for f in os.listdir(CLEAN) if f.endswith(".py")),
    )
    def test_analyzer_silent(self, name):
        report = check_source(name, read(CLEAN, name))
        assert report.diagnostics == []

    @pytest.mark.parametrize(
        "name",
        sorted(f for f in os.listdir(CLEAN) if f.endswith(".py")),
    )
    def test_runs_under_live_enforcement(self, name, monkeypatch, capsys):
        # The clean exemplars are executable; run each one with
        # verification forced on so the runtime facet agrees with the
        # static verdict.
        from repro.spark import context as context_module

        original = context_module.SparkContext.__init__

        def verified_init(self, *args, **kwargs):
            kwargs["verify_closures"] = True
            original(self, *args, **kwargs)

        monkeypatch.setattr(
            context_module.SparkContext, "__init__", verified_init
        )
        runpy.run_path(os.path.join(CLEAN, name), run_name="corpus")
        capsys.readouterr()
