"""Front 1: the SPARQL/plan linter, rule by rule."""

import pytest

from repro.analysis import lint_text
from repro.stats import StatsCatalog

PREFIX = "PREFIX lubm: <http://repro.example.org/lubm#>\n"


@pytest.fixture(scope="module")
def catalog(lubm_graph):
    return StatsCatalog.from_graph(lubm_graph)


def codes(report):
    return sorted({d.code for d in report.diagnostics})


def lint(text, **kwargs):
    return lint_text(PREFIX + text, **kwargs)


class TestParseErrors:
    def test_ql000_on_unparseable_text(self):
        report = lint_text("SELECT ?s WHERE { ?s ?p")
        assert codes(report) == ["QL000"]
        assert report.exit_code() == 5

    def test_ql000_suppresses_other_rules(self):
        # No algebra exists, so nothing else may fire (or crash).
        report = lint_text("totally not sparql")
        assert codes(report) == ["QL000"]


class TestCartesian:
    def test_disjoint_patterns_flagged(self):
        report = lint(
            "SELECT ?s ?t WHERE "
            "{ ?s lubm:memberOf ?d . ?t lubm:teacherOf ?c }"
        )
        assert "QL001" in codes(report)

    def test_three_patterns_two_components(self):
        report = lint(
            "SELECT ?s WHERE { ?s lubm:memberOf ?d . ?s lubm:name ?n . "
            "?p lubm:publicationAuthor ?a }"
        )
        assert "QL001" in codes(report)

    def test_connected_star_clean(self):
        report = lint(
            "SELECT ?s WHERE { ?s lubm:memberOf ?d . ?s lubm:name ?n }"
        )
        assert "QL001" not in codes(report)

    def test_single_pattern_clean(self):
        report = lint("SELECT ?s WHERE { ?s lubm:memberOf ?d }")
        assert codes(report) == []


class TestUnboundProjection:
    def test_phantom_variable_flagged(self):
        report = lint("SELECT ?s ?email WHERE { ?s lubm:memberOf ?d }")
        assert "QL002" in codes(report)
        assert any("?email" in d.message for d in report.diagnostics)

    def test_bound_projection_clean(self):
        report = lint("SELECT ?s ?d WHERE { ?s lubm:memberOf ?d }")
        assert "QL002" not in codes(report)

    def test_optional_binding_counts(self):
        report = lint(
            "SELECT ?s ?n WHERE { ?s lubm:memberOf ?d "
            "OPTIONAL { ?s lubm:name ?n } }"
        )
        assert "QL002" not in codes(report)


class TestUnsatisfiableFilter:
    def test_constant_false(self):
        report = lint(
            "SELECT ?s WHERE { ?s lubm:memberOf ?d . FILTER (1 > 2) }"
        )
        assert "QL003" in codes(report)

    def test_empty_numeric_range(self):
        report = lint(
            "SELECT ?s WHERE { ?s lubm:age ?a . "
            "FILTER (?a > 40) FILTER (?a < 30) }"
        )
        assert "QL003" in codes(report)

    def test_conflicting_equalities(self):
        report = lint(
            "SELECT ?s WHERE { ?s lubm:age ?a . "
            "FILTER (?a = 20 && ?a = 21) }"
        )
        assert "QL003" in codes(report)

    def test_equality_vs_exclusion(self):
        report = lint(
            "SELECT ?s WHERE { ?s lubm:age ?a . "
            "FILTER (?a = 20 && ?a != 20) }"
        )
        assert "QL003" in codes(report)

    def test_satisfiable_range_clean(self):
        report = lint(
            "SELECT ?s WHERE { ?s lubm:age ?a . "
            "FILTER (?a >= 18 && ?a < 120) }"
        )
        assert "QL003" not in codes(report)

    def test_boundary_nonstrict_satisfiable(self):
        # >= 30 and <= 30 admits exactly 30: satisfiable.
        report = lint(
            "SELECT ?s WHERE { ?s lubm:age ?a . "
            "FILTER (?a >= 30) FILTER (?a <= 30) }"
        )
        assert "QL003" not in codes(report)

    def test_boundary_strict_empty(self):
        report = lint(
            "SELECT ?s WHERE { ?s lubm:age ?a . "
            "FILTER (?a > 30) FILTER (?a <= 30) }"
        )
        assert "QL003" in codes(report)

    def test_filters_in_different_groups_not_conjoined(self):
        # The two branches of a UNION are alternatives, not a
        # conjunction: no contradiction exists in either branch.
        report = lint(
            "SELECT ?s WHERE { { ?s lubm:age ?a . FILTER (?a > 40) } "
            "UNION { ?s lubm:age ?a . FILTER (?a < 30) } }"
        )
        assert "QL003" not in codes(report)


class TestUnknownPredicate:
    def test_needs_catalog(self):
        report = lint("SELECT ?s WHERE { ?s lubm:hasTelepathy ?x }")
        assert "QL004" not in codes(report)

    def test_mandatory_unknown_is_error(self, catalog):
        report = lint(
            "SELECT ?s WHERE { ?s lubm:hasTelepathy ?x }", catalog=catalog
        )
        found = [d for d in report.diagnostics if d.code == "QL004"]
        assert len(found) == 1
        assert found[0].severity == "error"
        assert "provably empty" in found[0].message

    def test_optional_unknown_is_warning(self, catalog):
        report = lint(
            "SELECT ?s WHERE { ?s lubm:memberOf ?d "
            "OPTIONAL { ?s lubm:hasTelepathy ?x } }",
            catalog=catalog,
        )
        found = [d for d in report.diagnostics if d.code == "QL004"]
        assert len(found) == 1
        assert found[0].severity == "warning"
        assert report.exit_code() == 4

    def test_known_predicate_clean(self, catalog):
        report = lint(
            "SELECT ?s WHERE { ?s lubm:memberOf ?d }", catalog=catalog
        )
        assert "QL004" not in codes(report)


class TestCostOverDeadline:
    SCAN = "SELECT ?s ?p ?o WHERE { ?s ?p ?o }"

    def test_needs_catalog_and_deadline(self, catalog):
        assert "QL005" not in codes(lint_text(self.SCAN))
        assert "QL005" not in codes(lint_text(self.SCAN, catalog=catalog))
        assert "QL005" not in codes(lint_text(self.SCAN, deadline=5))

    def test_scan_over_tight_budget(self, catalog):
        report = lint_text(self.SCAN, catalog=catalog, deadline=5)
        found = [d for d in report.diagnostics if d.code == "QL005"]
        assert len(found) == 1
        assert found[0].severity == "error"

    def test_generous_budget_clean(self, catalog):
        report = lint_text(self.SCAN, catalog=catalog, deadline=10**9)
        assert "QL005" not in codes(report)


class TestBroadcastMisuse:
    JOIN = (
        PREFIX
        + "SELECT ?s WHERE { ?s lubm:memberOf ?d . ?s lubm:name ?n }"
    )

    def test_threshold_over_dataset_warns(self, catalog):
        report = lint_text(
            self.JOIN, catalog=catalog, broadcast_threshold=10**6
        )
        found = [d for d in report.diagnostics if d.code == "QL006"]
        assert len(found) == 1
        assert found[0].severity == "warning"
        assert report.exit_code() == 4

    def test_default_threshold_clean(self, catalog):
        assert "QL006" not in codes(lint_text(self.JOIN, catalog=catalog))

    def test_single_pattern_never_warns(self, catalog):
        # No join, so nothing is broadcast regardless of the threshold.
        report = lint(
            "SELECT ?s WHERE { ?s lubm:memberOf ?d }",
            catalog=catalog,
            broadcast_threshold=10**6,
        )
        assert "QL006" not in codes(report)


class TestReportShape:
    def test_subject_carried_into_locations(self):
        report = lint_text(
            "SELECT ?s WHERE { ?s ?p", subject="broken.rq"
        )
        assert all(
            d.location == "broken.rq" for d in report.diagnostics
        )

    def test_lint_is_read_only(self, lubm_graph, catalog):
        before = len(lubm_graph)
        lint_text(
            "SELECT ?s ?p ?o WHERE { ?s ?p ?o }",
            catalog=catalog,
            deadline=5,
        )
        assert len(lubm_graph) == before
