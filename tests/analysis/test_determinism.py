"""Front 2: the AST determinism checker (rules ``DT000`` .. ``DT005``)."""

import textwrap

import pytest

from repro.analysis.determinism import check_paths, check_source, main


def run(source):
    return check_source("mod.py", textwrap.dedent(source))


def codes(report):
    return sorted({d.code for d in report.diagnostics})


class TestUnsortedJson:
    def test_dumps_without_sort_keys(self):
        report = run(
            """
            import json
            def f(payload):
                return json.dumps(payload)
            """
        )
        assert codes(report) == ["DT001"]

    def test_dumps_sort_keys_false(self):
        report = run(
            """
            import json
            def f(payload):
                return json.dumps(payload, sort_keys=False)
            """
        )
        assert codes(report) == ["DT001"]

    def test_dumps_sorted_clean(self):
        report = run(
            """
            import json
            def f(payload):
                return json.dumps(payload, sort_keys=True)
            """
        )
        assert codes(report) == []

    def test_dump_to_handle_flagged(self):
        report = run(
            """
            import json
            def f(payload, handle):
                json.dump(payload, handle)
            """
        )
        assert codes(report) == ["DT001"]

    def test_aliased_import_tracked(self):
        report = run(
            """
            import json as j
            def f(payload):
                return j.dumps(payload)
            """
        )
        assert codes(report) == ["DT001"]

    def test_kwargs_splat_trusted(self):
        # **kwargs may carry sort_keys=True; static analysis must not
        # cry wolf on what it cannot see.
        report = run(
            """
            import json
            def f(payload, kwargs):
                return json.dumps(payload, **kwargs)
            """
        )
        assert codes(report) == []

    def test_loads_never_flagged(self):
        report = run(
            """
            import json
            def f(text):
                return json.loads(text)
            """
        )
        assert codes(report) == []


class TestSetIteration:
    def test_for_over_set_call(self):
        report = run(
            """
            def f(items):
                for item in set(items):
                    print(item)
            """
        )
        assert codes(report) == ["DT002"]

    def test_for_over_set_literal(self):
        report = run(
            """
            def f():
                for item in {1, 2, 3}:
                    print(item)
            """
        )
        assert codes(report) == ["DT002"]

    def test_comprehension_over_set_union(self):
        report = run(
            """
            def f(a, b):
                return [x for x in set(a) | set(b)]
            """
        )
        assert codes(report) == ["DT002"]

    def test_sorted_set_clean(self):
        report = run(
            """
            def f(items):
                for item in sorted(set(items)):
                    print(item)
            """
        )
        assert codes(report) == []

    def test_order_insensitive_consumers_clean(self):
        report = run(
            """
            def f(items):
                total = sum(x for x in set(items))
                count = len(set(items))
                biggest = max(x * 2 for x in set(items))
                return total, count, biggest
            """
        )
        assert codes(report) == []

    def test_set_comprehension_result_clean(self):
        # The *result* is a set again: order never escapes.
        report = run(
            """
            def f(items):
                return {x * 2 for x in set(items)}
            """
        )
        assert codes(report) == []

    def test_list_conversion_of_set(self):
        report = run(
            """
            def f(items):
                return list(set(items))
            """
        )
        assert codes(report) == ["DT002"]

    def test_for_over_list_clean(self):
        report = run(
            """
            def f(items):
                for item in list(items):
                    print(item)
            """
        )
        assert codes(report) == []


class TestSetBoundNames:
    """The false negatives the bare-set audit closed: names bound to
    set values iterate just as nondeterministically as inline sets."""

    def test_set_comprehension_assigned_then_iterated(self):
        report = run(
            """
            def f(items):
                unique = {x.strip() for x in items}
                for item in unique:
                    print(item)
            """
        )
        assert codes(report) == ["DT002"]

    def test_frozenset_local_iterated(self):
        report = run(
            """
            def f(items):
                frozen = frozenset(items)
                return [x for x in frozen]
            """
        )
        assert codes(report) == ["DT002"]

    def test_grown_set_iterated(self):
        report = run(
            """
            def f(items):
                seen = set()
                for item in items:
                    seen.add(item)
                for item in seen:
                    print(item)
            """
        )
        assert codes(report) == ["DT002"]

    def test_set_union_augmented_keeps_setness(self):
        report = run(
            """
            def f(a, b):
                seen = set(a)
                seen |= set(b)
                for item in seen:
                    print(item)
            """
        )
        assert codes(report) == ["DT002"]

    def test_list_conversion_of_set_name(self):
        report = run(
            """
            def f(items):
                frozen = frozenset(items)
                return list(frozen)
            """
        )
        assert codes(report) == ["DT002"]

    def test_sorted_set_name_clean(self):
        report = run(
            """
            def f(items):
                unique = {x for x in items}
                for item in sorted(unique):
                    print(item)
            """
        )
        assert codes(report) == []

    def test_reassigned_name_not_flagged(self):
        # The name is later rebound to a sorted list: iteration of that
        # list is fine, and the flat scan must stay conservative.
        report = run(
            """
            def f(items):
                unique = {x for x in items}
                unique = sorted(unique)
                for item in unique:
                    print(item)
            """
        )
        assert codes(report) == []

    def test_parameter_shadowing_not_flagged(self):
        # A set-bound module name shadowed by a parameter elsewhere
        # disqualifies the name entirely (scope-flat conservatism).
        report = run(
            """
            KNOWN = frozenset(("a", "b"))

            def f(KNOWN):
                for item in KNOWN:
                    print(item)
            """
        )
        assert codes(report) == []


class TestUnseededRandom:
    def test_module_level_random_call(self):
        report = run(
            """
            import random
            def f():
                return random.random()
            """
        )
        assert codes(report) == ["DT003"]

    def test_module_level_choice(self):
        report = run(
            """
            import random
            def f(items):
                return random.choice(items)
            """
        )
        assert codes(report) == ["DT003"]

    def test_seeded_instance_clean(self):
        report = run(
            """
            import random
            def f(seed, items):
                rng = random.Random(seed)
                return rng.choice(items)
            """
        )
        assert codes(report) == []


class TestWallClock:
    def test_time_time(self):
        report = run(
            """
            import time
            def f():
                return time.time()
            """
        )
        assert codes(report) == ["DT004"]

    def test_perf_counter(self):
        report = run(
            """
            import time
            def f():
                return time.perf_counter()
            """
        )
        assert codes(report) == ["DT004"]

    def test_datetime_now(self):
        report = run(
            """
            import datetime
            def f():
                return datetime.datetime.now()
            """
        )
        assert codes(report) == ["DT004"]

    def test_from_import_now(self):
        report = run(
            """
            from datetime import datetime
            def f():
                return datetime.utcnow()
            """
        )
        assert codes(report) == ["DT004"]

    def test_time_sleep_clean(self):
        report = run(
            """
            import time
            def f():
                time.sleep(0)
            """
        )
        assert codes(report) == []


class TestMutableDefaults:
    def test_list_default_warns(self):
        report = run(
            """
            def f(items=[]):
                return items
            """
        )
        found = report.diagnostics
        assert codes(report) == ["DT005"]
        assert all(d.severity == "warning" for d in found)
        assert report.exit_code() == 4

    def test_dict_default_warns(self):
        assert codes(run("def f(mapping={}):\n    return mapping\n")) == [
            "DT005"
        ]

    def test_none_default_clean(self):
        assert codes(run("def f(items=None):\n    return items\n")) == []


class TestSuppression:
    def test_allow_on_flagged_line(self):
        report = run(
            """
            import time
            def f():
                return time.time()  # repro: allow(DT004)
            """
        )
        assert codes(report) == []

    def test_allow_on_line_above(self):
        report = run(
            """
            import time
            def f():
                # repro: allow(DT004)
                return time.time()
            """
        )
        assert codes(report) == []

    def test_allow_lists_multiple_codes(self):
        report = run(
            """
            import time
            def f():
                # repro: allow(DT001, DT004)
                return time.time()
            """
        )
        assert codes(report) == []

    def test_allow_wrong_code_does_not_suppress(self):
        report = run(
            """
            import time
            def f():
                return time.time()  # repro: allow(DT001)
            """
        )
        assert codes(report) == ["DT004"]


class TestFilesAndCli:
    def test_syntax_error_is_dt000(self):
        report = check_source("broken.py", "def f(:\n")
        assert codes(report) == ["DT000"]
        assert report.exit_code() == 5

    def test_check_paths_walks_directories(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "bad.py").write_text("import time\nt = time.time()\n")
        (pkg / "good.py").write_text("x = 1\n")
        (pkg / "notes.txt").write_text("not python\n")
        report = check_paths([str(tmp_path)])
        assert codes(report) == ["DT004"]
        assert report.diagnostics[0].location.endswith("bad.py")

    def test_main_exit_codes(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert main([str(good)]) == 0
        assert main([str(bad)]) == 5
        capsys.readouterr()

    def test_main_missing_path_exits_2(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.py")]) == 2
        assert "error" in capsys.readouterr().err.lower()

    def test_src_repro_is_clean(self):
        """The shipped tree passes its own gate (the CI invariant)."""
        import os

        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
        report = check_paths([root])
        assert report.render().endswith("0 error(s), 0 warning(s)"), (
            report.render()
        )
