"""Front 3: the docs drift checker (rules ``DS001`` .. ``DS006``).

The repo-level test at the bottom is the doc-sync gate promised in the
README: every flag the CLI defines is documented, and every documented
flag exists, because the generated CLI reference block is compared
byte-for-byte against ``repro.cli.build_parser()``.
"""

import os

import pytest

from repro.analysis.core import EXIT_CLEAN, EXIT_ERRORS, EXIT_WARNINGS
from repro.analysis.docsync import (
    CLI_REFERENCE_BEGIN,
    CLI_REFERENCE_END,
    check_root,
    cli_flags,
    extract_block,
    fix_readme,
    main,
    registered_rule_codes,
    render_cli_reference,
)

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


def codes(report):
    return sorted({d.code for d in report.diagnostics})


def write(root, relpath, text):
    path = os.path.join(str(root), relpath)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


EXIT_TABLE = "\n".join(
    "| `%d` | meaning |" % code for code in (0, 1, 2, 3, 4, 5)
)


def minimal_readme():
    """A README that passes every rule next to the minimal catalog."""
    return "# Repro\n\nSee docs/ANALYSIS.md.\n\n%s\n\n%s\n" % (
        EXIT_TABLE,
        render_cli_reference(),
    )


def write_catalog(root):
    """docs/ANALYSIS.md with one catalog row per registered rule."""
    rows = "\n".join(
        "| %s | error | pinned |" % code
        for code in sorted(registered_rule_codes())
    )
    write(
        root,
        "docs/ANALYSIS.md",
        "# Analysis\n\n| code | severity | what |\n|--|--|--|\n%s\n" % rows,
    )


class TestRenderedReference:
    def test_render_is_deterministic(self):
        assert render_cli_reference() == render_cli_reference()

    def test_reference_is_marker_delimited(self):
        text = render_cli_reference()
        assert text.startswith(CLI_REFERENCE_BEGIN)
        assert text.rstrip("\n").endswith(CLI_REFERENCE_END)

    def test_reference_covers_every_subcommand_flag(self):
        text = render_cli_reference()
        for flag in cli_flags():
            if flag in ("-h", "--help"):
                continue
            assert flag in text, flag

    def test_extract_block_round_trips(self):
        body = "intro\n%s\nfooter\n" % render_cli_reference()
        line, block = extract_block(body)
        assert line == 2
        assert block == render_cli_reference().rstrip("\n")

    def test_extract_block_missing_markers(self):
        assert extract_block("# no markers here\n") is None


class TestRules:
    def test_clean_tree(self, tmp_path):
        write(tmp_path, "README.md", minimal_readme())
        write_catalog(tmp_path)
        report = check_root(str(tmp_path))
        assert codes(report) == []
        assert report.exit_code() == EXIT_CLEAN

    def test_ds001_missing_block(self, tmp_path):
        write(tmp_path, "README.md", "# Repro\n\n%s\n" % EXIT_TABLE)
        assert "DS001" in codes(check_root(str(tmp_path)))

    def test_ds001_stale_block(self, tmp_path):
        stale = render_cli_reference().replace("repro query", "repro qeury")
        write(
            tmp_path, "README.md", "# R\n\n%s\n\n%s\n" % (EXIT_TABLE, stale)
        )
        report = check_root(str(tmp_path))
        assert "DS001" in codes(report)
        assert report.exit_code() == EXIT_ERRORS

    def test_ds002_unknown_flag(self, tmp_path):
        write(
            tmp_path,
            "README.md",
            minimal_readme() + "\nUse `--no-such-flag` to frob.\n",
        )
        report = check_root(str(tmp_path))
        assert "DS002" in codes(report)
        assert any(
            "--no-such-flag" in d.message for d in report.diagnostics
        )

    def test_ds002_known_flag_clean(self, tmp_path):
        write(
            tmp_path,
            "README.md",
            minimal_readme() + "\nPass `--optimize` to plan.\n",
        )
        assert "DS002" not in codes(check_root(str(tmp_path)))

    def test_ds003_missing_and_phantom_codes(self, tmp_path):
        table = "| `0` | ok |\n| `7` | phantom |\n"
        write(
            tmp_path,
            "README.md",
            "# R\n\n%s\n%s\n" % (table, render_cli_reference()),
        )
        report = check_root(str(tmp_path))
        messages = [d.message for d in report.diagnostics if d.code == "DS003"]
        assert any("exit code 5 is not documented" in m for m in messages)
        assert any("exit code 7" in m for m in messages)

    def test_ds004_broken_relative_link(self, tmp_path):
        write(
            tmp_path,
            "README.md",
            minimal_readme() + "\nSee [gone](docs/GONE.md).\n",
        )
        report = check_root(str(tmp_path))
        assert "DS004" in codes(report)

    def test_ds004_links_resolved_relative_to_page(self, tmp_path):
        write(tmp_path, "README.md", minimal_readme())
        # ARCHITECTURE.md links its sibling as OTHER.md, not docs/OTHER.md.
        write(
            tmp_path,
            "docs/ARCHITECTURE.md",
            "See [other](OTHER.md) and [up](../README.md).\n",
        )
        write(tmp_path, "docs/OTHER.md", "docs/ARCHITECTURE.md peer\n")
        readme = minimal_readme() + "\ndocs/ARCHITECTURE.md docs/OTHER.md\n"
        write(tmp_path, "README.md", readme)
        assert "DS004" not in codes(check_root(str(tmp_path)))

    def test_ds004_external_and_anchor_links_ignored(self, tmp_path):
        write(
            tmp_path,
            "README.md",
            minimal_readme()
            + "\n[w](https://example.org/x) [a](#section)\n",
        )
        assert "DS004" not in codes(check_root(str(tmp_path)))

    def test_ds005_unindexed_docs_page(self, tmp_path):
        write(tmp_path, "README.md", minimal_readme())
        write_catalog(tmp_path)
        write(tmp_path, "docs/ORPHAN.md", "never linked\n")
        report = check_root(str(tmp_path))
        assert codes(report) == ["DS005"]
        assert report.exit_code() == EXIT_WARNINGS

    def test_ds006_missing_catalog_page(self, tmp_path):
        write(tmp_path, "README.md", minimal_readme())
        report = check_root(str(tmp_path))
        assert codes(report) == ["DS006"]
        assert any(
            "docs/ANALYSIS.md is missing" in d.message
            for d in report.diagnostics
        )

    def test_ds006_unregistered_and_undocumented_rows(self, tmp_path):
        write(tmp_path, "README.md", minimal_readme())
        write_catalog(tmp_path)
        path = os.path.join(str(tmp_path), "docs", "ANALYSIS.md")
        with open(path, encoding="utf-8") as handle:
            body = handle.read()
        # Drop the CL000 row and add a phantom CL999 row.
        body = body.replace("| CL000 | error | pinned |\n", "")
        body += "| CL999 | error | ghost |\n"
        write(tmp_path, "docs/ANALYSIS.md", body)
        messages = [
            d.message
            for d in check_root(str(tmp_path)).diagnostics
            if d.code == "DS006"
        ]
        assert any("CL000" in m and "no catalog row" in m for m in messages)
        assert any("CL999" in m and "no analyzer registers" in m for m in messages)

    def test_missing_readme_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            check_root(str(tmp_path))


class TestFix:
    def test_fix_rewrites_stale_block(self, tmp_path):
        stale = minimal_readme().replace("repro query", "repro qeury")
        write(tmp_path, "README.md", stale)
        write_catalog(tmp_path)
        assert fix_readme(str(tmp_path)) is True
        assert check_root(str(tmp_path)).exit_code() == EXIT_CLEAN
        # A second pass is a no-op: the block is already canonical.
        assert fix_readme(str(tmp_path)) is False

    def test_fix_without_markers_raises(self, tmp_path):
        write(tmp_path, "README.md", "# R\n\n%s\n" % EXIT_TABLE)
        with pytest.raises(FileNotFoundError):
            fix_readme(str(tmp_path))


class TestCli:
    def test_clean_tree_exit_zero(self, tmp_path, capsys):
        write(tmp_path, "README.md", minimal_readme())
        write_catalog(tmp_path)
        assert main([str(tmp_path)]) == EXIT_CLEAN
        assert "docsync" in capsys.readouterr().out

    def test_json_report(self, tmp_path, capsys):
        import json

        write(tmp_path, "README.md", "# R\n\n%s\n" % EXIT_TABLE)
        code = main([str(tmp_path), "--json"])
        assert code == EXIT_ERRORS
        payload = json.loads(capsys.readouterr().out)
        assert payload["analyzer"] == "docsync"
        assert any(d["code"] == "DS001" for d in payload["diagnostics"])

    def test_missing_readme_exit_two(self, tmp_path, capsys):
        assert main([str(tmp_path)]) == 2
        assert "README" in capsys.readouterr().err

    def test_fix_flag(self, tmp_path, capsys):
        stale = minimal_readme().replace("Usage", "Usgae")
        write(tmp_path, "README.md", stale)
        write_catalog(tmp_path)
        assert main([str(tmp_path), "--fix"]) == EXIT_CLEAN


class TestRepositoryGate:
    """The committed docs must be drift-free -- this IS the doc-sync test."""

    def test_repo_docs_are_in_sync(self):
        report = check_root(REPO_ROOT)
        assert codes(report) == []
        assert report.exit_code() == EXIT_CLEAN
