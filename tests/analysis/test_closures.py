"""Front 4: the closure/shared-state analyzer (rules ``CL000`` .. ``CL007``)."""

import textwrap

import pytest

from repro.analysis.closures import check_paths, check_source, main


def run(*parts):
    # Each part dedents on its own: the prelude lives at module level,
    # the per-test snippets inside method bodies, so a single dedent of
    # the concatenation would leave the snippets over-indented (and the
    # analyzer skips unparseable sources silently).
    source = "".join(textwrap.dedent(part) for part in parts)
    return check_source("mod.py", source)


def codes(report):
    return sorted({d.code for d in report.diagnostics})


PRELUDE = """
    from repro.spark.context import SparkContext

    sc = SparkContext(4)
    rdd = sc.parallelize(range(10))
"""


class TestDriverCapture:
    def test_context_captured_in_worker_lambda(self):
        report = run(
            PRELUDE,
            """
            out = rdd.map(lambda x: sc.parallelize([x]).collect()).collect()
            """
        )
        assert "CL000" in codes(report)

    def test_context_constructed_inside_worker(self):
        report = run(
            PRELUDE,
            """
            out = rdd.map(lambda x: SparkContext(2)).collect()
            """
        )
        assert "CL000" in codes(report)

    def test_driver_object_in_default_still_flagged(self):
        # Default-arg rebinding sanctions loop variables, not driver
        # handles: the object still crosses the worker pipe.
        report = run(
            PRELUDE,
            """
            out = rdd.map(lambda x, c=sc: x).collect()
            """
        )
        assert "CL000" in codes(report)

    def test_plain_value_capture_clean(self):
        report = run(
            PRELUDE,
            """
            offset = 7
            out = rdd.map(lambda x: x + offset).collect()
            """
        )
        assert codes(report) == []


class TestSharedStateMutation:
    def test_dict_store_in_foreach(self):
        report = run(
            PRELUDE,
            """
            seen = {}
            def mark(x):
                seen[x] = 1
            rdd.foreach(mark)
            """
        )
        assert "CL001" in codes(report)

    def test_list_append_in_map(self):
        report = run(
            PRELUDE,
            """
            counts = []
            out = rdd.map(lambda x: counts.append(x)).collect()
            """
        )
        assert "CL001" in codes(report)

    def test_set_update_in_lambda(self):
        report = run(
            PRELUDE,
            """
            seen = set()
            rdd.foreach(lambda x: seen.update([x]))
            """
        )
        assert "CL001" in codes(report)

    def test_augmented_assign_on_captured_name(self):
        report = run(
            PRELUDE,
            """
            total = 0
            def bump(x):
                global total
                total += x
            rdd.foreach(bump)
            """
        )
        # global write (CL006) and the mutation rule overlap on purpose:
        # either alone would justify the rejection.
        found = codes(report)
        assert "CL006" in found

    def test_local_mutation_inside_closure_clean(self):
        report = run(
            PRELUDE,
            """
            def explode(x):
                out = []
                out.append(x)
                out.append(x + 1)
                return out
            flat = rdd.flatMap(explode).collect()
            """
        )
        assert codes(report) == []

    def test_accumulator_add_is_legal(self):
        report = run(
            PRELUDE,
            """
            acc = sc.accumulator(0)
            rdd.foreach(lambda x: acc.add(x))
            """
        )
        assert codes(report) == []


class TestAccumulatorRead:
    def test_value_read_in_transformation(self):
        report = run(
            PRELUDE,
            """
            acc = sc.accumulator(0)
            out = rdd.map(lambda x: x + acc.value).collect()
            """
        )
        assert "CL002" in codes(report)

    def test_value_read_on_driver_clean(self):
        report = run(
            PRELUDE,
            """
            acc = sc.accumulator(0)
            rdd.foreach(lambda x: acc.add(x))
            print(acc.value)
            """
        )
        assert codes(report) == []


class TestBroadcastMutation:
    def test_subscript_store_through_value(self):
        report = run(
            PRELUDE,
            """
            table = sc.broadcast({"a": 1})
            table.value["b"] = 2
            """
        )
        assert "CL003" in codes(report)

    def test_mutator_call_through_value(self):
        report = run(
            PRELUDE,
            """
            table = sc.broadcast({"a": 1})
            table.value.update({"b": 2})
            """
        )
        assert "CL003" in codes(report)

    def test_read_through_value_clean(self):
        report = run(
            PRELUDE,
            """
            table = sc.broadcast({"a": 1})
            out = rdd.map(lambda x: table.value.get("a", x)).collect()
            """
        )
        assert codes(report) == []


class TestUnpicklableException:
    def test_multi_arg_exception_raised_in_worker(self):
        report = run(
            PRELUDE,
            """
            class BadRecordError(ValueError):
                def __init__(self, code, detail):
                    super().__init__(code)
                    self.code = code
                    self.detail = detail

            def guard(x):
                if x < 0:
                    raise BadRecordError(x, "negative")
                return x
            out = rdd.map(guard).collect()
            """
        )
        assert "CL004" in codes(report)

    def test_exception_with_reduce_hook_clean(self):
        report = run(
            PRELUDE,
            """
            class GoodError(ValueError):
                def __init__(self, code, detail):
                    super().__init__(code)
                    self.code = code
                    self.detail = detail

                def __reduce__(self):
                    return (GoodError, (self.code, self.detail))

            def guard(x):
                if x < 0:
                    raise GoodError(x, "negative")
                return x
            out = rdd.map(guard).collect()
            """
        )
        assert codes(report) == []

    def test_single_arg_exception_clean(self):
        report = run(
            PRELUDE,
            """
            class SimpleError(ValueError):
                pass

            def guard(x):
                if x < 0:
                    raise SimpleError(x)
                return x
            out = rdd.map(guard).collect()
            """
        )
        assert codes(report) == []


class TestLoopVariableCapture:
    def test_late_binding_capture(self):
        report = run(
            PRELUDE,
            """
            filters = []
            for p in ("a", "b"):
                filters.append(rdd.filter(lambda t: t == p))
            """
        )
        assert "CL005" in codes(report)

    def test_default_arg_rebinding_clean(self):
        report = run(
            PRELUDE,
            """
            filters = []
            for p in ("a", "b"):
                filters.append(rdd.filter(lambda t, p=p: t == p))
            """
        )
        assert codes(report) == []


class TestGlobalWrite:
    def test_global_statement_in_worker(self):
        report = run(
            PRELUDE,
            """
            TOTAL = 0
            def bump(x):
                global TOTAL
                TOTAL += x
            rdd.foreach(bump)
            """
        )
        assert "CL006" in codes(report)

    def test_nonlocal_write_in_worker(self):
        report = run(
            PRELUDE,
            """
            def build():
                count = 0
                def bump(x):
                    nonlocal count
                    count += 1
                    return x
                return rdd.map(bump).collect()
            """
        )
        assert "CL006" in codes(report)


class TestGuiltyHelper:
    def test_call_into_guilty_module_def(self):
        report = run(
            PRELUDE,
            """
            acc = sc.accumulator(0)
            def peek(x):
                return x + acc.value
            out = rdd.map(lambda x: peek(x)).collect()
            """
        )
        found = codes(report)
        assert "CL007" in found

    def test_call_into_clean_helper_is_clean(self):
        report = run(
            PRELUDE,
            """
            def double(x):
                return 2 * x
            out = rdd.map(lambda x: double(x)).collect()
            """
        )
        assert codes(report) == []


class TestWorkerMethodCoverage:
    @pytest.mark.parametrize(
        "call",
        [
            "rdd.filter(lambda x: seen.pop())",
            "rdd.flatMap(lambda x: seen.pop())",
            "rdd.mapPartitions(lambda part: seen.pop())",
            "rdd.mapPartitionsWithIndex(lambda i, part: seen.pop())",
            "rdd.keyBy(lambda x: seen.pop())",
            "rdd.sortBy(lambda x: seen.pop())",
            "rdd.reduce(lambda a, b: seen.pop())",
        ],
    )
    def test_zero_index_closures(self, call):
        report = run(
            PRELUDE,
            """
            seen = [1]
            out = %s
            """
            % call
        )
        assert "CL001" in codes(report)

    def test_fold_skips_zero_value(self):
        # fold(zero, op): the zero value is data, only the op runs on
        # workers.
        report = run(
            PRELUDE,
            """
            seen = [1]
            pairs = rdd.keyBy(lambda x: x % 2)
            out = pairs.foldByKey(0, lambda a, b: seen.pop())
            """
        )
        assert "CL001" in codes(report)

    def test_aggregate_by_key_both_ops(self):
        report = run(
            PRELUDE,
            """
            seen = [1]
            pairs = rdd.keyBy(lambda x: x % 2)
            out = pairs.aggregateByKey(0, lambda a, x: seen.pop(), lambda a, b: a + b)
            """
        )
        assert "CL001" in codes(report)


class TestSuppression:
    def test_trailing_allow_suppresses(self):
        report = run(
            PRELUDE,
            """
            seen = {}
            rdd.foreach(lambda x: seen.update({x: 1}))  # repro: allow(CL001)
            """
        )
        assert codes(report) == []

    def test_allow_of_other_code_does_not_suppress(self):
        report = run(
            PRELUDE,
            """
            seen = {}
            rdd.foreach(lambda x: seen.update({x: 1}))  # repro: allow(CL002)
            """
        )
        assert "CL001" in codes(report)


class TestReportShape:
    def test_deterministic_render(self):
        source = textwrap.dedent(PRELUDE) + textwrap.dedent(
            """
            seen = {}
            def mark(x):
                seen[x] = 1
            rdd.foreach(mark)
            """
        )
        first = check_source("mod.py", source)
        second = check_source("mod.py", source)
        assert first.to_json() == second.to_json()
        assert first.render() == second.render()

    def test_syntax_error_skipped_silently(self):
        # Unparseable files are DT000 territory; the closure gate must
        # not double-report them.
        report = check_source("mod.py", "def broken(:\n")
        assert report.diagnostics == []

    def test_check_paths_over_repo_source_tree_is_clean(self):
        import os

        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
            "src",
            "repro",
        )
        report = check_paths([src])
        assert report.exit_code() == 0
        assert codes(report) == []

    def test_main_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        assert main([str(clean)]) == 0
        bad = tmp_path / "bad.py"
        bad.write_text(
            textwrap.dedent(
                """
                from repro.spark.context import SparkContext
                sc = SparkContext(4)
                rdd = sc.parallelize(range(4))
                seen = {}
                rdd.foreach(lambda x: seen.update({x: 1}))
                """
            ),
            encoding="utf-8",
        )
        assert main([str(bad)]) == 5
        capsys.readouterr()
