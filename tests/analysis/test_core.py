"""Framework: rule registration, report determinism, exit codes."""

import json

import pytest

from repro.analysis import (
    AnalysisReport,
    Diagnostic,
    EXIT_CLEAN,
    EXIT_ERRORS,
    EXIT_WARNINGS,
    RuleSet,
    merge_reports,
)


def diag(code="XX001", severity="error", message="boom", **kwargs):
    return Diagnostic(code=code, severity=severity, message=message, **kwargs)


class TestRuleSet:
    def test_rules_run_in_registration_order(self):
        rules = RuleSet("t")
        calls = []

        @rules.rule("T001", "error", "first")
        def first(context, found):
            calls.append("first")
            return [found("a")]

        @rules.rule("T002", "warning", "second")
        def second(context, found):
            calls.append("second")
            return [found("b")]

        out = rules.run(object())
        assert calls == ["first", "second"]
        assert [d.code for d in out] == ["T001", "T002"]
        assert [d.severity for d in out] == ["error", "warning"]

    def test_duplicate_code_rejected(self):
        rules = RuleSet("t")

        @rules.rule("T001", "error", "first")
        def first(context, found):
            return []

        with pytest.raises(ValueError):

            @rules.rule("T001", "warning", "again")
            def again(context, found):
                return []

    def test_bad_severity_rejected(self):
        rules = RuleSet("t")
        with pytest.raises(ValueError):

            @rules.rule("T001", "fatal", "nope")
            def nope(context, found):
                return []

    def test_catalog_lists_rules(self):
        rules = RuleSet("t")

        @rules.rule("T001", "error", "a title")
        def a(context, found):
            return []

        assert rules.catalog() == [
            {"code": "T001", "severity": "error", "title": "a title"}
        ]


class TestExitCodes:
    def test_clean(self):
        assert AnalysisReport("t").exit_code() == EXIT_CLEAN == 0

    def test_warnings_only(self):
        report = AnalysisReport("t", diagnostics=[diag(severity="warning")])
        assert report.exit_code() == EXIT_WARNINGS == 4

    def test_errors_dominate_warnings(self):
        report = AnalysisReport(
            "t",
            diagnostics=[diag(severity="warning"), diag(severity="error")],
        )
        assert report.exit_code() == EXIT_ERRORS == 5


class TestReportDeterminism:
    """Satellite: reports are byte-identical however findings arrive."""

    FINDINGS = [
        diag("B002", "warning", "later", location="b.rq", line=3),
        diag("A001", "error", "earlier", location="a.rq", line=9),
        diag("A001", "error", "same file earlier line", location="a.rq"),
        diag("C003", "error", "third file", location="c.rq", column=2),
    ]

    def permutations(self):
        import itertools

        return itertools.permutations(self.FINDINGS)

    def test_json_identical_across_insertion_orders(self):
        renderings = {
            AnalysisReport("t", diagnostics=list(order)).to_json()
            for order in self.permutations()
        }
        assert len(renderings) == 1

    def test_text_identical_across_insertion_orders(self):
        renderings = {
            AnalysisReport("t", diagnostics=list(order)).render()
            for order in self.permutations()
        }
        assert len(renderings) == 1

    def test_json_identical_across_repeated_runs(self):
        report = AnalysisReport("t", diagnostics=list(self.FINDINGS))
        assert report.to_json() == report.to_json()

    def test_json_keys_sorted_at_every_level(self):
        body = AnalysisReport(
            "t", diagnostics=list(self.FINDINGS)
        ).to_json()

        def assert_sorted(node):
            if isinstance(node, dict):
                assert list(node) == sorted(node)
                for value in node.values():
                    assert_sorted(value)
            elif isinstance(node, list):
                for value in node:
                    assert_sorted(value)

        assert_sorted(json.loads(body))

    def test_summary_counts_match_diagnostics(self):
        payload = AnalysisReport(
            "t", diagnostics=list(self.FINDINGS)
        ).to_payload()
        assert payload["summary"] == {"errors": 3, "warnings": 1, "total": 4}

    def test_render_line_format(self):
        line = diag(
            "A001", "error", "msg", location="f.rq", line=4, column=7
        ).render()
        assert line == "f.rq:4:7: error A001: msg"

    def test_render_omits_zero_position(self):
        assert diag(location="f.rq").render() == "f.rq: error XX001: boom"


class TestMerge:
    def test_merge_combines_and_sorts(self):
        first = AnalysisReport("t", subject="a", diagnostics=[diag("Z009")])
        second = AnalysisReport("t", subject="b", diagnostics=[diag("A001")])
        merged = merge_reports("t", [first, second])
        assert [d.code for d in merged.sorted_diagnostics()] == [
            "A001",
            "Z009",
        ]
        assert merged.exit_code() == EXIT_ERRORS
