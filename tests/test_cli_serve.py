"""CLI tests for the ``serve`` and ``loadtest`` subcommands."""

import json

import pytest

from repro.cli import main
from repro.rdf.ntriples import save_ntriples_file


@pytest.fixture
def data_file(tmp_path, lubm_graph):
    path = tmp_path / "data.nt"
    save_ntriples_file(str(path), lubm_graph)
    return str(path)


MEMBER_QUERY = (
    "PREFIX lubm: <http://repro.example.org/lubm#> "
    "SELECT DISTINCT ?d WHERE { ?s lubm:memberOf ?d }"
)


def write_requests(tmp_path, lines):
    path = tmp_path / "requests.jsonl"
    path.write_text("\n".join(json.dumps(line) for line in lines) + "\n")
    return str(path)


class TestServe:
    def test_end_to_end_request_loop(self, data_file, tmp_path, capsys):
        requests = write_requests(
            tmp_path,
            [
                {"op": "query", "id": "q1", "query": MEMBER_QUERY},
                {"op": "query", "id": "q2", "query": MEMBER_QUERY},
                {"op": "stats", "id": "s1"},
            ],
        )
        assert main(["serve", data_file, "--input", requests]) == 0
        out_lines = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert len(out_lines) == 3
        q1, q2, stats = out_lines
        assert q1["status"] == "ok" and q1["cache"] == "cold"
        assert q2["status"] == "ok" and q2["cache"] == "result"
        assert q2["result"] == q1["result"]  # byte-identical via the cache
        assert stats["counters"]["result_cache_hits"] == 1

    def test_commit_bumps_version_and_changes_answers(
        self, data_file, tmp_path, capsys
    ):
        addition = (
            "<http://repro.example.org/lubm#Fresh> "
            "<http://repro.example.org/lubm#memberOf> "
            "<http://repro.example.org/lubm#DeptFresh> ."
        )
        requests = write_requests(
            tmp_path,
            [
                {"op": "query", "id": "before", "query": MEMBER_QUERY},
                {"op": "commit", "id": "c", "additions": [addition]},
                {"op": "query", "id": "after", "query": MEMBER_QUERY},
            ],
        )
        assert main(["serve", data_file, "--input", requests]) == 0
        before, commit, after = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert commit["version"] == 1 and commit["invalidated"] >= 1
        assert after["version"] == 1
        # Version bump invalidated the result entry; the text-keyed plan
        # cache legitimately survives the commit.
        assert after["cache"] != "result"
        assert "DeptFresh" in after["result"]
        assert after["result"] != before["result"]

    def test_commit_reports_per_commit_invalidations(
        self, data_file, tmp_path, capsys
    ):
        """Regression: 'invalidated' is this commit's drop count, not the
        cumulative counter."""

        def addition(i):
            return (
                "<http://repro.example.org/lubm#S%d> "
                "<http://repro.example.org/lubm#memberOf> "
                "<http://repro.example.org/lubm#D%d> ." % (i, i)
            )

        requests = write_requests(
            tmp_path,
            [
                {"op": "query", "id": "q1", "query": MEMBER_QUERY},
                {"op": "commit", "id": "c1", "additions": [addition(1)]},
                {"op": "query", "id": "q2", "query": MEMBER_QUERY},
                {"op": "commit", "id": "c2", "additions": [addition(2)]},
            ],
        )
        assert main(["serve", data_file, "--input", requests]) == 0
        _q1, c1, _q2, c2 = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert c1["invalidated"] == 1
        assert c2["invalidated"] == 1  # the second commit dropped one entry

    def test_deadline_and_malformed_lines_keep_loop_alive(
        self, data_file, tmp_path, capsys
    ):
        # --no-lint: QL005 would reject the doomed scan at admission,
        # and this test exercises the *runtime* deadline abort path.
        requests_path = tmp_path / "requests.jsonl"
        requests_path.write_text(
            json.dumps(
                {
                    "op": "query",
                    "id": "doomed",
                    "query": "SELECT ?s ?p ?o WHERE { ?s ?p ?o }",
                    "deadline": 5,
                }
            )
            + "\nthis is not json\n"
            + json.dumps({"op": "query", "id": "ok", "query": MEMBER_QUERY})
            + "\n"
        )
        assert (
            main(
                ["serve", data_file, "--no-lint", "--input", str(requests_path)]
            )
            == 0
        )
        doomed, junk, ok = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert doomed["status"] == "deadline"
        assert "cost unit" in doomed["error"]
        assert junk["status"] == "error"
        assert ok["status"] == "ok"

    def test_bad_deadline_type_is_an_error_response(
        self, data_file, tmp_path, capsys
    ):
        requests = write_requests(
            tmp_path,
            [{"op": "query", "id": "x", "query": MEMBER_QUERY, "deadline": -3}],
        )
        assert main(["serve", data_file, "--input", requests]) == 0
        (response,) = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert response["status"] == "error"
        assert "deadline" in response["error"]

    # -- error paths (exit codes asserted) ------------------------------

    def test_unknown_engine_exits_2(self, data_file, capsys):
        code = main(["serve", data_file, "--engine", "NoSuchEngine"])
        assert code == 2
        assert "unknown engine" in capsys.readouterr().err

    def test_unreadable_graph_exits_2(self, tmp_path, capsys):
        code = main(["serve", str(tmp_path / "missing.nt")])
        assert code == 2
        assert "cannot read RDF file" in capsys.readouterr().err

    def test_bad_faults_spec_exits_2(self, data_file, capsys):
        code = main(["serve", data_file, "--faults", "explode:p=1"])
        assert code == 2
        assert "invalid --faults spec" in capsys.readouterr().err

    def test_nonpositive_deadline_exits_2(self, data_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", data_file, "--deadline", "0"])
        assert excinfo.value.code == 2
        assert "positive" in capsys.readouterr().err

    def test_unreadable_input_file_exits_2(self, data_file, tmp_path, capsys):
        code = main(
            ["serve", data_file, "--input", str(tmp_path / "missing.jsonl")]
        )
        assert code == 2
        assert "cannot read request file" in capsys.readouterr().err


class TestLoadtest:
    def test_smoke_run(self, data_file, capsys):
        assert main(["loadtest", data_file, "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "throughput (/kilounit)" in out
        assert "result-cache hit rate" in out

    def test_report_is_byte_reproducible(self, data_file, tmp_path, capsys):
        """Acceptance: same seed, byte-identical BENCH_server.json."""
        first = tmp_path / "r1.json"
        second = tmp_path / "r2.json"
        args = ["loadtest", data_file, "--smoke", "--seed", "11"]
        assert main(args + ["--report", str(first)]) == 0
        assert main(args + ["--report", str(second)]) == 0
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()
        payload = json.loads(first.read_text())
        assert payload["totals"]["completed"] > 0
        assert payload["config"]["seed"] == 11

    def test_deadline_aborts_coexist_with_completions(
        self, data_file, tmp_path, capsys
    ):
        report = tmp_path / "r.json"
        assert (
            main(
                [
                    "loadtest", data_file, "--no-lint",
                    "--clients", "4", "--requests", "3", "--queries", "4",
                    "--deadline", "30", "--think", "10",
                    "--report", str(report),
                ]
            )
            == 0
        )
        capsys.readouterr()
        payload = json.loads(report.read_text())
        assert payload["totals"]["deadline_aborts"] > 0
        assert payload["totals"]["ok"] > 0

    # -- error paths (exit codes asserted) ------------------------------

    def test_unknown_engine_exits_2(self, data_file, capsys):
        code = main(
            ["loadtest", data_file, "--smoke", "--engine", "NoSuchEngine"]
        )
        assert code == 2
        assert "unknown engine" in capsys.readouterr().err

    def test_unreadable_graph_exits_2(self, tmp_path, capsys):
        code = main(["loadtest", str(tmp_path / "missing.nt"), "--smoke"])
        assert code == 2
        assert "cannot read RDF file" in capsys.readouterr().err

    def test_bad_faults_spec_exits_2(self, data_file, capsys):
        code = main(
            ["loadtest", data_file, "--smoke", "--faults", "explode:p=1"]
        )
        assert code == 2
        assert "invalid --faults spec" in capsys.readouterr().err
