"""Edge-case coverage for small public surfaces across the library."""

import pytest

from repro.rdf.terms import Literal, URI
from repro.spark.context import SparkContext
from repro.spark.graphx import Edge, EdgeTriplet
from repro.spark.row import Row
from repro.spark.sql.ast import Distinct, Scan, Union
from repro.spark.sql.lexer import TokenStream, tokenize
from repro.sparql.results import Solution, SolutionSet


class TestRow:
    def test_access_by_index_name_attr(self):
        row = Row(["a", "b"], (1, 2))
        assert row[0] == 1
        assert row["b"] == 2
        assert row.a == 1

    def test_unknown_accessors_raise(self):
        row = Row(["a"], (1,))
        with pytest.raises(KeyError):
            row["z"]
        with pytest.raises(AttributeError):
            row.z
        with pytest.raises(TypeError):
            row[1.5]

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            Row(["a"], (1, 2))

    def test_immutable(self):
        row = Row(["a"], (1,))
        with pytest.raises(AttributeError):
            row.a = 5

    def test_protocols(self):
        row = Row(["a", "b"], (1, 2))
        assert list(row) == [1, 2]
        assert len(row) == 2
        assert "a" in row
        assert row.get("missing", 9) == 9
        assert row.asDict() == {"a": 1, "b": 2}
        assert Row.fromDict({"a": 1}) == Row(["a"], (1,))
        assert hash(row) == hash(Row(["a", "b"], (1, 2)))


class TestGraphEdgeTypes:
    def test_triplet_to_edge(self):
        triplet = EdgeTriplet(1, "a1", 2, "a2", "p")
        assert triplet.edge() == Edge(1, 2, "p")

    def test_edge_equality(self):
        assert Edge(1, 2, "x") == Edge(1, 2, "x")
        assert Edge(1, 2, "x") != Edge(2, 1, "x")


class TestSqlAstPretty:
    def test_union_and_distinct_describe(self):
        plan = Distinct(Union(Scan("a"), Scan("b"), dedup=True))
        text = plan.pretty()
        assert "Distinct" in text
        assert "Union(DISTINCT)" in text
        assert text.count("Scan") == 2

    def test_scan_describe_with_alias_and_columns(self):
        scan = Scan("t", alias="x", required_columns=["a", "b"])
        assert "t AS x" in scan._describe()
        assert "[a, b]" in scan._describe()


class TestTokenStream:
    def test_peek_does_not_advance(self):
        stream = TokenStream(tokenize("SELECT a"))
        assert stream.peek().value == "SELECT"
        assert stream.peek().value == "SELECT"
        stream.next()
        assert stream.peek().value == "a"

    def test_eof_is_sticky(self):
        stream = TokenStream(tokenize(""))
        assert stream.next().kind == "eof"
        assert stream.next().kind == "eof"

    def test_peek_ahead(self):
        stream = TokenStream(tokenize("SELECT a FROM t"))
        assert stream.peek(2).value == "FROM"


class TestSolutionSetProtocols:
    def test_bool_and_iter(self):
        empty = SolutionSet(["x"])
        assert not empty
        filled = SolutionSet(["x"], [Solution({"x": Literal(1)})])
        assert filled
        assert [s["x"] for s in filled] == [Literal(1)]

    def test_add(self):
        out = SolutionSet(["x"])
        out.add(Solution({"x": Literal(1)}))
        assert len(out) == 1


class TestContextGuards:
    def test_invalid_parallelism(self):
        with pytest.raises(ValueError):
            SparkContext(0)
        with pytest.raises(ValueError):
            SparkContext(2, num_executors=0)

    def test_text_file(self, tmp_path):
        path = tmp_path / "lines.txt"
        path.write_text("alpha\nbeta\n")
        sc = SparkContext(2)
        assert sc.textFile(str(path)).collect() == ["alpha", "beta"]

    def test_from_partitions_empty(self):
        sc = SparkContext(2)
        rdd = sc.fromPartitions([])
        assert rdd.collect() == []

    def test_repr(self):
        assert "parallelism=3" in repr(SparkContext(3))


class TestTermCorners:
    def test_literal_float_roundtrip(self):
        assert Literal(2.5).to_python() == 2.5

    def test_uri_sortable_against_literal(self):
        assert URI("http://z") < Literal("a")

    def test_triple_repr_stable(self):
        from repro.rdf.triple import Triple

        triple = Triple(URI("http://x/s"), URI("http://x/p"), Literal(1))
        assert "http://x/s" in repr(triple)
