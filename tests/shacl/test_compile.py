"""Compiled-query corpus: shape -> SPARQL text is pinned byte-for-byte."""

import pytest

from repro.rdf.terms import Literal, URI
from repro.shacl.compile import (
    class_probe,
    compile_shape,
    compile_shape_set,
    harvest_queries,
)
from repro.shacl.shapes import ShapeSet, load_shapes_file
from repro.sparql.ast import AskQuery, ConstructQuery, SelectQuery
from repro.sparql.parser import parse_sparql

LUBM = "http://repro.example.org/lubm#"
RDF_TYPE = "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>"


@pytest.fixture()
def clean_shapes():
    return load_shapes_file("examples/shapes/lubm_clean.json")


class TestCompiledText:
    def test_target_query_text_is_pinned(self, clean_shapes):
        compiled = compile_shape(clean_shapes.shapes[0])
        assert compiled[0].id == "shacl/GraduateStudentShape/target"
        assert compiled[0].kind == "target"
        assert compiled[0].text == (
            "SELECT ?focus WHERE { ?focus %s <%sGraduateStudent> }"
            % (RDF_TYPE, LUBM)
        )

    def test_values_query_text_is_pinned(self, clean_shapes):
        compiled = compile_shape(clean_shapes.shapes[0])
        assert compiled[1].id == "shacl/GraduateStudentShape/p0/values"
        assert compiled[1].text == (
            "SELECT ?focus ?value WHERE { ?focus %s <%sGraduateStudent>"
            " . ?focus <%sadvisor> ?value }" % (RDF_TYPE, LUBM, LUBM)
        )

    def test_target_subjects_of_pattern(self, clean_shapes):
        teacher = clean_shapes.shapes[1]
        assert teacher.target_subjects_of is not None
        compiled = compile_shape(teacher)
        assert compiled[0].text == (
            "SELECT ?focus WHERE { ?focus <%steacherOf> ?__target }" % LUBM
        )

    def test_set_order_and_ids(self, clean_shapes):
        ids = [c.id for c in compile_shape_set(clean_shapes)]
        assert ids == [
            "shacl/GraduateStudentShape/target",
            "shacl/GraduateStudentShape/p0/values",
            "shacl/GraduateStudentShape/p1/values",
            "shacl/TeacherShape/target",
            "shacl/TeacherShape/p0/values",
            "shacl/TeacherShape/p1/values",
            "shacl/DepartmentShape/target",
            "shacl/DepartmentShape/p0/values",
        ]

    def test_every_compiled_query_parses(self, clean_shapes):
        for compiled in compile_shape_set(clean_shapes):
            assert isinstance(parse_sparql(compiled.text), SelectQuery)

    def test_class_probe_text_and_id(self, clean_shapes):
        teacher = clean_shapes.shapes[1]
        value = URI(LUBM + "Department3")
        probe = class_probe(teacher, 0, value, LUBM + "Department")
        assert probe.id == (
            "shacl/TeacherShape/p0/class?value=<%sDepartment3>" % LUBM
        )
        assert probe.text == (
            "ASK { <%sDepartment3> %s <%sDepartment> }"
            % (LUBM, RDF_TYPE, LUBM)
        )
        assert isinstance(parse_sparql(probe.text), AskQuery)

    def test_class_probe_rejects_literals(self, clean_shapes):
        with pytest.raises(ValueError):
            class_probe(
                clean_shapes.shapes[1], 0, Literal("x"), LUBM + "Department"
            )


class TestHarvestQueries:
    def test_families_cover_targets_values_and_classes(self, clean_shapes):
        harvest = harvest_queries(clean_shapes)
        ids = [c.id for c in harvest]
        # One target per shape, one per property, one extra per
        # sh:class constraint (TeacherShape.p0 and DepartmentShape.p0).
        assert ids == [
            "shacl/GraduateStudentShape/harvest/target",
            "shacl/GraduateStudentShape/harvest/p0",
            "shacl/GraduateStudentShape/harvest/p1",
            "shacl/TeacherShape/harvest/target",
            "shacl/TeacherShape/harvest/p0",
            "shacl/TeacherShape/harvest/p0/class",
            "shacl/TeacherShape/harvest/p1",
            "shacl/DepartmentShape/harvest/target",
            "shacl/DepartmentShape/harvest/p0",
            "shacl/DepartmentShape/harvest/p0/class",
        ]
        for compiled in harvest:
            assert compiled.kind == "harvest"
            plan = parse_sparql(compiled.text)
            assert isinstance(plan, ConstructQuery)
            # The harvester owns paging; compiled text must be unpaged.
            assert plan.limit is None and not plan.offset

    def test_class_harvest_text_is_pinned(self, clean_shapes):
        harvest = {c.id: c.text for c in harvest_queries(clean_shapes)}
        assert harvest["shacl/TeacherShape/harvest/p0/class"] == (
            "CONSTRUCT { ?value %(t)s <%(l)sDepartment> } WHERE "
            "{ ?focus <%(l)steacherOf> ?__target . "
            "?focus <%(l)sworksFor> ?value . "
            "?value %(t)s <%(l)sDepartment> }"
            % {"t": RDF_TYPE, "l": LUBM}
        )

    def test_pure_function_of_the_shape_set(self, clean_shapes):
        again = ShapeSet.from_json(clean_shapes.to_json())
        assert [
            (c.id, c.text) for c in harvest_queries(clean_shapes)
        ] == [(c.id, c.text) for c in harvest_queries(again)]
