"""Shape language: parsing, round-trips, and loud failure on typos."""

import pytest

from repro.rdf.terms import Literal, URI
from repro.shacl.shapes import (
    NodeShape,
    PropertyShape,
    ShaclError,
    ShapeSet,
    default_shapes_for,
    load_shapes_file,
    term_from_payload,
    term_to_payload,
)

LUBM = "http://repro.example.org/lubm#"


def simple_set() -> ShapeSet:
    return ShapeSet.from_payload(
        {
            "shapes": [
                {
                    "name": "S",
                    "targetClass": LUBM + "Department",
                    "properties": [
                        {
                            "path": LUBM + "name",
                            "minCount": 1,
                            "maxCount": 1,
                            "datatype": (
                                "http://www.w3.org/2001/XMLSchema#string"
                            ),
                        },
                        {
                            "path": LUBM + "subOrganizationOf",
                            "nodeKind": "IRI",
                            "class": LUBM + "University",
                        },
                    ],
                }
            ]
        }
    )


class TestTerms:
    def test_iri_round_trip(self):
        term = term_from_payload({"iri": LUBM + "x"}, "t")
        assert term == URI(LUBM + "x")
        assert term_to_payload(term) == {"iri": LUBM + "x"}

    def test_literal_round_trip(self):
        payload = {"literal": "hi", "language": "en"}
        term = term_from_payload(payload, "t")
        assert isinstance(term, Literal) and term.language == "en"
        assert term_to_payload(term) == payload

    def test_typed_literal_round_trip(self):
        payload = {
            "literal": "3",
            "datatype": "http://www.w3.org/2001/XMLSchema#integer",
        }
        assert term_to_payload(term_from_payload(payload, "t")) == payload

    @pytest.mark.parametrize(
        "bad",
        [
            "not-an-object",
            {"uri": "typo"},
            {"iri": LUBM + "x", "datatype": "d"},
            {"datatype": "d"},
            {"literal": ""},
            {"literal": "x", "language": "en", "datatype": "d"},
        ],
    )
    def test_bad_terms_fail_loudly(self, bad):
        with pytest.raises(ShaclError):
            term_from_payload(bad, "t")


class TestParsing:
    def test_round_trip_is_byte_stable(self):
        shapes = simple_set()
        text = shapes.to_json()
        again = ShapeSet.from_json(text)
        assert again == shapes
        assert again.to_json() == text

    def test_fixture_files_round_trip(self):
        for name in ("lubm_clean", "lubm_violating"):
            shapes = load_shapes_file("examples/shapes/%s.json" % name)
            assert ShapeSet.from_json(shapes.to_json()) == shapes

    def test_defaults(self):
        prop = PropertyShape.from_payload({"path": LUBM + "p"}, "t")
        assert prop.min_count == 0
        assert prop.max_count is None
        assert prop.to_payload() == {"path": LUBM + "p"}

    @pytest.mark.parametrize(
        "bad",
        [
            {"shapes": []},
            {"shapes": "nope"},
            {"shapez": []},
            {"shapes": [{"name": "S"}]},  # no target
            {
                "shapes": [
                    {
                        "name": "S",
                        "targetClass": "c",
                        "targetSubjectsOf": "p",
                    }
                ]
            },  # both targets
            {"shapes": [{"targetClass": "c"}]},  # no name
            {"shapes": [{"name": "bad name!", "targetClass": "c"}]},
            {
                "shapes": [
                    {"name": "A", "targetClass": "c"},
                    {"name": "A", "targetClass": "c"},
                ]
            },  # duplicate names
            {
                "shapes": [
                    {
                        "name": "S",
                        "targetClass": "c",
                        "properties": [{"path": "p", "minCnt": 1}],
                    }
                ]
            },  # typoed constraint
            {
                "shapes": [
                    {
                        "name": "S",
                        "targetClass": "c",
                        "properties": [
                            {"path": "p", "minCount": 2, "maxCount": 1}
                        ],
                    }
                ]
            },
            {
                "shapes": [
                    {
                        "name": "S",
                        "targetClass": "c",
                        "properties": [{"path": "p", "minCount": True}],
                    }
                ]
            },  # bool is not a count
            {
                "shapes": [
                    {
                        "name": "S",
                        "targetClass": "c",
                        "properties": [{"path": "p", "nodeKind": "Iri"}],
                    }
                ]
            },
            {
                "shapes": [
                    {
                        "name": "S",
                        "targetClass": "c",
                        "properties": [{"path": "p", "in": []}],
                    }
                ]
            },
        ],
    )
    def test_bad_shape_sets_fail_loudly(self, bad):
        with pytest.raises(ShaclError):
            ShapeSet.from_payload(bad)

    def test_bad_json_text(self):
        with pytest.raises(ShaclError):
            ShapeSet.from_json("{not json")

    def test_missing_file(self, tmp_path):
        with pytest.raises(ShaclError):
            load_shapes_file(str(tmp_path / "nope.json"))

    def test_direct_construction_validates_too(self):
        with pytest.raises(ShaclError):
            NodeShape(name="S")  # no target
        with pytest.raises(ShaclError):
            ShapeSet(shapes=())


class TestDefaultShapes:
    def test_deterministic_and_lubm_grounded(self, lubm_graph):
        first = default_shapes_for(lubm_graph)
        second = default_shapes_for(lubm_graph)
        assert first == second
        assert first.to_json() == second.to_json()
        assert [s.name for s in first] == ["Shape0", "Shape1", "Shape2"]
        for shape in first:
            assert shape.target_class is not None
            assert shape.properties
            for prop in shape.properties:
                assert prop.min_count == 1

    def test_typeless_graph_is_an_error(self):
        from repro.rdf.graph import RDFGraph

        with pytest.raises(ShaclError):
            default_shapes_for(RDFGraph())
