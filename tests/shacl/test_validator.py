"""The validator: engine-independent report bytes, billing, caching.

The acceptance property lives here: validating the fixture shape sets
over the seeded LUBM graph produces **byte-identical** reports through
every executor -- bare engines from the survey, the routed service, and
the reference local evaluator -- and those bytes are pinned by hash so a
drift in any layer (parser, engine, canonical wire form, report
rendering) fails loudly.
"""

import hashlib

import pytest

from repro.runtime import build_engine
from repro.server.service import QueryService
from repro.shacl import (
    EngineExecutor,
    LocalGraphExecutor,
    ServiceExecutor,
    ShaclValidator,
    ValidationExecutionError,
    compile_shape_set,
    load_shapes_file,
)
from repro.spark.context import SparkContext

#: Pinned SHA-256 of ValidationReport.to_json() for the fixture corpus
#: over LubmGenerator(num_universities=1, seed=42).  A legitimate
#: semantic change must update these alongside docs/SHACL.md.
CLEAN_SHA = "d989774fb474177c2d38e04449c887ac08ac4837a1e1b859d755dcdc6dd37c5c"
VIOLATING_SHA = (
    "caa4415d08307f8541aabb53704c76c3bbb986dcff1e8bf5d49f2fe0249b877f"
)

ENGINES = ["Naive", "SPARQLGX", "S2RDF", "HAQWA"]


def sha(report) -> str:
    return hashlib.sha256(report.to_json().encode("utf-8")).hexdigest()


@pytest.fixture(scope="module")
def clean_shapes():
    return load_shapes_file("examples/shapes/lubm_clean.json")


@pytest.fixture(scope="module")
def violating_shapes():
    return load_shapes_file("examples/shapes/lubm_violating.json")


class TestFixtureCorpus:
    def test_clean_fixture_conforms(self, lubm_graph, clean_shapes):
        report = ShaclValidator(
            LocalGraphExecutor(lubm_graph)
        ).validate(clean_shapes)
        assert report.conforms
        assert report.focus_nodes == 27
        assert report.queries == 12
        assert not report.violations
        assert sha(report) == CLEAN_SHA

    def test_violating_fixture_report_is_pinned(
        self, lubm_graph, violating_shapes
    ):
        report = ShaclValidator(
            LocalGraphExecutor(lubm_graph)
        ).validate(violating_shapes)
        assert not report.conforms
        assert report.focus_nodes == 16
        assert len(report.violations) == 20
        by_constraint = {}
        for violation in report.violations:
            key = violation["constraint"]
            by_constraint[key] = by_constraint.get(key, 0) + 1
        assert by_constraint == {
            "class": 15,
            "in": 1,
            "maxCount": 3,
            "minCount": 1,
        }
        assert sha(report) == VIOLATING_SHA

    def test_violations_are_sorted(self, lubm_graph, violating_shapes):
        report = ShaclValidator(
            LocalGraphExecutor(lubm_graph)
        ).validate(violating_shapes)
        keys = [
            (v["shape"], v["focus"], v["path"], v["constraint"], v["value"])
            for v in report.violations
        ]
        assert keys == sorted(keys)


class TestByteIdentityAcrossExecutors:
    @pytest.mark.parametrize("fixture_sha", [CLEAN_SHA, VIOLATING_SHA])
    def test_engines_service_and_local_agree(
        self, lubm_graph, clean_shapes, violating_shapes, fixture_sha
    ):
        shapes = (
            clean_shapes if fixture_sha == CLEAN_SHA else violating_shapes
        )
        executors = [LocalGraphExecutor(lubm_graph)]
        executors.extend(
            EngineExecutor(build_engine(name, lubm_graph))
            for name in ENGINES
        )
        executors.append(ServiceExecutor(QueryService(lubm_graph.copy())))
        executors.append(
            ServiceExecutor(
                QueryService(
                    lubm_graph.copy(),
                    route=True,
                    route_engines=["SPARQLGX", "S2RDF"],
                )
            )
        )
        digests = {
            executor.label: sha(ShaclValidator(executor).validate(shapes))
            for executor in executors
        }
        assert set(digests.values()) == {fixture_sha}, digests

    def test_accounting_is_outside_the_report_body(
        self, lubm_graph, clean_shapes
    ):
        report = ShaclValidator(
            EngineExecutor(build_engine("SPARQLGX", lubm_graph))
        ).validate(clean_shapes)
        assert report.accounting["executor"] == "SPARQLGX"
        assert report.accounting["units"] > 0
        assert "accounting" not in report.to_payload()
        assert "units" not in report.to_payload()


class TestServiceBilling:
    def test_every_compiled_query_is_billed_individually(
        self, lubm_graph, violating_shapes
    ):
        service = QueryService(lubm_graph.copy())
        report = ShaclValidator(ServiceExecutor(service)).validate(
            violating_shapes
        )
        records = report.accounting["records"]
        assert len(records) == report.queries == 16
        static_ids = {c.id for c in compile_shape_set(violating_shapes)}
        seen_ids = {r["id"] for r in records}
        assert static_ids <= seen_ids  # plus data-dependent class probes
        assert all(r["status"] == "ok" for r in records)
        assert report.accounting["units"] == sum(
            r["units"] for r in records
        )
        # Each submission really crossed the service (billed requests).
        counters = service.stats()["counters"]
        assert counters.get("queries_admitted", 0) >= len(records)
        assert counters.get("service_units", 0) == report.accounting[
            "units"
        ]

    def test_second_pass_hits_the_plan_cache(
        self, lubm_graph, clean_shapes
    ):
        service = QueryService(lubm_graph.copy(), enable_result_cache=False)
        executor = ServiceExecutor(service)
        cold = ShaclValidator(executor).validate(clean_shapes)
        warm = ShaclValidator(executor).validate(clean_shapes)
        assert cold.accounting["plan_hits"] == 0
        assert warm.accounting["plan_hits"] == warm.accounting["executed"]
        assert warm.accounting["units"] <= cold.accounting["units"]
        assert sha(cold) == sha(warm) == CLEAN_SHA

    def test_second_pass_hits_the_result_cache_when_enabled(
        self, lubm_graph, clean_shapes
    ):
        executor = ServiceExecutor(QueryService(lubm_graph.copy()))
        ShaclValidator(executor).validate(clean_shapes)
        warm = ShaclValidator(executor).validate(clean_shapes)
        assert warm.accounting["result_hits"] == warm.accounting["executed"]
        assert sha(warm) == CLEAN_SHA

    def test_rejected_query_raises(self, lubm_graph, clean_shapes):
        # A 1-unit deadline aborts the very first compiled query.
        service = QueryService(lubm_graph.copy(), default_deadline=1)
        with pytest.raises(ValidationExecutionError):
            ShaclValidator(ServiceExecutor(service)).validate(clean_shapes)


class TestProbes:
    def test_class_probes_are_memoized_per_run(
        self, lubm_graph, violating_shapes
    ):
        report = ShaclValidator(
            LocalGraphExecutor(lubm_graph)
        ).validate(violating_shapes)
        probe_ids = [
            r["id"]
            for r in report.accounting["records"]
            if r["kind"] == "class"
        ]
        assert probe_ids  # sh:class constraints did generate probes
        assert len(probe_ids) == len(set(probe_ids))


class TestTracing:
    def test_validate_spans_carry_shape_attrs(
        self, lubm_graph, violating_shapes
    ):
        tracer = SparkContext(default_parallelism=2).tracer.enable()
        ShaclValidator(
            LocalGraphExecutor(lubm_graph), tracer=tracer
        ).validate(violating_shapes)
        tracer.disable()
        spans = [
            span
            for root in tracer.roots
            for span in root.walk()
            if span.kind == "validate"
        ]
        assert [span.name for span in spans] == [
            shape.name for shape in violating_shapes
        ]
        total = sum(span.attrs["violations"] for span in spans)
        assert total == 20
        assert all("focus_nodes" in span.attrs for span in spans)
