"""Tests for the evolving-data module (Section V future work)."""

import pytest

from repro.data.lubm import LUBM, LubmGenerator
from repro.evolution import (
    ArchivePolicy,
    Delta,
    UpdatableNaiveEngine,
    UpdatableSparqlgxEngine,
    VersionedGraph,
)
from repro.rdf.graph import RDFGraph
from repro.rdf.terms import Literal, URI
from repro.rdf.triple import Triple
from repro.spark.context import SparkContext
from repro.sparql.algebra import evaluate
from repro.sparql.parser import parse_sparql

EX = "http://x/"


def uri(name):
    return URI(EX + name)


def t(s, p, o):
    return Triple(uri(s), uri(p), uri(o))


@pytest.fixture
def base_graph():
    return RDFGraph([t("a", "p", "b"), t("b", "p", "c"), t("a", "q", "d")])


class TestVersionedGraphHistory:
    def test_initial_version_zero(self, base_graph):
        store = VersionedGraph(base_graph)
        assert store.head_version == 0
        assert store.snapshot(0) == base_graph

    def test_commit_applies_changes(self, base_graph):
        store = VersionedGraph(base_graph)
        version = store.commit(
            additions=[t("c", "p", "e")], deletions=[t("a", "q", "d")]
        )
        assert version == 1
        head = store.head()
        assert t("c", "p", "e") in head
        assert t("a", "q", "d") not in head

    def test_past_versions_recoverable(self, base_graph):
        store = VersionedGraph(base_graph)
        store.commit(additions=[t("x", "p", "y")])
        store.commit(deletions=[t("x", "p", "y")])
        assert t("x", "p", "y") in store.snapshot(1)
        assert t("x", "p", "y") not in store.snapshot(2)
        assert store.snapshot(0) == base_graph

    def test_noop_changes_filtered(self, base_graph):
        store = VersionedGraph(base_graph)
        store.commit(
            additions=[t("a", "p", "b")],  # already present
            deletions=[t("zz", "p", "zz")],  # absent
        )
        assert store.delta(1).size() == 0

    def test_bad_version_raises(self, base_graph):
        store = VersionedGraph(base_graph)
        with pytest.raises(KeyError):
            store.snapshot(5)
        with pytest.raises(KeyError):
            store.delta(0)

    def test_diff_between_versions(self, base_graph):
        store = VersionedGraph(base_graph)
        store.commit(additions=[t("x", "p", "y")])
        store.commit(additions=[t("x2", "p", "y2")], deletions=[t("a", "q", "d")])
        delta = store.diff(0, 2)
        assert set(delta.added) == {t("x", "p", "y"), t("x2", "p", "y2")}
        assert set(delta.removed) == {t("a", "q", "d")}
        inverse = store.diff(2, 0)
        assert inverse.added == delta.inverted().added

    def test_invalid_checkpoint_interval(self):
        with pytest.raises(ValueError):
            VersionedGraph(checkpoint_every=0)


class TestArchivePolicies:
    def _history(self, policy, commits=8):
        store = VersionedGraph(
            RDFGraph([t("seed", "p", "o")]),
            policy=policy,
            checkpoint_every=3,
        )
        for i in range(commits):
            store.commit(additions=[t("s%d" % i, "p", "o%d" % i)])
        return store

    def test_full_stores_most_replays_none(self):
        store = self._history(ArchivePolicy.FULL)
        store.snapshot(5)
        assert store.last_replay_cost == 0

    def test_delta_stores_least_replays_most(self):
        store = self._history(ArchivePolicy.DELTA)
        store.snapshot(5)
        assert store.last_replay_cost == 5  # replayed deltas 1..5

    def test_hybrid_bounded_replay(self):
        store = self._history(ArchivePolicy.HYBRID)
        store.snapshot(5)  # nearest checkpoint: version 3
        assert 0 < store.last_replay_cost <= 3

    def test_storage_ordering(self):
        full = self._history(ArchivePolicy.FULL).storage_triples()
        hybrid = self._history(ArchivePolicy.HYBRID).storage_triples()
        delta = self._history(ArchivePolicy.DELTA).storage_triples()
        assert delta < hybrid < full

    def test_all_policies_reconstruct_identically(self):
        stores = {
            policy: self._history(policy) for policy in ArchivePolicy
        }
        for version in range(9):
            snapshots = [
                stores[policy].snapshot(version) for policy in ArchivePolicy
            ]
            assert snapshots[0] == snapshots[1] == snapshots[2]


class TestVersionQueries:
    def test_query_each_version(self, base_graph):
        store = VersionedGraph(base_graph)
        store.commit(additions=[t("e", "q", "d")])
        query = "PREFIX ex: <http://x/>\nSELECT ?s WHERE { ?s ex:q ex:d }"
        assert len(store.query_version(query, 0)) == 1
        assert len(store.query_version(query, 1)) == 2

    def test_versions_where(self, base_graph):
        store = VersionedGraph(base_graph)
        store.commit(deletions=[t("a", "q", "d")])
        store.commit(additions=[t("a", "q", "d")])
        ask = "PREFIX ex: <http://x/>\nASK { ex:a ex:q ex:d }"
        assert store.versions_where(ask) == [0, 2]


class TestUpdatableEngines:
    QUERY = (
        "PREFIX lubm: <http://repro.example.org/lubm#>\n"
        "SELECT ?s ?d WHERE { ?s lubm:memberOf ?d }"
    )

    def _new_triples(self):
        member = LUBM.memberOf
        return [
            Triple(LUBM["NewStudent%d" % i], member, LUBM.Department0_0)
            for i in range(5)
        ]

    @pytest.mark.parametrize(
        "engine_class", [UpdatableSparqlgxEngine, UpdatableNaiveEngine]
    )
    def test_update_then_query_matches_reference(
        self, lubm_graph, engine_class
    ):
        engine = engine_class(SparkContext(4))
        engine.load(lubm_graph)
        additions = self._new_triples()
        removed = next(iter(lubm_graph.triples((None, LUBM.memberOf, None))))
        engine.apply_update(additions=additions, deletions=[removed])

        updated = lubm_graph.copy()
        updated.add_all(additions)
        updated.remove(removed)
        expected = evaluate(parse_sparql(self.QUERY), updated)
        assert engine.execute(self.QUERY).same_as(expected)

    def test_sparqlgx_touches_only_affected_stores(self, lubm_graph):
        engine = UpdatableSparqlgxEngine(SparkContext(4))
        engine.load(lubm_graph)
        engine.apply_update(additions=self._new_triples())
        member_of_size = engine.vp_sizes[LUBM.memberOf]
        assert engine.last_update_touched == member_of_size
        assert engine.last_update_touched < len(lubm_graph)

    def test_naive_rewrites_everything(self, lubm_graph):
        engine = UpdatableNaiveEngine(SparkContext(4))
        engine.load(lubm_graph)
        engine.apply_update(additions=self._new_triples())
        assert engine.last_update_touched >= len(lubm_graph)

    def test_new_predicate_creates_store(self, lubm_graph):
        engine = UpdatableSparqlgxEngine(SparkContext(4))
        engine.load(lubm_graph)
        brand_new = Triple(LUBM.X, URI(EX + "fresh"), LUBM.Y)
        engine.apply_update(additions=[brand_new])
        result = engine.execute(
            "PREFIX ex: <http://x/>\nSELECT ?s WHERE { ?s ex:fresh ?o }"
        )
        assert len(result) == 1

    def test_emptying_predicate_removes_store(self, lubm_graph):
        engine = UpdatableSparqlgxEngine(SparkContext(4))
        engine.load(lubm_graph)
        advisors = list(lubm_graph.triples((None, LUBM.advisor, None)))
        engine.apply_update(deletions=advisors)
        assert LUBM.advisor not in engine.vp_tables
        result = engine.execute(
            "PREFIX lubm: <http://repro.example.org/lubm#>\n"
            "SELECT ?s WHERE { ?s lubm:advisor ?p }"
        )
        assert len(result) == 0

    def test_stats_stay_consistent(self, lubm_graph):
        engine = UpdatableSparqlgxEngine(SparkContext(4))
        engine.load(lubm_graph)
        engine.apply_update(additions=self._new_triples())
        assert engine.stats["triples"] == len(lubm_graph) + 5
