"""Incremental maintenance: the delta walk must equal a rebuild, always.

Edge cases the benchmark's churn stream does not isolate: a commit that
empties a view, a commit touching only predicates with no materialized
views, and a hypothesis property driving random commit streams against
the from-scratch materialization oracle.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.lubm import LubmGenerator
from repro.evolution import VersionedGraph
from repro.rdf.graph import RDFGraph
from repro.rdf.terms import URI
from repro.rdf.triple import Triple
from repro.stats.catalog import StatsCatalog
from repro.views import ViewCatalog, materialize_view

EX = "http://x/"


def t(s, p, o):
    return Triple(URI(EX + s), URI(EX + p), URI(EX + o))


def assert_views_exact(catalog, graph):
    """Every maintained view byte-matches from-scratch materialization."""
    for view in catalog.sorted_views():
        oracle = materialize_view(graph, view.key, view.factor)
        assert view.rows() == oracle.rows(), view.name


@pytest.fixture
def store():
    graph = RDFGraph(
        [
            t("a", "p1", "x"),
            t("b", "p1", "y"),
            t("c", "p1", "z"),
            t("d", "p1", "w"),
            t("a", "p2", "k"),
            t("b", "p2", "k"),
        ]
    )
    return VersionedGraph(graph)


def build(store, threshold=0.5):
    head = store.head()
    return ViewCatalog.build(
        head, StatsCatalog.from_graph(head), threshold=threshold
    )


class TestEdgeCases:
    def test_commit_that_empties_a_view(self, store):
        catalog = build(store)
        key = ("ss", "<%sp1>" % EX, "<%sp2>" % EX)
        assert len(catalog.get(key)) == 2
        # Deleting every p2 triple starves the semi-join: no p1 subject
        # survives, so the view must drain to empty (step 3 evictions).
        version = store.commit(
            additions=[], deletions=[t("a", "p2", "k"), t("b", "p2", "k")]
        )
        report = catalog.apply_delta(
            store.delta(version), store.head(), version
        )
        assert len(catalog.get(key)) == 0
        assert catalog.get(key).factor == 0.0
        assert report.rows_removed == 2
        assert_views_exact(catalog, store.head())

    def test_commit_on_predicate_with_no_views(self, store):
        catalog = build(store)
        before_rows = [
            (view.key, view.rows()) for view in catalog.sorted_views()
        ]
        version = store.commit(
            additions=[t("q", "brand_new", "r")], deletions=[]
        )
        report = catalog.apply_delta(
            store.delta(version), store.head(), version
        )
        # Nothing materialized mentions the predicate: zero work, but the
        # catalog still advances to the new version (consistency key).
        assert report.views_affected == 0
        assert report.cost_units == 0
        assert catalog.version == version
        assert [
            (view.key, view.rows()) for view in catalog.sorted_views()
        ] == before_rows

    def test_value_reappears_pulls_rows_back_in(self, store):
        catalog = build(store)
        key = ("ss", "<%sp1>" % EX, "<%sp2>" % EX)
        v1 = store.commit(additions=[], deletions=[t("a", "p2", "k")])
        catalog.apply_delta(store.delta(v1), store.head(), v1)
        assert len(catalog.get(key)) == 1
        # Re-adding a p2 triple for "a" must pull the p1 row back (step 4).
        v2 = store.commit(additions=[t("a", "p2", "m")], deletions=[])
        catalog.apply_delta(store.delta(v2), store.head(), v2)
        assert len(catalog.get(key)) == 2
        assert_views_exact(catalog, store.head())

    def test_added_p1_triple_joins_iff_value_survives(self, store):
        catalog = build(store)
        key = ("ss", "<%sp1>" % EX, "<%sp2>" % EX)
        version = store.commit(
            additions=[t("a", "p1", "extra"), t("nope", "p1", "extra")],
            deletions=[],
        )
        catalog.apply_delta(store.delta(version), store.head(), version)
        rows = catalog.get(key).rows()
        assert (URI(EX + "a"), URI(EX + "extra")) in rows
        assert all(s != URI(EX + "nope") for s, _ in rows)
        assert_views_exact(catalog, store.head())

    def test_maintenance_cheaper_than_rebuild_accounting(self, store):
        catalog = build(store)
        version = store.commit(
            additions=[], deletions=[t("a", "p2", "k")]
        )
        report = catalog.apply_delta(
            store.delta(version), store.head(), version
        )
        assert report.views_affected > 0
        assert 0 < report.cost_units
        assert report.rebuild_cost_units > 0
        payload = report.to_payload()
        assert payload["cost_units"] == report.cost_units


class TestIncrementalEqualsRebuildProperty:
    """Hypothesis: any commit stream leaves every view oracle-exact."""

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_random_commit_stream(self, data):
        graph = LubmGenerator(num_universities=1, seed=7).generate()
        triples = sorted(graph)
        store = VersionedGraph(graph.copy())
        head = store.head()
        catalog = ViewCatalog.build(
            head, StatsCatalog.from_graph(head), threshold=0.6
        )
        commits = data.draw(st.integers(min_value=1, max_value=3))
        removed_pool = []
        for _ in range(commits):
            current = sorted(store.head())
            to_delete = data.draw(
                st.lists(
                    st.sampled_from(current),
                    max_size=12,
                    unique=True,
                )
            )
            to_add = data.draw(
                st.lists(
                    st.sampled_from(removed_pool or triples),
                    max_size=8,
                    unique=True,
                )
            )
            version = store.commit(additions=to_add, deletions=to_delete)
            removed_pool.extend(to_delete)
            report = catalog.apply_delta(
                store.delta(version), store.head(), version
            )
            assert catalog.version == version
            assert report.cost_units >= 0
            assert_views_exact(catalog, store.head())
