"""Differential property: views change *how*, never *what*.

For every engine and workload query, canonical result bytes with a
view-substituting optimizer equal the plain-optimizer and unoptimized
bytes; and after a commit, the incrementally maintained catalog plans
the same answers a freshly rebuilt one does.
"""

import pytest

from repro.data.lubm import LubmGenerator
from repro.evolution import VersionedGraph
from repro.optimizer import Optimizer
from repro.server import build_workload
from repro.server.protocol import canonical_json, canonical_result
from repro.spark.context import SparkContext
from repro.sparql.parser import parse_sparql
from repro.stats.catalog import StatsCatalog
from repro.systems import ALL_ENGINE_CLASSES, NaiveEngine, SparqlgxEngine
from repro.systems.base import UnsupportedQueryError
from repro.views import ViewCatalog

ENGINES = (NaiveEngine,) + tuple(ALL_ENGINE_CLASSES)


def _workload(graph):
    queries = dict(build_workload(graph, size=6, seed=42))
    queries["complex"] = LubmGenerator.query_complex()
    queries["filter"] = LubmGenerator.query_filter()
    return queries


def _canonical(engine, query):
    return canonical_json(canonical_result(engine.execute(query), query))


@pytest.mark.parametrize(
    "engine_cls", ENGINES, ids=lambda cls: cls.__name__
)
def test_view_results_byte_identical(engine_cls, lubm_graph):
    plain = Optimizer.for_graph(lubm_graph)
    viewed = Optimizer.for_graph(lubm_graph, views=True, view_threshold=0.5)
    assert viewed.view_catalog is not None and len(viewed.view_catalog) > 0
    engine = engine_cls(SparkContext(4))
    engine.load(lubm_graph)
    compared = 0
    for name, text in _workload(lubm_graph).items():
        query = parse_sparql(text)
        engine.set_optimizer(plain)
        try:
            baseline = _canonical(engine, query)
        except UnsupportedQueryError:
            engine.set_optimizer(viewed)
            with pytest.raises(UnsupportedQueryError):
                _canonical(engine, query)
            continue
        engine.set_optimizer(viewed)
        viewed_bytes = _canonical(engine, query)
        assert viewed_bytes == baseline, (
            "%s produced different bytes on %r with views"
            % (engine_cls.__name__, name)
        )
        compared += 1
    assert compared > 0


def test_workload_actually_substitutes_views(lubm_graph):
    """Guard against a vacuous differential: views must really be used."""
    viewed = Optimizer.for_graph(lubm_graph, views=True, view_threshold=0.5)
    engine = SparqlgxEngine(SparkContext(4))
    engine.load(lubm_graph)
    engine.set_optimizer(viewed)
    before = engine.ctx.metrics.snapshot()
    for _name, text in _workload(lubm_graph).items():
        try:
            engine.execute(text)
        except UnsupportedQueryError:
            continue
    delta = engine.ctx.metrics.snapshot() - before
    assert delta["view_scans"] > 0


def test_incremental_catalog_plans_like_rebuilt_catalog(lubm_graph):
    """After a commit, maintained views answer like freshly built ones."""
    store = VersionedGraph(lubm_graph.copy())
    head = store.head()
    catalog = ViewCatalog.build(
        head, StatsCatalog.from_graph(head), threshold=0.5
    )
    triples = sorted(head)
    version = store.commit(additions=[], deletions=triples[20:50])
    head = store.head()
    catalog.apply_delta(store.delta(version), head, version)

    maintained = Optimizer.for_graph(head, version=version)
    maintained.set_view_catalog(catalog)
    rebuilt = Optimizer.for_graph(
        head, version=version, views=True, view_threshold=0.5
    )

    for optimizer_label, optimizer in (
        ("maintained", maintained),
        ("rebuilt", rebuilt),
    ):
        engine = NaiveEngine(SparkContext(4))
        engine.load(head)
        engine.set_optimizer(optimizer)
        results = {
            name: _canonical(engine, parse_sparql(text))
            for name, text in _workload(head).items()
        }
        if optimizer_label == "maintained":
            baseline = results
        else:
            assert results == baseline
