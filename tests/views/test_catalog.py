"""Materialized-view catalog: selection, threshold semantics, determinism."""

import pytest

from repro.rdf.graph import RDFGraph
from repro.rdf.terms import URI
from repro.rdf.triple import Triple
from repro.stats.catalog import StatsCatalog
from repro.views import (
    DEFAULT_VIEW_THRESHOLD,
    ViewCatalog,
    materialize_view,
    view_name,
)

EX = "http://x/"


def t(s, p, o):
    return Triple(URI(EX + s), URI(EX + p), URI(EX + o))


@pytest.fixture
def small_graph():
    # p1's partition has 4 triples; 2 share a subject with p2 => the ss
    # pair (p1, p2) has selectivity factor exactly 0.5.
    return RDFGraph(
        [
            t("a", "p1", "x"),
            t("b", "p1", "y"),
            t("c", "p1", "z"),
            t("d", "p1", "w"),
            t("a", "p2", "k"),
            t("b", "p2", "k"),
        ]
    )


class TestSelection:
    def test_selected_keys_match_stats_threshold(self, lubm_graph):
        stats = StatsCatalog.from_graph(lubm_graph)
        catalog = ViewCatalog.build(lubm_graph, stats, threshold=0.5)
        expected = sorted(
            key
            for key, factor in stats.pair_selectivity.items()
            if factor <= 0.5
        )
        assert sorted(catalog.views) == expected
        assert len(catalog) == len(expected) > 0

    def test_threshold_boundary_is_inclusive(self, small_graph):
        stats = StatsCatalog.from_graph(small_graph)
        key = ("ss", "<%sp1>" % EX, "<%sp2>" % EX)
        assert stats.pair_selectivity[key] == 0.5
        at_boundary = ViewCatalog.build(small_graph, stats, threshold=0.5)
        assert at_boundary.get(key) is not None, (
            "factor == threshold must materialize (inclusive boundary)"
        )
        below = ViewCatalog.build(small_graph, stats, threshold=0.499999)
        assert below.get(key) is None

    def test_view_contents_match_oracle(self, lubm_graph):
        catalog = ViewCatalog.build(lubm_graph, threshold=0.5)
        for view in catalog.sorted_views()[:25]:
            oracle = materialize_view(lubm_graph, view.key, view.factor)
            assert view.rows() == oracle.rows()

    def test_factors_never_exceed_threshold(self, lubm_graph):
        catalog = ViewCatalog.build(lubm_graph, threshold=0.25)
        assert len(catalog) > 0
        for view in catalog.sorted_views():
            assert view.factor <= 0.25

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            ViewCatalog(threshold=1.5)
        with pytest.raises(ValueError):
            ViewCatalog(threshold=-0.1)

    def test_build_charges_cost_units(self, small_graph):
        catalog = ViewCatalog.build(small_graph, threshold=1.0)
        # Every selected view bills |A| + |B| triples.
        assert catalog.build_cost_units > 0


class TestDeterminism:
    def test_json_byte_identical_across_builds(self, lubm_graph):
        first = ViewCatalog.build(lubm_graph, threshold=0.5).to_json()
        second = ViewCatalog.build(lubm_graph, threshold=0.5).to_json()
        assert first == second

    def test_rows_sorted_by_n3(self, lubm_graph):
        catalog = ViewCatalog.build(lubm_graph, threshold=0.5)
        view = catalog.sorted_views()[0]
        rows = view.rows()
        keys = [(s.n3(), o.n3()) for s, o in rows]
        assert keys == sorted(keys)

    def test_summary_and_name(self, small_graph):
        catalog = ViewCatalog.build(small_graph, threshold=0.5)
        summary = catalog.summary()
        assert summary["views"] == len(catalog)
        assert summary["threshold"] == 0.5
        key = ("ss", "<%sp1>" % EX, "<%sp2>" % EX)
        assert view_name(key) == "extvp_ss(<%sp1>,<%sp2>)" % (EX, EX)
        assert catalog.get(key).name == view_name(key)

    def test_default_threshold_exported(self):
        assert 0.0 < DEFAULT_VIEW_THRESHOLD <= 1.0
