"""The CLI exit-code contract, one parametrized suite.

The full map (documented in README.md):

====  ==========================================================
code  meaning
====  ==========================================================
0     success; ``lint`` found nothing
2     unusable inputs (bad spec, unknown engine, unreadable file)
3     a fault schedule exhausted ``--max-task-attempts``
4     ``lint`` found warnings only
5     ``lint`` found errors
====  ==========================================================

(``assess`` and ``claims`` additionally exit 1 when a correctness or
claims check fails; that path needs a broken engine and is covered by
their own tests.)
"""

import json

import pytest

from repro.cli import main
from repro.rdf.ntriples import save_ntriples_file

CLEAN_QUERY = (
    "PREFIX lubm: <http://repro.example.org/lubm#>"
    " SELECT ?s ?d WHERE { ?s lubm:memberOf ?d }"
)
CARTESIAN_QUERY = (
    "PREFIX lubm: <http://repro.example.org/lubm#>"
    " SELECT ?s ?t WHERE { ?s lubm:memberOf ?d . ?t lubm:teacherOf ?c }"
)
STAR_QUERY = (
    "PREFIX lubm: <http://repro.example.org/lubm#>"
    " SELECT ?s ?n WHERE { ?s lubm:memberOf ?d . ?s lubm:name ?n }"
)
# Two patterns, default broadcast threshold raised over the dataset
# size: QL006 is the only warning-severity query rule.
WARNING_ARGS = ["--broadcast-threshold", "1000000"]


@pytest.fixture
def data_file(tmp_path, lubm_graph):
    path = tmp_path / "data.nt"
    save_ntriples_file(str(path), lubm_graph)
    return str(path)


def build_cases():
    """(id, argv builder, expected exit code) triples."""
    return [
        (
            "ok-query",
            lambda d, t: ["query", d, CLEAN_QUERY],
            0,
        ),
        (
            "ok-lint-clean",
            lambda d, t: ["lint", CLEAN_QUERY, "--data", d],
            0,
        ),
        (
            "ok-tables",
            lambda d, t: ["tables"],
            0,
        ),
        (
            "input-error-unknown-engine",
            lambda d, t: ["serve", d, "--engine", "NoSuchEngine"],
            2,
        ),
        (
            "input-error-missing-data",
            lambda d, t: ["loadtest", str(t / "missing.nt"), "--smoke"],
            2,
        ),
        (
            "input-error-bad-fault-spec",
            lambda d, t: [
                "query", d, CLEAN_QUERY, "--faults", "explode:p=1",
            ],
            2,
        ),
        (
            "input-error-missing-query-file",
            lambda d, t: ["lint", str(t / "missing.rq"), "--data", d],
            2,
        ),
        (
            "input-error-bad-stats-file",
            lambda d, t: ["lint", CLEAN_QUERY, "--stats", str(t / "no.json")],
            2,
        ),
        (
            "fault-exhaustion",
            lambda d, t: [
                "query", d, "SELECT ?s WHERE { ?s ?p ?o }",
                "--faults", "fail:p=1", "--max-task-attempts", "2",
            ],
            3,
        ),
        (
            "lint-warnings",
            lambda d, t: ["lint", STAR_QUERY, "--data", d] + WARNING_ARGS,
            4,
        ),
        (
            "lint-errors",
            lambda d, t: ["lint", CARTESIAN_QUERY, "--data", d],
            5,
        ),
        (
            "lint-errors-dominate-warnings",
            lambda d, t: ["lint", CARTESIAN_QUERY, "--data", d]
            + WARNING_ARGS,
            5,
        ),
        (
            "lint-parse-error",
            lambda d, t: ["lint", "SELECT ?s WHERE { ?s ?p"],
            5,
        ),
    ]


CASES = build_cases()


@pytest.mark.parametrize(
    "argv_builder,expected",
    [(builder, code) for _, builder, code in CASES],
    ids=[case_id for case_id, _, _ in CASES],
)
def test_exit_code(argv_builder, expected, data_file, tmp_path, capsys):
    code = main(argv_builder(data_file, tmp_path))
    capsys.readouterr()
    assert code == expected


class TestLintOutput:
    def test_json_flag_emits_deterministic_report(
        self, data_file, capsys
    ):
        assert main(["lint", CARTESIAN_QUERY, "--data", data_file, "--json"]) == 5
        first = capsys.readouterr().out
        assert main(["lint", CARTESIAN_QUERY, "--data", data_file, "--json"]) == 5
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["summary"]["errors"] >= 1
        assert payload["diagnostics"][0]["code"] == "QL001"

    def test_multiple_files_merge(self, data_file, tmp_path, capsys):
        good = tmp_path / "good.rq"
        good.write_text(CLEAN_QUERY)
        bad = tmp_path / "bad.rq"
        bad.write_text(CARTESIAN_QUERY)
        code = main(["lint", str(good), str(bad), "--data", data_file])
        out = capsys.readouterr().out
        assert code == 5
        assert "bad.rq" in out
        assert "QL001" in out

    def test_stats_file_equivalent_to_data(
        self, data_file, tmp_path, capsys
    ):
        stats = tmp_path / "catalog.json"
        assert main(["stats", data_file, "--json", str(stats)]) == 0
        capsys.readouterr()
        assert main(["lint", CARTESIAN_QUERY, "--stats", str(stats)]) == 5
        from_stats = capsys.readouterr().out
        assert main(["lint", CARTESIAN_QUERY, "--data", data_file]) == 5
        from_data = capsys.readouterr().out
        assert from_stats == from_data

    def test_data_and_stats_mutually_exclusive(
        self, data_file, tmp_path, capsys
    ):
        code = main(
            ["lint", CLEAN_QUERY, "--data", data_file, "--stats", "x.json"]
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err
