"""Fuzz the parsers: arbitrary text must parse or raise the designated
error type -- never crash with an unrelated exception.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rdf.ntriples import NTriplesParseError, parse_ntriples
from repro.rdf.turtle import TurtleParseError, parse_turtle
from repro.spark.sql.lexer import SqlSyntaxError
from repro.spark.sql.parser import parse_sql
from repro.sparql.parser import parse_sparql
from repro.sparql.tokenizer import SparqlParseError

# Hundreds of hypothesis examples per parser: correctness net for local
# runs, dead weight on every CI push.
pytestmark = pytest.mark.slow

# Text biased toward query-looking garbage: keywords, braces, names.
_fragments = st.sampled_from(
    [
        "SELECT", "WHERE", "{", "}", "?x", "?y", "ex:p", "<http://x/a>",
        "FILTER", "(", ")", "OPTIONAL", "UNION", ".", ";", ",", '"str"',
        "42", "3.14", "PREFIX", "ASK", "a", "&&", "||", "=", "<", "ORDER",
        "BY", "LIMIT", "*", "FROM", "JOIN", "ON", "GROUP", "t", "x",
    ]
)
_near_queries = st.lists(_fragments, max_size=12).map(" ".join)
_random_text = st.text(max_size=60)


@given(st.one_of(_near_queries, _random_text))
@settings(max_examples=150, deadline=None)
def test_sparql_parser_total(text):
    try:
        parse_sparql(text)
    except (SparqlParseError, KeyError):
        # KeyError: unbound prefix -- a declared, typed failure.
        pass


@given(st.one_of(_near_queries, _random_text))
@settings(max_examples=150, deadline=None)
def test_sql_parser_total(text):
    try:
        parse_sql(text)
    except SqlSyntaxError:
        pass


@given(st.one_of(_near_queries, _random_text))
@settings(max_examples=120, deadline=None)
def test_turtle_parser_total(text):
    try:
        parse_turtle(text)
    except (TurtleParseError, KeyError, ValueError):
        pass


@given(st.one_of(_near_queries, _random_text))
@settings(max_examples=120, deadline=None)
def test_ntriples_parser_total(text):
    try:
        parse_ntriples(text)
    except NTriplesParseError:
        pass
