"""RoutingPolicy: classification, pricing, fragment exclusion, dispatch."""

import pytest

from repro.data.lubm import LubmGenerator
from repro.routing import (
    DEFAULT_ENGINE_POOL,
    DEFAULT_SHAPE_PREFERENCES,
    FeedbackLog,
    RoutingPolicy,
    default_priors,
)
from repro.routing.defaults import (
    LAST_RESORT_PRIOR,
    PREFERRED_PRIOR,
)
from repro.sparql.shapes import QueryShape

PREFIX = "PREFIX lubm: <http://repro.example.org/lubm#>\n"
OPTIONAL_QUERY = PREFIX + (
    "SELECT ?s ?p WHERE { ?s lubm:advisor ?p "
    "OPTIONAL { ?p lubm:name ?n } }"
)


@pytest.fixture
def policy(lubm_graph):
    return RoutingPolicy.for_graph(lubm_graph)


class TestDefaults:
    def test_pool_covers_every_preference_and_fallback(self):
        for name in DEFAULT_SHAPE_PREFERENCES.values():
            assert name in DEFAULT_ENGINE_POOL
        assert "Naive" in DEFAULT_ENGINE_POOL

    def test_default_priors_reproduce_the_survey_table(self):
        priors = default_priors(DEFAULT_ENGINE_POOL)
        for shape, preferred in DEFAULT_SHAPE_PREFERENCES.items():
            assert priors[(preferred, shape.value)] == PREFERRED_PRIOR
        assert priors[("Naive", "star")] == LAST_RESORT_PRIOR

    def test_unknown_engine_name_rejected(self, lubm_graph):
        from repro.runtime import UnknownEngineError

        with pytest.raises(UnknownEngineError):
            RoutingPolicy.for_graph(lubm_graph, engines=["NoSuchEngine"])

    def test_engine_aliases_canonicalize(self, lubm_graph):
        policy = RoutingPolicy.for_graph(
            lubm_graph, engines=["sparqlgx", "naive"]
        )
        assert policy.engines == ["SPARQLGX", "Naive"]


class TestInitialDecisions:
    """A fresh policy reproduces the static survey table on every shape."""

    @pytest.mark.parametrize(
        "query, shape",
        [
            (LubmGenerator.query_star(), QueryShape.STAR),
            (LubmGenerator.query_linear(), QueryShape.LINEAR),
            (LubmGenerator.query_snowflake(), QueryShape.SNOWFLAKE),
            (LubmGenerator.query_complex(), QueryShape.COMPLEX),
            (PREFIX + "SELECT ?s WHERE { ?s lubm:age ?a }", QueryShape.SINGLE),
        ],
    )
    def test_fresh_policy_matches_survey_preference(
        self, policy, query, shape
    ):
        decision = policy.decide(query)
        assert decision.shape == shape.value
        assert decision.winner == DEFAULT_SHAPE_PREFERENCES[shape]
        assert not decision.fallback

    def test_bids_are_sorted_and_winner_is_cheapest(self, policy):
        decision = policy.decide(LubmGenerator.query_star())
        costs = [bid.cost for bid in decision.bids]
        assert costs == sorted(costs)
        assert decision.bids[0].engine == decision.winner

    def test_decision_counters_accumulate(self, policy):
        policy.decide(LubmGenerator.query_star())
        policy.decide(LubmGenerator.query_star())
        assert policy.decisions[("star", "HAQWA")] == 2
        assert policy.snapshot()["decisions"]["star"]["HAQWA"] == 2


class TestFragments:
    def test_optional_excludes_bgp_only_engines(self, policy):
        decision = policy.decide(OPTIONAL_QUERY)
        excluded = {name for name, _missing in decision.excluded}
        assert "HAQWA" in excluded and "S2RDF" in excluded
        assert all(
            "OPTIONAL" in missing for _name, missing in decision.excluded
        )
        # SPARQLGX and Naive both cover OPTIONAL: still a pool decision.
        assert not decision.fallback
        assert decision.winner == "SPARQLGX"

    def test_fallback_chain_walks_when_pool_cannot_cover(self, lubm_graph):
        policy = RoutingPolicy.for_graph(
            lubm_graph, engines=["HAQWA", "S2RDF"]
        )
        decision = policy.decide(OPTIONAL_QUERY)
        assert decision.fallback
        assert decision.winner == "SPARQLGX"  # first covering fallback
        assert policy.fallback_decisions == 1

    def test_empty_where_routes_to_naive_preference(self, policy):
        decision = policy.decide("SELECT ?s WHERE { }")
        assert decision.shape == "empty"
        assert decision.base_cost == 1.0
        assert decision.winner == "Naive"


class TestFeedbackIntegration:
    def test_recorded_costs_move_the_next_decision(self, policy):
        query = LubmGenerator.query_star()
        first = policy.decide(query)
        assert first.winner == "HAQWA"
        # HAQWA turns out terrible on stars; everyone else is honest.
        policy.record(first, actual_units=first.base_cost * 1000)
        for name in ("S2RDF", "SPARQL-Hybrid", "SPARQLGX", "SparkRDF"):
            policy.feedback.record(name, "star", 1.0, 1.0)
        moved = policy.decide(query)
        assert moved.winner != "HAQWA"

    def test_decisions_are_deterministic_replays(self, lubm_graph):
        def replay():
            policy = RoutingPolicy.for_graph(lubm_graph)
            out = []
            for _ in range(4):
                decision = policy.decide(LubmGenerator.query_star())
                policy.record(decision, actual_units=50.0)
                out.append((decision.winner, decision.to_payload()))
            return out

        assert replay() == replay()

    def test_refresh_keeps_calibration(self, policy, lubm_graph):
        from repro.stats import StatsCatalog

        decision = policy.decide(LubmGenerator.query_star())
        policy.record(decision, actual_units=500.0)
        before = policy.feedback.snapshot()
        policy.refresh(StatsCatalog.from_graph(lubm_graph, version=1))
        assert policy.feedback.snapshot() == before

    def test_shared_feedback_can_be_injected(self, lubm_graph):
        log = FeedbackLog(priors=default_priors(DEFAULT_ENGINE_POOL))
        log.seed_prior("Naive", "star", 0.001)
        policy = RoutingPolicy.for_graph(lubm_graph, feedback=log)
        assert policy.decide(LubmGenerator.query_star()).winner == "Naive"


class TestRendering:
    def test_render_names_every_bid_and_exclusion(self, policy):
        decision = policy.decide(OPTIONAL_QUERY)
        text = decision.render()
        assert text.startswith("routing: shape=linear")
        assert "<- winner" in text
        assert "excluded (missing OPTIONAL)" in text

    def test_payload_round_trips_through_json(self, policy):
        import json

        decision = policy.decide(LubmGenerator.query_snowflake())
        payload = decision.to_payload()
        assert json.loads(json.dumps(payload, sort_keys=True)) == payload
        assert payload["winner"] == "SPARQL-Hybrid"
