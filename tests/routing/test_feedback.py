"""FeedbackLog: the deterministic bounded-history calibration rule."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.routing import (
    DEFAULT_PRIOR_WEIGHT,
    EXPLORE_DISCOUNT,
    FACTOR_MAX,
    FACTOR_MIN,
    FeedbackLog,
    clamp_factor,
)


class TestConstruction:
    def test_rejects_bad_parameters(self):
        for kwargs in (
            {"history": 0},
            {"prior_weight": 0},
            {"min_observations": -1},
            {"explore_discount": 0.0},
            {"explore_discount": 1.5},
        ):
            with pytest.raises(ValueError):
                FeedbackLog(**kwargs)

    def test_priors_are_clamped(self):
        log = FeedbackLog(priors={("E", "star"): 1e9})
        assert log.prior("E", "star") == FACTOR_MAX

    def test_unknown_pair_defaults_to_neutral(self):
        log = FeedbackLog()
        assert log.prior("E", "star") == 1.0
        assert log.factor("E", "star") == 1.0
        assert log.observations("E", "star") == 0


class TestBlend:
    def test_factor_is_geometric_blend_of_prior_and_history(self):
        log = FeedbackLog(priors={("E", "star"): 0.5})
        log.record("E", "star", estimated=10.0, actual=40.0)  # ratio 4
        expected = math.exp(
            (DEFAULT_PRIOR_WEIGHT * math.log(0.5) + math.log(4.0))
            / (DEFAULT_PRIOR_WEIGHT + 1)
        )
        assert log.factor("E", "star") == pytest.approx(expected)

    def test_history_window_drops_old_ratios(self):
        log = FeedbackLog(history=2)
        log.record("E", "star", 1.0, 100.0)  # ratio 100, later evicted
        log.record("E", "star", 1.0, 2.0)
        log.record("E", "star", 1.0, 2.0)
        # Only the two ratio-2 observations remain in the window.
        expected = math.exp(
            (DEFAULT_PRIOR_WEIGHT * math.log(1.0) + 2 * math.log(2.0))
            / (DEFAULT_PRIOR_WEIGHT + 2)
        )
        assert log.observations("E", "star") == 2
        assert log.factor("E", "star") == pytest.approx(expected)

    def test_sub_unit_costs_clamp_to_neutral_ratio(self):
        """estimated=0 or actual=0 must not blow up the log-blend."""
        log = FeedbackLog()
        log.record("E", "star", estimated=0.0, actual=0.0)
        assert log.factor("E", "star") == pytest.approx(1.0)


class TestExploration:
    def test_unexplored_pair_bids_discounted(self):
        log = FeedbackLog(min_observations=2)
        assert log.effective_factor("E", "star") == pytest.approx(
            EXPLORE_DISCOUNT**2
        )
        log.record("E", "star", 10.0, 10.0)
        assert log.effective_factor("E", "star") == pytest.approx(
            log.factor("E", "star") * EXPLORE_DISCOUNT
        )
        log.record("E", "star", 10.0, 10.0)
        assert log.effective_factor("E", "star") == log.factor("E", "star")

    def test_seeded_pair_is_exempt_from_discount(self):
        log = FeedbackLog(min_observations=3)
        log.seed_prior("E", "star", 0.01)
        assert log.is_seeded("E", "star")
        assert log.effective_factor("E", "star") == log.factor("E", "star")


class TestConvergence:
    def test_seeded_miscalibration_is_corrected_within_bounded_requests(self):
        """An operator seeds 'E is 100x cheaper than it is'; after a
        handful of truthful observations the blend must price E above an
        honestly calibrated competitor."""
        log = FeedbackLog()
        log.seed_prior("E", "star", 0.01)
        competitor = 1.0  # a neutral rival factor
        corrected_at = None
        for round_number in range(1, 9):
            log.record("E", "star", estimated=10.0, actual=100.0)  # truth: 10x
            if log.factor("E", "star") > competitor:
                corrected_at = round_number
                break
        assert corrected_at is not None and corrected_at <= 8

    def test_snapshot_marks_seeded_pairs(self):
        log = FeedbackLog()
        log.seed_prior("E", "star", 0.25)
        log.record("F", "linear", 1.0, 2.0)
        snap = log.snapshot()
        assert snap["E"]["star"]["seeded"] is True
        assert "seeded" not in snap["F"]["linear"]
        assert snap["F"]["linear"]["observations"] == 1


ratios = st.floats(min_value=1e-6, max_value=1e6, allow_nan=False)
runs = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    ),
    max_size=40,
)


class TestProperties:
    @given(prior=ratios, history=runs)
    @settings(max_examples=200, deadline=None)
    def test_factor_stays_bounded(self, prior, history):
        log = FeedbackLog(priors={("E", "star"): prior})
        for estimated, actual in history:
            log.record("E", "star", estimated, actual)
        assert FACTOR_MIN <= log.factor("E", "star") <= FACTOR_MAX
        assert FACTOR_MIN <= log.effective_factor("E", "star") <= FACTOR_MAX

    @given(prior=ratios, history=runs)
    @settings(max_examples=100, deadline=None)
    def test_replay_is_deterministic(self, prior, history):
        """The same run sequence always yields the same state -- the
        property that keeps routed caches oracle-exact."""

        def replay():
            log = FeedbackLog(priors={("E", "star"): prior})
            for estimated, actual in history:
                log.record("E", "star", estimated, actual)
            return log.snapshot()

        assert replay() == replay()

    @given(truth=st.floats(min_value=1.0, max_value=512.0))
    @settings(max_examples=100, deadline=None)
    def test_constant_behavior_converges_to_true_ratio(self, truth):
        """Feeding a constant actual/estimate ratio drives the factor to
        that ratio as the history fills (the prior's weight is fixed)."""
        log = FeedbackLog(history=64)
        for _ in range(64):
            log.record("E", "star", estimated=1.0, actual=truth)
        expected = clamp_factor(truth)
        assert log.factor("E", "star") == pytest.approx(
            math.exp(
                (DEFAULT_PRIOR_WEIGHT * 0.0 + 64 * math.log(expected))
                / (DEFAULT_PRIOR_WEIGHT + 64)
            )
        )
        # Within 20% of the truth despite the sticky neutral prior.
        assert abs(math.log(log.factor("E", "star") / expected)) < math.log(
            1.25
        )
