"""The shape-stratified example corpus stays honest about its labels."""

import os

import pytest

from repro.sparql.parser import parse_sparql
from repro.sparql.shapes import classify_shape

CORPUS = os.path.join(
    os.path.dirname(__file__), "..", "..", "examples", "queries", "shapes"
)
EXPECTED_SHAPES = ("complex", "linear", "single", "snowflake", "star")


def corpus_files():
    out = []
    for shape in sorted(os.listdir(CORPUS)):
        shape_dir = os.path.join(CORPUS, shape)
        if not os.path.isdir(shape_dir):
            continue
        for name in sorted(os.listdir(shape_dir)):
            if name.endswith(".rq"):
                out.append((shape, os.path.join(shape_dir, name)))
    return out


def test_corpus_covers_every_non_empty_shape():
    assert tuple(sorted({shape for shape, _ in corpus_files()})) == (
        EXPECTED_SHAPES
    )
    for shape in EXPECTED_SHAPES:
        assert (
            sum(1 for s, _ in corpus_files() if s == shape) >= 2
        ), "at least two examples per shape"


@pytest.mark.parametrize(
    "shape, path",
    corpus_files(),
    ids=[os.path.basename(path) for _, path in corpus_files()],
)
def test_query_classifies_as_its_directory_claims(shape, path):
    with open(path, "r", encoding="utf-8") as handle:
        query = parse_sparql(handle.read())
    assert classify_shape(query).value == shape


@pytest.mark.parametrize(
    "shape, path",
    corpus_files(),
    ids=[os.path.basename(path) for _, path in corpus_files()],
)
def test_corpus_queries_are_lint_clean_on_lubm(shape, path, lubm_graph):
    """Routed service tests admit these under default lint: keep them
    admissible (known predicates, connected, bound projections)."""
    from repro.analysis import lint_text
    from repro.stats import StatsCatalog

    with open(path, "r", encoding="utf-8") as handle:
        report = lint_text(
            handle.read(),
            subject=os.path.basename(path),
            catalog=StatsCatalog.from_graph(lubm_graph),
        )
    assert not report.diagnostics, report.render()
