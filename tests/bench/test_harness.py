"""Tests for the benchmark harness and reporting."""

import pytest

from repro.bench import BenchRun, format_series, format_table, run_engine_on_query
from repro.data.lubm import LubmGenerator
from repro.spark.context import SparkContext
from repro.systems import HybridEngine, NaiveEngine, SparqlgxEngine


class TestRunEngineOnQuery:
    def test_measures_marginal_cost(self, lubm_graph):
        engine = NaiveEngine(SparkContext(4))
        engine.load(lubm_graph)
        result = run_engine_on_query(
            engine, LubmGenerator.query_star(), name="star"
        )
        assert result.supported
        assert result.rows > 0
        assert result.metrics.tasks > 0
        assert result.seconds >= 0

    def test_correctness_checked_against_reference(self, lubm_graph):
        from repro.sparql.algebra import evaluate
        from repro.sparql.parser import parse_sparql

        engine = NaiveEngine(SparkContext(4))
        engine.load(lubm_graph)
        query = parse_sparql(LubmGenerator.query_star())
        reference = evaluate(query, lubm_graph)
        result = run_engine_on_query(engine, query, "star", reference)
        assert result.correct is True

    def test_unsupported_query_flagged(self, lubm_graph):
        engine = HybridEngine(SparkContext(4))
        engine.load(lubm_graph)
        result = run_engine_on_query(
            engine, LubmGenerator.query_filter(), name="filter"
        )
        assert not result.supported
        assert result.correct is None

    def test_cost_summary_keys(self, lubm_graph):
        engine = NaiveEngine(SparkContext(4))
        engine.load(lubm_graph)
        result = run_engine_on_query(engine, LubmGenerator.query_star())
        summary = result.cost_summary()
        assert set(summary) == {
            "shuffle_records",
            "shuffle_remote",
            "join_comparisons",
            "records_scanned",
            "broadcast_bytes",
        }


class TestBenchRun:
    def test_matrix_run(self, lubm_graph):
        bench = BenchRun(lubm_graph)
        results = bench.run(
            [NaiveEngine, SparqlgxEngine],
            {
                "star": LubmGenerator.query_star(),
                "linear": LubmGenerator.query_linear(),
            },
        )
        assert len(results) == 4
        assert bench.incorrect() == []
        by_engine = bench.by_engine()
        assert set(by_engine) == {"Naive", "SPARQLGX"}

    def test_engine_kwargs_forwarded(self, lubm_graph):
        bench = BenchRun(lubm_graph)
        bench.run(
            [HybridEngine],
            {"star": LubmGenerator.query_star()},
            engine_kwargs={
                "SPARQL-Hybrid": {"broadcast_threshold": 0},
            },
        )
        assert bench.results[0].correct is True


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"], [["a", 1], ["long-name", 22]]
        )
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # rectangular
        assert "long-name" in text

    def test_format_series(self):
        text = format_series("throughput", {1: 10, 2: 20}, unit="rec/s")
        assert "throughput:" in text
        assert "1 -> 10 rec/s" in text
