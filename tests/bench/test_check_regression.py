"""The perf-trajectory gate (``benchmarks/check_regression.py``).

The acceptance demonstration lives here: a synthetic cost-unit
regression against a committed BENCH artifact makes the gate exit 1
with a ``regression`` finding, while a byte-identical rerun passes.
"""

import copy
import importlib.util
import json
import os

import pytest

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


def _load_gate():
    spec = importlib.util.spec_from_file_location(
        "check_regression",
        os.path.join(REPO_ROOT, "benchmarks", "check_regression.py"),
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


gate = _load_gate()


def committed_optimizer_payload():
    with open(
        os.path.join(REPO_ROOT, "BENCH_optimizer.json"), encoding="utf-8"
    ) as handle:
        return json.load(handle)


class TestFlatten:
    def test_flatten_nested_dicts_and_lists(self):
        payload = {"a": {"b": [1, {"c": 2}]}, "d": "x"}
        assert gate.flatten_payload(payload) == {
            "a.b[0]": 1,
            "a.b[1].c": 2,
            "d": "x",
        }

    def test_flatten_is_order_insensitive(self):
        one = gate.flatten_payload({"a": 1, "b": 2})
        two = gate.flatten_payload({"b": 2, "a": 1})
        assert one == two


class TestCompare:
    def test_identical_payloads_are_clean(self):
        payload = committed_optimizer_payload()
        assert gate.compare_payloads("optimizer", payload, payload) == []

    def test_cost_unit_increase_is_a_regression(self):
        baseline = committed_optimizer_payload()
        fresh = copy.deepcopy(baseline)
        fresh["profiles"]["dp"]["star"]["join_comparisons"] += 10
        findings = gate.compare_payloads("optimizer", baseline, fresh)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.kind == "regression"
        assert finding.path == "profiles.dp.star.join_comparisons"
        assert "worse" in finding.render()

    def test_cost_unit_decrease_is_an_improvement(self):
        baseline = committed_optimizer_payload()
        fresh = copy.deepcopy(baseline)
        fresh["profiles"]["dp"]["star"]["join_comparisons"] -= 1
        (finding,) = gate.compare_payloads("optimizer", baseline, fresh)
        assert finding.kind == "improvement"
        assert "re-commit" in finding.render()

    def test_non_perf_change_is_drift(self):
        baseline = committed_optimizer_payload()
        fresh = copy.deepcopy(baseline)
        fresh["profiles"]["dp"]["star"]["rows"] += 1
        (finding,) = gate.compare_payloads("optimizer", baseline, fresh)
        assert finding.kind == "drift"

    def test_missing_and_extra_leaves_are_drift(self):
        findings = gate.compare_payloads(
            "b", {"kept": 1, "gone": 2}, {"kept": 1, "new": 3}
        )
        assert [(f.path, f.kind) for f in findings] == [
            ("gone", "drift"),
            ("new", "drift"),
        ]

    def test_bool_leaves_never_compare_as_numbers(self):
        (finding,) = gate.compare_payloads(
            "b", {"units": True}, {"units": False}
        )
        assert finding.kind == "drift"


class TestGateMain:
    """Drive main() against the real committed artifact with a stubbed
    regeneration, so the gate's verdict is demonstrated without paying
    for a full bench rerun."""

    def _patch_spec(self, monkeypatch, regenerate):
        monkeypatch.setattr(
            gate,
            "SPECS",
            [("optimizer", "BENCH_optimizer.json", regenerate)],
        )

    def test_synthetic_regression_fails_ci(self, monkeypatch, capsys):
        doctored = committed_optimizer_payload()
        doctored["profiles"]["dp"]["star"]["join_comparisons"] += 100
        self._patch_spec(monkeypatch, lambda: doctored)
        assert gate.main([]) == 1
        out = capsys.readouterr().out
        assert "regression" in out
        assert "join_comparisons" in out
        assert "1 regression(s)" in out

    def test_reproduced_artifact_passes(self, monkeypatch, capsys):
        self._patch_spec(monkeypatch, committed_optimizer_payload)
        assert gate.main([]) == 0
        assert "all 1 artifact(s) clean" in capsys.readouterr().out

    def test_missing_artifact_exits_two(self, monkeypatch, capsys):
        monkeypatch.setattr(
            gate, "SPECS", [("ghost", "BENCH_ghost.json", dict)]
        )
        assert gate.main([]) == 2
        assert "missing artifact" in capsys.readouterr().err

    def test_bench_filter_rejects_unknown_name(self, monkeypatch):
        self._patch_spec(monkeypatch, committed_optimizer_payload)
        with pytest.raises(SystemExit) as excinfo:
            gate.main(["--bench", "nope"])
        assert excinfo.value.code == 2


@pytest.mark.slow
class TestLiveRegeneration:
    """The real thing: one full bench regenerated and compared."""

    def test_optimizer_bench_reproduces_committed_artifact(self):
        name, artifact, regenerate = next(
            spec for spec in gate.SPECS if spec[0] == "optimizer"
        )
        assert gate.check_bench(name, artifact, regenerate) == []
