"""End-to-end integration stories across the whole stack."""

import pytest

from repro.data.lubm import LUBM, LubmGenerator
from repro.evolution import ArchivePolicy, VersionedGraph
from repro.rdf.ntriples import load_ntriples_file, save_ntriples_file
from repro.rdf.rdfs import RDFSReasoner
from repro.rdf.terms import Literal
from repro.rdf.triple import Triple
from repro.spark.context import SparkContext
from repro.sparql.algebra import evaluate
from repro.sparql.parser import parse_sparql
from repro.systems import S2RdfEngine, ShapeAwareRouter, SparqlgxEngine


def test_generate_save_load_query_roundtrip(tmp_path):
    """Generator -> N-Triples file -> reload -> distributed query."""
    graph = LubmGenerator(num_universities=1, seed=3).generate()
    path = tmp_path / "uni.nt"
    save_ntriples_file(str(path), graph)
    reloaded = load_ntriples_file(str(path))
    assert reloaded == graph

    engine = SparqlgxEngine(SparkContext(4))
    engine.load(reloaded)
    query = parse_sparql(LubmGenerator.query_star())
    assert engine.execute(query).same_as(evaluate(query, graph))


def test_inference_construct_version_pipeline():
    """TBox inference -> CONSTRUCT new triples -> versioned commits ->
    query across versions: the full lifecycle of evolving semantic data."""
    generator = LubmGenerator(num_universities=1, seed=5)
    explicit = generator.generate(include_tbox=True)
    closure = RDFSReasoner().materialize(explicit)

    # Distill a derived "colleague" relation with CONSTRUCT on an engine.
    engine = S2RdfEngine(SparkContext(4))
    engine.load(closure)
    derived = engine.execute(
        """
        PREFIX lubm: <http://repro.example.org/lubm#>
        CONSTRUCT { ?a lubm:colleagueOf ?b } WHERE {
          ?a lubm:worksFor ?d .
          ?b lubm:worksFor ?d .
        }
        """
    )
    assert len(derived) > 0

    # Version the base data and commit the derived triples as an update.
    store = VersionedGraph(explicit, policy=ArchivePolicy.HYBRID)
    version = store.commit(additions=list(derived))
    ask = (
        "PREFIX lubm: <http://repro.example.org/lubm#>\n"
        "ASK { ?a lubm:colleagueOf ?b }"
    )
    assert store.versions_where(ask) == [version]

    # The enriched version answers queries the base could not.
    result = store.query_version(
        "PREFIX lubm: <http://repro.example.org/lubm#>\n"
        "SELECT ?a ?b WHERE { ?a lubm:colleagueOf ?b }",
        version,
    )
    assert len(result) == len(derived)


def test_router_over_mixed_workload(lubm_graph):
    """One router, many shapes: the adopter-facing happy path."""
    router = ShapeAwareRouter(parallelism=4).load(lubm_graph)
    for name, text in LubmGenerator.all_queries().items():
        query = parse_sparql(text)
        expected = evaluate(query, lubm_graph)
        assert router.execute(query).same_as(expected), name
    # Multiple engines were exercised behind one facade.
    assert len(router.loaded_engines()) >= 3


def test_describe_after_update(lubm_graph):
    """DESCRIBE sees freshly applied incremental updates."""
    from repro.evolution import UpdatableSparqlgxEngine

    engine = UpdatableSparqlgxEngine(SparkContext(4))
    engine.load(lubm_graph)
    newcomer = LUBM.BrandNewStudent
    engine.apply_update(
        additions=[
            Triple(newcomer, LUBM.memberOf, LUBM.Department0_0),
            Triple(newcomer, LUBM.age, Literal(19)),
        ]
    )
    description = engine.execute("DESCRIBE <%s>" % newcomer.value)
    assert len(description) == 2
