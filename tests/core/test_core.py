"""Tests for the survey core: dimensions, taxonomy, registry, reports,
assessment framework.
"""

import pytest

from repro.core import (
    Assessment,
    Claim,
    ClaimResult,
    DataModel,
    SparkAbstraction,
    SystemRegistry,
    TAXONOMY,
    default_registry,
    render_table_i,
    render_table_ii,
    render_taxonomy,
)
from repro.core.reports import (
    PAPER_TABLE_I,
    PAPER_TABLE_II,
    diff_against_paper,
    table_i_cells,
    table_ii_rows,
)
from repro.core.taxonomy import TaxonomyNode


class TestTaxonomy:
    def test_two_dimensions(self):
        assert len(TAXONOMY.children) == 2
        labels = [child.label for child in TAXONOMY.children]
        assert labels == ["Data Model", "Apache Spark Abstraction"]

    def test_leaves_match_figure_one(self):
        assert TAXONOMY.leaves() == [
            "The Triple Model",
            "The Graph Model",
            "RDD",
            "DataFrames",
            "Spark SQL",
            "GraphX",
            "GraphFrames",
        ]

    def test_find(self):
        assert TAXONOMY.find("GraphX") is not None
        assert TAXONOMY.find("Nonexistent") is None

    def test_depth(self):
        assert TAXONOMY.depth() == 3

    def test_render_contains_all_labels(self):
        text = render_taxonomy()
        for leaf in TAXONOMY.leaves():
            assert leaf in text

    def test_custom_node(self):
        node = TaxonomyNode("root", [TaxonomyNode("leaf")])
        assert node.leaves() == ["leaf"]


class TestRegistry:
    def test_default_has_nine_systems(self):
        assert len(default_registry()) == 9

    def test_by_name(self):
        registry = default_registry()
        assert registry.by_name("S2RDF").profile.citation == "[24]"
        with pytest.raises(KeyError):
            registry.by_name("Nonexistent")

    def test_duplicate_rejected(self):
        registry = default_registry()
        with pytest.raises(ValueError):
            registry.register(registry.by_name("S2X"))

    def test_unprofiled_class_rejected(self):
        class NotAnEngine:
            pass

        with pytest.raises(ValueError):
            SystemRegistry([NotAnEngine])

    def test_classify_by_data_model(self):
        registry = default_registry()
        triple = registry.classify(data_model=DataModel.TRIPLE)
        graph = registry.classify(data_model=DataModel.GRAPH)
        assert len(triple) == 4 and len(graph) == 5

    def test_classify_by_abstraction(self):
        registry = default_registry()
        graphx = registry.classify(abstraction=SparkAbstraction.GRAPHX)
        assert {cls.profile.citation for cls in graphx} == {
            "[23]", "[16]", "[12]",
        }

    def test_classify_cell(self):
        registry = default_registry()
        cell = registry.classify(
            data_model=DataModel.TRIPLE,
            abstraction=SparkAbstraction.RDD,
        )
        assert {cls.profile.citation for cls in cell} == {
            "[7]", "[13]", "[21]",
        }


class TestReports:
    def test_computed_table_i_matches_paper(self):
        cells = table_i_cells(default_registry())
        for key, expected in PAPER_TABLE_I.items():
            assert tuple(sorted(cells.get(key, ()))) == tuple(
                sorted(expected)
            ), key

    def test_no_extra_table_i_cells(self):
        cells = table_i_cells(default_registry())
        assert set(cells) == set(PAPER_TABLE_I)

    def test_computed_table_ii_matches_paper(self):
        assert [
            tuple(row) for row in table_ii_rows(default_registry())
        ] == [tuple(row) for row in PAPER_TABLE_II]

    def test_diff_against_paper_empty(self):
        assert diff_against_paper(default_registry()) == []

    def test_render_table_i_text(self):
        text = render_table_i()
        assert "[7], [13], [21]" in text
        assert "GraphFrames" in text

    def test_render_table_ii_text(self):
        text = render_table_ii()
        assert "Hash / Query Aware" in text
        assert "Extended Vertical" in text
        assert text.count("BGP+") == 4  # rows [7], [13], [24], [23]

    def test_diff_detects_mismatch(self):
        from repro.systems import HaqwaEngine, ALL_ENGINE_CLASSES

        class Impostor(HaqwaEngine):
            pass

        # Mutating a profile copy: a wrong partitioning label must surface.
        import dataclasses

        Impostor.profile = dataclasses.replace(
            HaqwaEngine.profile, partitioning=HaqwaEngine.profile.partitioning
        )
        Impostor.profile = dataclasses.replace(
            Impostor.profile,
            optimization=type(Impostor.profile.optimization).YES,
        )
        registry = SystemRegistry(
            [Impostor] + [c for c in ALL_ENGINE_CLASSES if c is not HaqwaEngine]
        )
        problems = diff_against_paper(registry)
        assert problems and "Table II row [7]" in problems[0]


class TestAssessment:
    def test_claim_check_roundtrip(self):
        claim = Claim(
            claim_id="demo",
            quotation="x is faster than y",
            section="IV",
            experiment=lambda: ClaimResult("demo", True, {"speedup": 2}),
        )
        result = claim.check()
        assert result.holds
        assert "HOLDS" in result.summary()

    def test_claim_id_mismatch_caught(self):
        claim = Claim(
            claim_id="demo",
            quotation="",
            section="IV",
            experiment=lambda: ClaimResult("other", True),
        )
        with pytest.raises(ValueError):
            claim.check()

    def test_assessment_runs_all(self):
        assessment = Assessment()
        assessment.add(
            "a", "quote a", "IV-A", lambda: ClaimResult("a", True)
        )
        assessment.add(
            "b", "quote b", "IV-B", lambda: ClaimResult("b", False, {"n": 1})
        )
        results = assessment.run()
        assert [r.holds for r in results] == [True, False]
        report = assessment.report()
        assert "quote a" in report and "DOES NOT HOLD" in report

    def test_duplicate_claim_rejected(self):
        assessment = Assessment()
        assessment.add("a", "", "IV", lambda: ClaimResult("a", True))
        with pytest.raises(ValueError):
            assessment.add("a", "", "IV", lambda: ClaimResult("a", True))
