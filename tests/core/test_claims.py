"""Tests for the library-level claims assessment."""

import pytest

from repro.core import build_default_assessment


@pytest.fixture(scope="module")
def results():
    return build_default_assessment().run()


def test_twelve_claims_registered():
    assessment = build_default_assessment()
    assert len(assessment.claims()) == 12


def test_every_claim_holds(results):
    failing = [r.claim_id for r in results if not r.holds]
    assert not failing, "claims failed: %r" % failing


def test_every_claim_carries_evidence(results):
    assert all(r.evidence for r in results)


def test_claims_quote_the_paper():
    assessment = build_default_assessment()
    quotations = [c.quotation for c in assessment.claims()]
    assert any("star-shaped queries" in q for q in quotations)
    assert any("10 comparisons" in q for q in quotations)
    assert all(c.section for c in assessment.claims())


def test_cli_claims_command(capsys):
    from repro.cli import main

    assert main(["claims"]) == 0
    out = capsys.readouterr().out
    assert out.count("HOLDS") >= 11
    assert "DOES NOT HOLD" not in out
