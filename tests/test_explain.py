"""Tests for the EXPLAIN facility and its CLI surface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.data.lubm import LubmGenerator
from repro.data.watdiv import WatdivGenerator
from repro.explain import (
    DEFAULT_EXPLAIN_ENGINES,
    EngineExplain,
    engine_class,
    explain,
    run_traced,
    verify_conservation,
)
from repro.rdf.ntriples import save_ntriples_file
from repro.systems import HybridEngine, S2RdfEngine, SparqlgxEngine

STAR = LubmGenerator.query_star()
CHAIN = LubmGenerator.query_linear()


class TestRunTraced:
    def test_returns_spans_and_matching_totals(self, lubm_graph):
        run = run_traced(lubm_graph, STAR, SparqlgxEngine)
        assert run.supported and run.rows > 0
        assert run.spans and run.spans[0].kind == "query"
        assert verify_conservation(run) == {}

    def test_conservation_across_engines(self, lubm_graph):
        for name in DEFAULT_EXPLAIN_ENGINES:
            run = run_traced(lubm_graph, STAR, engine_class(name))
            assert verify_conservation(run) == {}, name

    def test_unsupported_query_reported(self, lubm_graph):
        run = run_traced(lubm_graph, LubmGenerator.query_filter(), HybridEngine)
        assert not run.supported
        assert run.rows is None
        assert "FILTER" in run.error or "filter" in run.error.lower()
        assert "unsupported" in run.render()

    def test_ask_query_rows(self, lubm_graph):
        ask = """
            PREFIX lubm: <http://repro.example.org/lubm#>
            ASK WHERE { ?s lubm:memberOf ?d }
        """
        run = run_traced(lubm_graph, ask, SparqlgxEngine)
        assert run.supported and run.rows == 1

    def test_tracer_left_disabled(self, lubm_graph):
        run_traced(lubm_graph, STAR, SparqlgxEngine)
        # A fresh run on a fresh context: the helper never leaks state into
        # subsequent contexts (ids restart, tracer off by default).
        from repro.spark.context import SparkContext

        assert not SparkContext(2).tracer.enabled


class TestExplainStability:
    @pytest.mark.parametrize("query", [STAR, CHAIN], ids=["star", "chain"])
    @pytest.mark.parametrize(
        "engine", [SparqlgxEngine, S2RdfEngine], ids=["sparqlgx", "s2rdf"]
    )
    def test_output_stable_across_runs(self, lubm_graph, query, engine):
        first = explain(lubm_graph, query, [engine])
        second = explain(lubm_graph, query, [engine])
        assert first == second

    def test_explain_renders_cost_tree(self, lubm_graph):
        text = explain(lubm_graph, STAR, [SparqlgxEngine])
        assert "== SPARQLGX ==" in text
        assert "rows:" in text and "totals:" in text
        assert "bgp" in text

    def test_explain_multiple_engines_sections(self, lubm_graph):
        text = explain(lubm_graph, STAR)
        for name in DEFAULT_EXPLAIN_ENGINES:
            assert "== %s ==" % name in text

    def test_engine_class_resolution(self):
        assert engine_class("sparqlgx") is SparqlgxEngine
        assert engine_class("Naive").profile.name == "Naive"
        with pytest.raises(KeyError):
            engine_class("NoSuchEngine")


@pytest.fixture()
def watdiv_file(tmp_path, watdiv_graph):
    path = tmp_path / "watdiv.nt"
    save_ntriples_file(str(path), watdiv_graph)
    return str(path)


class TestCli:
    def test_explain_command_prints_three_engines(self, watdiv_file, capsys):
        rc = main(["explain", watdiv_file, WatdivGenerator.query_star()])
        out = capsys.readouterr().out
        assert rc == 0
        sections = [
            line for line in out.splitlines() if line.startswith("== ")
        ]
        assert len(sections) >= 3
        assert "query select" in out

    def test_explain_engine_flag(self, watdiv_file, capsys):
        rc = main(
            [
                "explain",
                watdiv_file,
                WatdivGenerator.query_star(),
                "--engine",
                "Naive",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert out.count("== ") == 1 and "== Naive ==" in out

    def test_query_trace_flag_writes_conserving_json(
        self, watdiv_file, tmp_path, capsys
    ):
        trace_file = str(tmp_path / "trace.json")
        rc = main(
            [
                "query",
                watdiv_file,
                WatdivGenerator.query_star(),
                "--engine",
                "SPARQLGX",
                "--trace",
                trace_file,
            ]
        )
        assert rc == 0
        assert "trace written" in capsys.readouterr().out
        payload = json.loads(open(trace_file).read())
        assert payload["version"] == 1
        (run,) = payload["runs"]
        assert run["engine"] == "SPARQLGX"
        summed = {}
        for span in run["spans"]:
            for name, value in span.get("metrics", {}).items():
                summed[name] = summed.get(name, 0) + value
        assert summed == run["totals"]

    def test_trace_file_round_trips_through_tracing_module(
        self, watdiv_file, tmp_path
    ):
        from repro.spark.tracing import Span

        trace_file = str(tmp_path / "trace.json")
        main(
            [
                "query",
                watdiv_file,
                WatdivGenerator.query_star(),
                "--trace",
                trace_file,
            ]
        )
        payload = json.loads(open(trace_file).read())
        spans = [Span.from_dict(d) for d in payload["runs"][0]["spans"]]
        assert spans and spans[0].kind == "query"


class TestHarnessTrace:
    def test_run_engine_on_query_attaches_trace(self, lubm_graph):
        from repro.bench import run_engine_on_query
        from repro.spark.context import SparkContext

        engine = SparqlgxEngine(SparkContext(4)).load(lubm_graph)
        result = run_engine_on_query(engine, STAR, "star", trace=True)
        assert result.trace and result.trace[0].kind == "query"
        assert not engine.ctx.tracer.enabled
        payload = result.trace_payload()
        assert payload["engine"] == "SPARQLGX"
        untraced = run_engine_on_query(engine, STAR, "star")
        assert untraced.trace is None
        assert untraced.trace_payload() is None

    def test_bench_run_resets_results_between_calls(self, lubm_graph):
        from repro.bench import BenchRun
        from repro.systems import NaiveEngine

        bench = BenchRun(lubm_graph)
        queries = {"star": STAR}
        first = bench.run([NaiveEngine], queries)
        assert len(first) == 1
        second = bench.run([NaiveEngine], queries)
        assert len(second) == 1
        assert len(bench.results) == 1

    def test_bench_run_trace_flag(self, lubm_graph):
        from repro.bench import BenchRun
        from repro.systems import NaiveEngine

        bench = BenchRun(lubm_graph)
        (result,) = bench.run([NaiveEngine], {"star": STAR}, trace=True)
        assert result.trace is not None
        kinds = {
            span.kind for root in result.trace for span in root.walk()
        }
        assert "query" in kinds


class TestEngineExplainPayload:
    def test_payload_shape(self, lubm_graph):
        run = run_traced(lubm_graph, STAR, SparqlgxEngine)
        payload = run.to_payload()
        assert payload["engine"] == "SPARQLGX"
        assert payload["supported"] is True
        assert isinstance(payload["spans"], list)
        assert payload["totals"]

    def test_unsupported_payload(self, lubm_graph):
        run = EngineExplain(engine="X", supported=False, rows=None, error="no")
        payload = run.to_payload()
        assert payload["supported"] is False and payload["spans"] == []


class TestPreambleOrder:
    """Preamble blocks render in sorted key order, never flag order.

    ``explain()``'s docstring promises the order is a stable function of
    which blocks are non-empty; this pins ``lint`` before ``views`` and
    both before any ``== ENGINE ==`` section.
    """

    DIRTY_VIEWED = (
        "PREFIX lubm: <http://repro.example.org/lubm#>\n"
        "SELECT ?x ?y WHERE { ?x lubm:advisor ?y ."
        " ?x lubm:takesCourse ?c . ?x lubm:noSuchPredicate ?z }"
    )

    def test_lint_sorts_before_views_before_engines(self, lubm_graph):
        text = explain(
            lubm_graph,
            self.DIRTY_VIEWED,
            [SparqlgxEngine],
            optimize=True,
            views=True,
        )
        assert "lint:" in text and "views:" in text
        assert (
            text.index("lint:")
            < text.index("views:")
            < text.index("== SPARQLGX ==")
        )

    def test_views_only_preamble_precedes_engines(self, lubm_graph):
        text = explain(
            lubm_graph, STAR, [SparqlgxEngine], optimize=True, views=True
        )
        assert "lint:" not in text
        assert text.index("views:") < text.index("== SPARQLGX ==")

    def test_clean_unviewed_has_no_preamble(self, lubm_graph):
        text = explain(lubm_graph, STAR, [SparqlgxEngine], optimize=True)
        assert "lint:" not in text and "views:" not in text
        assert text.startswith("== SPARQLGX ==")


class TestShaclPreamble:
    def test_inventory_marks_the_explained_query(self, lubm_graph):
        from repro.shacl import compile_shape_set, load_shapes_file

        shapes = load_shapes_file("examples/shapes/lubm_clean.json")
        target = compile_shape_set(shapes)[0]
        text = explain(
            lubm_graph, target.text, [SparqlgxEngine], shapes=shapes
        )
        assert "shacl:" in text
        assert "<- the explained query" in text
        marked = [
            line for line in text.splitlines() if "<- the explained" in line
        ]
        assert len(marked) == 1 and target.id in marked[0]
        assert text.index("shacl:") < text.index("== SPARQLGX ==")

    def test_unrelated_query_is_not_marked(self, lubm_graph):
        from repro.shacl import load_shapes_file

        shapes = load_shapes_file("examples/shapes/lubm_clean.json")
        text = explain(lubm_graph, STAR, [SparqlgxEngine], shapes=shapes)
        assert "shacl:" in text
        assert "<- the explained query" not in text

    def test_shacl_sorts_after_routing_before_views(self, lubm_graph):
        from repro.shacl import load_shapes_file

        shapes = load_shapes_file("examples/shapes/lubm_clean.json")
        text = explain(
            lubm_graph,
            STAR,
            [SparqlgxEngine],
            optimize=True,
            views=True,
            route=True,
            shapes=shapes,
        )
        assert (
            text.index("routing:")
            < text.index("shacl:")
            < text.index("views:")
        )
