"""The ``validate`` and ``harvest`` subcommands: exit codes, byte
determinism across engines and the remote path, artifacts on disk."""

import json

import pytest

from repro.cli import main
from repro.rdf.ntriples import save_ntriples_file

CLEAN = "examples/shapes/lubm_clean.json"
VIOLATING = "examples/shapes/lubm_violating.json"
LUBM = "http://repro.example.org/lubm#"
HARVEST_QUERY = (
    "CONSTRUCT { ?s <%(l)sadvisor> ?o } WHERE { ?s <%(l)sadvisor> ?o }"
    % {"l": LUBM}
)


@pytest.fixture
def data_file(tmp_path, lubm_graph):
    path = tmp_path / "data.nt"
    save_ntriples_file(str(path), lubm_graph)
    return str(path)


class TestValidateExitCodes:
    def test_conformant_exits_zero(self, data_file, capsys):
        assert main(["validate", data_file, CLEAN]) == 0
        out = capsys.readouterr().out
        assert "conforms: yes" in out

    def test_non_conformant_exits_one(self, data_file, capsys):
        assert main(["validate", data_file, VIOLATING]) == 1
        out = capsys.readouterr().out
        assert "conforms: NO" in out
        assert "violation:" in out

    def test_bad_shapes_file_exits_two(self, data_file, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"shapes": [{"name": "S"}]}')
        assert main(["validate", data_file, str(bad)]) == 2
        assert "bad shapes file" in capsys.readouterr().err

    def test_missing_shapes_file_exits_two(self, data_file, capsys):
        assert main(["validate", data_file, "/no/such/shapes.json"]) == 2

    def test_report_artifact_round_trips(
        self, data_file, tmp_path, capsys
    ):
        report_path = tmp_path / "report.json"
        assert (
            main(
                [
                    "validate",
                    data_file,
                    VIOLATING,
                    "--report",
                    str(report_path),
                ]
            )
            == 1
        )
        payload = json.loads(report_path.read_text())
        assert payload["conforms"] is False
        assert len(payload["violations"]) == 20


class TestValidateByteDeterminism:
    def _json_report(self, capsys, argv):
        code = main(argv)
        return code, capsys.readouterr().out

    def test_engines_agree_byte_for_byte(self, data_file, capsys):
        outputs = set()
        for engine in ("Naive", "SPARQLGX", "S2RDF", "HAQWA"):
            code, out = self._json_report(
                capsys,
                [
                    "validate",
                    data_file,
                    VIOLATING,
                    "--json",
                    "--engine",
                    engine,
                ],
            )
            assert code == 1
            outputs.add(out)
        assert len(outputs) == 1

    def test_routed_and_remote_agree_with_fixed_engine(
        self, data_file, capsys
    ):
        _, direct = self._json_report(
            capsys, ["validate", data_file, VIOLATING, "--json"]
        )
        _, routed = self._json_report(
            capsys, ["validate", data_file, VIOLATING, "--json", "--route"]
        )
        _, remote = self._json_report(
            capsys,
            [
                "validate",
                data_file,
                VIOLATING,
                "--json",
                "--remote",
                "--page-size",
                "9",
            ],
        )
        assert direct == routed == remote
        assert json.loads(direct)["conforms"] is False


class TestHarvest:
    def test_harvest_summary_and_exit_zero(self, data_file, capsys):
        assert main(["harvest", data_file, HARVEST_QUERY]) == 0
        out = capsys.readouterr().out
        assert "harvested" in out

    def test_harvest_json_accounting(self, data_file, capsys):
        assert (
            main(
                [
                    "harvest",
                    data_file,
                    HARVEST_QUERY,
                    "--json",
                    "--page-size",
                    "5",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["triples"] == payload["new_triples"] > 0
        assert payload["pages"] == (payload["triples"] + 4) // 5
        assert payload["remote_version"] == 0

    def test_harvest_output_file(self, data_file, tmp_path, capsys):
        out_path = tmp_path / "subgraph.nt"
        assert (
            main(
                [
                    "harvest",
                    data_file,
                    HARVEST_QUERY,
                    "--output",
                    str(out_path),
                ]
            )
            == 0
        )
        lines = [
            line
            for line in out_path.read_text().splitlines()
            if line.strip()
        ]
        assert lines and all("advisor" in line for line in lines)

    def test_select_query_exits_two(self, data_file, capsys):
        assert (
            main(["harvest", data_file, "SELECT ?s WHERE { ?s ?p ?o }"])
            == 2
        )

    def test_pre_paged_query_exits_two(self, data_file, capsys):
        assert (
            main(["harvest", data_file, HARVEST_QUERY + " LIMIT 2"]) == 2
        )
