"""Tests for the CONSTRUCT and DESCRIBE query forms (Section II-B's
"construction of new triples" and "descriptions of resources").
"""

import pytest

from repro.rdf.graph import RDFGraph
from repro.rdf.terms import Literal, URI
from repro.rdf.triple import Triple
from repro.rdf.turtle import parse_turtle
from repro.spark.context import SparkContext
from repro.sparql.algebra import evaluate
from repro.sparql.ast import ConstructQuery, DescribeQuery
from repro.sparql.parser import parse_sparql
from repro.sparql.tokenizer import SparqlParseError
from repro.systems import NaiveEngine, SparqlgxEngine

PREFIX = "PREFIX ex: <http://x/>\n"


@pytest.fixture(scope="module")
def data():
    return parse_turtle(
        """
        @prefix ex: <http://x/> .
        ex:alice ex:knows ex:bob ; ex:age 30 .
        ex:bob ex:knows ex:carol .
        ex:carol ex:age 55 .
        """
    )


class TestConstructParsing:
    def test_parses_to_construct_query(self):
        query = parse_sparql(
            PREFIX
            + "CONSTRUCT { ?b ex:knownBy ?a } WHERE { ?a ex:knows ?b }"
        )
        assert isinstance(query, ConstructQuery)
        assert len(query.template) == 1

    def test_template_shorthand(self):
        query = parse_sparql(
            PREFIX
            + "CONSTRUCT { ?a ex:p ?b ; ex:q ?b } WHERE { ?a ex:knows ?b }"
        )
        assert len(query.template) == 2

    def test_empty_template_rejected(self):
        with pytest.raises(SparqlParseError):
            parse_sparql(PREFIX + "CONSTRUCT { } WHERE { ?a ex:knows ?b }")


class TestConstructEvaluation:
    def test_inverts_edges(self, data):
        query = parse_sparql(
            PREFIX
            + "CONSTRUCT { ?b ex:knownBy ?a } WHERE { ?a ex:knows ?b }"
        )
        graph = evaluate(query, data)
        assert isinstance(graph, RDFGraph)
        assert Triple(
            URI("http://x/bob"), URI("http://x/knownBy"), URI("http://x/alice")
        ) in graph
        assert len(graph) == 2

    def test_constants_in_template(self, data):
        query = parse_sparql(
            PREFIX
            + "CONSTRUCT { ?a ex:status ex:social } WHERE { ?a ex:knows ?b }"
        )
        graph = evaluate(query, data)
        assert len(graph) == 2  # one per distinct knower (set semantics)

    def test_unbound_variable_skipped(self, data):
        query = parse_sparql(
            PREFIX
            + "CONSTRUCT { ?a ex:ageCopy ?age } WHERE { "
            "?a ex:knows ?b . OPTIONAL { ?a ex:age ?age } }"
        )
        graph = evaluate(query, data)
        assert len(graph) == 1  # only alice has an age

    def test_invalid_instantiation_skipped(self, data):
        # ?v binds to a literal, which cannot be a subject.
        query = parse_sparql(
            PREFIX + "CONSTRUCT { ?v ex:p ex:o } WHERE { ?s ex:age ?v }"
        )
        graph = evaluate(query, data)
        assert len(graph) == 0

    def test_engines_construct_distributedly(self, data):
        query = (
            PREFIX + "CONSTRUCT { ?b ex:knownBy ?a } WHERE { ?a ex:knows ?b }"
        )
        reference = evaluate(parse_sparql(query), data)
        for engine_class in (NaiveEngine, SparqlgxEngine):
            engine = engine_class(SparkContext(4))
            engine.load(data)
            assert engine.execute(query) == reference


class TestDescribeParsing:
    def test_direct_resource(self):
        query = parse_sparql(PREFIX + "DESCRIBE ex:alice")
        assert isinstance(query, DescribeQuery)
        assert query.terms == [URI("http://x/alice")]
        assert query.where is None

    def test_variable_form(self):
        query = parse_sparql(
            PREFIX + "DESCRIBE ?s WHERE { ?s ex:knows ex:bob }"
        )
        assert query.variables and query.where is not None

    def test_variable_without_where_rejected(self):
        with pytest.raises(SparqlParseError):
            parse_sparql(PREFIX + "DESCRIBE ?s")

    def test_empty_rejected(self):
        with pytest.raises(SparqlParseError):
            parse_sparql(PREFIX + "DESCRIBE WHERE { ?s ex:p ?o }")


class TestDescribeEvaluation:
    def test_direct_description(self, data):
        graph = evaluate(parse_sparql(PREFIX + "DESCRIBE ex:alice"), data)
        assert len(graph) == 2  # knows bob, age 30
        assert all(t.subject == URI("http://x/alice") for t in graph)

    def test_via_where_clause(self, data):
        graph = evaluate(
            parse_sparql(
                PREFIX + "DESCRIBE ?who WHERE { ?who ex:knows ex:carol }"
            ),
            data,
        )
        assert {t.subject for t in graph} == {URI("http://x/bob")}

    def test_unknown_resource_is_empty(self, data):
        graph = evaluate(parse_sparql(PREFIX + "DESCRIBE ex:nobody"), data)
        assert len(graph) == 0

    def test_multiple_resources(self, data):
        graph = evaluate(
            parse_sparql(PREFIX + "DESCRIBE ex:alice ex:carol"), data
        )
        assert len(graph) == 3

    def test_engines_describe_distributedly(self, data):
        query = PREFIX + "DESCRIBE ?who WHERE { ?who ex:knows ?other }"
        reference = evaluate(parse_sparql(query), data)
        for engine_class in (NaiveEngine, SparqlgxEngine):
            engine = engine_class(SparkContext(4))
            engine.load(data)
            assert engine.execute(query) == reference
