"""Tests for algebra translation and the reference evaluator."""

import pytest

from repro.rdf.terms import Literal, URI
from repro.rdf.turtle import parse_turtle
from repro.sparql.algebra import (
    AlgebraFilter,
    AlgebraJoin,
    AlgebraUnion,
    BGP,
    LeftJoin,
    evaluate,
    translate,
)
from repro.sparql.parser import parse_sparql

PREFIX = "PREFIX ex: <http://x/>\n"


@pytest.fixture(scope="module")
def data():
    return parse_turtle(
        """
        @prefix ex: <http://x/> .
        ex:alice a ex:Student ; ex:age 30 ; ex:knows ex:bob .
        ex:bob a ex:Student ; ex:age 25 ; ex:knows ex:carol .
        ex:carol a ex:Prof ; ex:age 55 .
        ex:dave a ex:Student ; ex:age 22 .
        """
    )


def run(data, text):
    return evaluate(parse_sparql(PREFIX + text), data)


class TestTranslation:
    def test_plain_bgp(self):
        node = translate(
            parse_sparql(PREFIX + "SELECT * WHERE { ?s ex:p ?o . ?o ex:q ?r }")
        )
        assert isinstance(node, BGP)
        assert len(node.patterns) == 2

    def test_filter_wraps_group(self):
        node = translate(
            parse_sparql(
                PREFIX + "SELECT * WHERE { ?s ex:p ?o . FILTER(?o > 1) }"
            )
        )
        assert isinstance(node, AlgebraFilter)
        assert isinstance(node.child, BGP)

    def test_optional_becomes_leftjoin(self):
        node = translate(
            parse_sparql(
                PREFIX
                + "SELECT * WHERE { ?s ex:p ?o . OPTIONAL { ?s ex:q ?r } }"
            )
        )
        assert isinstance(node, LeftJoin)

    def test_union_joined_with_bgp(self):
        node = translate(
            parse_sparql(
                PREFIX
                + "SELECT * WHERE { ?s ex:p ?o { ?s a ex:A } UNION { ?s a ex:B } }"
            )
        )
        assert isinstance(node, AlgebraJoin)
        assert isinstance(node.right, AlgebraUnion)

    def test_filter_scopes_to_whole_group(self):
        # Filter placed before the pattern still applies (group scope).
        node = translate(
            parse_sparql(
                PREFIX + "SELECT * WHERE { FILTER(?o > 1) ?s ex:p ?o }"
            )
        )
        assert isinstance(node, AlgebraFilter)

    def test_pretty_output(self):
        node = translate(
            parse_sparql(PREFIX + "SELECT * WHERE { ?s ex:p ?o }")
        )
        assert "BGP" in node.pretty()


class TestEvaluation:
    def test_single_pattern(self, data):
        result = run(data, "SELECT ?s WHERE { ?s a ex:Student }")
        assert len(result) == 3

    def test_join_two_patterns(self, data):
        result = run(
            data, "SELECT ?s ?o WHERE { ?s ex:knows ?o . ?o a ex:Prof }"
        )
        assert result.to_table() == [("<http://x/bob>", "<http://x/carol>")]

    def test_filter_numeric(self, data):
        result = run(
            data, "SELECT ?s WHERE { ?s ex:age ?a . FILTER(?a >= 30) }"
        )
        assert len(result) == 2

    def test_filter_error_rejects(self, data):
        # Comparing a URI with < is a type error -> row rejected, not crash.
        result = run(
            data, "SELECT ?s WHERE { ?s ex:knows ?o . FILTER(?o < 5) }"
        )
        assert len(result) == 0

    def test_optional_keeps_unmatched(self, data):
        result = run(
            data,
            "SELECT ?s ?o WHERE { ?s a ex:Student . OPTIONAL { ?s ex:knows ?o } }",
        )
        assert len(result) == 3
        unmatched = [s for s in result if s.get("o") is None]
        assert len(unmatched) == 1

    def test_union_bag_semantics(self, data):
        result = run(
            data,
            "SELECT ?s WHERE { { ?s a ex:Student } UNION { ?s ex:age ?a } }",
        )
        # 3 students + 4 age rows = 7 solutions (bag, no dedup).
        assert len(result) == 7

    def test_distinct(self, data):
        result = run(
            data,
            "SELECT DISTINCT ?s WHERE { { ?s a ex:Student } UNION { ?s ex:age ?a } }",
        )
        assert len(result) == 4

    def test_order_by_with_limit_offset(self, data):
        result = run(
            data,
            "SELECT ?s ?a WHERE { ?s ex:age ?a } ORDER BY DESC(?a) LIMIT 2 OFFSET 1",
        )
        ages = [int(s.get("a").lexical) for s in result]
        assert ages == [30, 25]

    def test_ask_true_false(self, data):
        assert run(data, "ASK { ex:alice ex:knows ex:bob }") is True
        assert run(data, "ASK { ex:bob ex:knows ex:alice }") is False

    def test_cartesian_on_disconnected_patterns(self, data):
        result = run(
            data, "SELECT ?a ?b WHERE { ?a a ex:Prof . ?b a ex:Prof }"
        )
        assert len(result) == 1

    def test_empty_group(self, data):
        result = run(data, "SELECT ?x WHERE { }")
        assert len(result) == 1  # the empty solution

    def test_unsatisfiable_pattern(self, data):
        result = run(data, "SELECT ?s WHERE { ?s ex:nothere ?o }")
        assert len(result) == 0

    def test_same_variable_twice_in_pattern(self, data):
        result = run(data, "SELECT ?s WHERE { ?s ex:knows ?s }")
        assert len(result) == 0

    def test_bound_subject_lookup(self, data):
        result = run(data, "SELECT ?o WHERE { ex:alice ex:knows ?o }")
        assert result.to_table() == [("<http://x/bob>",)]

    def test_variable_predicate(self, data):
        result = run(data, "SELECT ?p WHERE { ex:alice ?p ex:bob }")
        assert result.to_table() == [("<http://x/knows>",)]

    def test_order_unbound_sorts_first(self, data):
        result = run(
            data,
            "SELECT ?s ?o WHERE { ?s a ex:Student . OPTIONAL { ?s ex:knows ?o } } ORDER BY ?o",
        )
        assert result.solutions[0].get("o") is None


class TestFilterBuiltins:
    def test_regex(self, data):
        result = run(
            data,
            'SELECT ?s WHERE { ?s a ?t . FILTER REGEX(STR(?s), "ali") }',
        )
        assert len(result) == 1

    def test_regex_case_insensitive_flag(self, data):
        result = run(
            data,
            'SELECT ?s WHERE { ?s a ?t . FILTER REGEX(STR(?s), "ALI", "i") }',
        )
        assert len(result) == 1

    def test_bound_in_optional(self, data):
        result = run(
            data,
            "SELECT ?s WHERE { ?s a ex:Student . "
            "OPTIONAL { ?s ex:knows ?o } FILTER(!BOUND(?o)) }",
        )
        assert result.to_table() == [("<http://x/dave>",)]

    def test_isiri_isliteral(self, data):
        result = run(
            data,
            "SELECT ?o WHERE { ex:alice ?p ?o . FILTER ISLITERAL(?o) }",
        )
        assert len(result) == 1  # only the age literal

    def test_in_expression(self, data):
        result = run(
            data,
            "SELECT ?s WHERE { ?s ex:age ?a . FILTER(?a IN (25, 30)) }",
        )
        assert len(result) == 2

    def test_arithmetic(self, data):
        result = run(
            data,
            "SELECT ?s WHERE { ?s ex:age ?a . FILTER(?a * 2 > 100) }",
        )
        assert len(result) == 1  # carol, 55*2

    def test_logical_or_error_recovery(self, data):
        # Left operand errors (URI compare); right decides true.
        result = run(
            data,
            "SELECT ?s WHERE { ?s ex:knows ?o . FILTER(?o < 1 || ?s = ex:alice) }",
        )
        assert len(result) == 1
