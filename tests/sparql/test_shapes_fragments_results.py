"""Tests for query shapes, fragments, and solution sets."""

import pytest

from repro.rdf.terms import Literal, URI
from repro.sparql.ast import TriplePattern, Variable
from repro.sparql.fragments import (
    SparqlFragment,
    features_of,
    fragment_of,
)
from repro.sparql.parser import parse_sparql
from repro.sparql.results import Solution, SolutionSet
from repro.sparql.shapes import (
    JoinKind,
    QueryShape,
    classify_patterns,
    classify_shape,
    join_edges,
)

PREFIX = "PREFIX ex: <http://x/>\n"


def patterns_of(text):
    return parse_sparql(PREFIX + text).where.triple_patterns()


class TestShapes:
    def test_empty_and_single(self):
        assert classify_patterns([]) is QueryShape.EMPTY
        assert (
            classify_patterns(patterns_of("SELECT * WHERE { ?s ex:p ?o }"))
            is QueryShape.SINGLE
        )

    def test_star(self):
        patterns = patterns_of(
            "SELECT * WHERE { ?s ex:p ?a . ?s ex:q ?b . ?s ex:r ?c }"
        )
        assert classify_patterns(patterns) is QueryShape.STAR

    def test_star_requires_variable_subject(self):
        patterns = patterns_of(
            "SELECT * WHERE { ex:x ex:p ?a . ex:x ex:q ?b }"
        )
        assert classify_patterns(patterns) is not QueryShape.STAR

    def test_linear(self):
        patterns = patterns_of(
            "SELECT * WHERE { ?a ex:p ?b . ?b ex:q ?c . ?c ex:r ?d }"
        )
        assert classify_patterns(patterns) is QueryShape.LINEAR

    def test_linear_order_independent(self):
        patterns = patterns_of(
            "SELECT * WHERE { ?b ex:q ?c . ?a ex:p ?b . ?c ex:r ?d }"
        )
        assert classify_patterns(patterns) is QueryShape.LINEAR

    def test_snowflake(self):
        patterns = patterns_of(
            "SELECT * WHERE { ?s ex:p ?a . ?s ex:link ?t . "
            "?t ex:q ?b . ?t ex:r ?c . ?s ex:w ?d }"
        )
        assert classify_patterns(patterns) is QueryShape.SNOWFLAKE

    def test_complex_object_object(self):
        patterns = patterns_of(
            "SELECT * WHERE { ?a ex:p ?x . ?b ex:q ?x }"
        )
        assert classify_patterns(patterns) is QueryShape.COMPLEX

    def test_complex_disconnected(self):
        patterns = patterns_of(
            "SELECT * WHERE { ?a ex:p ?b . ?c ex:q ?d }"
        )
        assert classify_patterns(patterns) is QueryShape.COMPLEX

    def test_classify_shape_on_query(self):
        query = parse_sparql(
            PREFIX + "SELECT * WHERE { ?s ex:p ?a . ?s ex:q ?b }"
        )
        assert classify_shape(query) is QueryShape.STAR

    def test_join_edges_kinds(self):
        star = patterns_of("SELECT * WHERE { ?s ex:p ?a . ?s ex:q ?b }")
        assert join_edges(star)[0][3] is JoinKind.SUBJECT_SUBJECT
        chain = patterns_of("SELECT * WHERE { ?a ex:p ?b . ?b ex:q ?c }")
        assert join_edges(chain)[0][3] in (
            JoinKind.SUBJECT_OBJECT,
            JoinKind.OBJECT_SUBJECT,
        )
        oo = patterns_of("SELECT * WHERE { ?a ex:p ?x . ?b ex:q ?x }")
        assert join_edges(oo)[0][3] is JoinKind.OBJECT_OBJECT

    def test_predicate_join_is_other(self):
        patterns = patterns_of("SELECT * WHERE { ?a ?p ?b . ?c ?p ?d }")
        assert join_edges(patterns)[0][3] is JoinKind.OTHER


class TestFragments:
    def test_pure_bgp(self):
        query = parse_sparql(PREFIX + "SELECT ?s WHERE { ?s ex:p ?o }")
        assert fragment_of(query) is SparqlFragment.BGP

    def test_filter_is_bgp_plus(self):
        query = parse_sparql(
            PREFIX + "SELECT ?s WHERE { ?s ex:p ?o . FILTER(?o > 1) }"
        )
        assert fragment_of(query) is SparqlFragment.BGP_PLUS

    def test_modifiers_detected(self):
        query = parse_sparql(
            PREFIX
            + "SELECT DISTINCT ?s WHERE { ?s ex:p ?o } ORDER BY ?s LIMIT 1 OFFSET 1"
        )
        features = features_of(query)
        assert {"DISTINCT", "ORDER BY", "LIMIT", "OFFSET"} <= features

    def test_nested_features_found(self):
        query = parse_sparql(
            PREFIX
            + "SELECT ?s WHERE { ?s ex:p ?o . OPTIONAL { ?s ex:q ?r . FILTER(?r > 1) } }"
        )
        features = features_of(query)
        assert "OPTIONAL" in features and "FILTER" in features

    def test_union_detected(self):
        query = parse_sparql(
            PREFIX + "SELECT ?s WHERE { { ?s a ex:A } UNION { ?s a ex:B } }"
        )
        assert "UNION" in features_of(query)


class TestSolution:
    def test_bind_and_get(self):
        s = Solution().bind("x", Literal(1))
        assert s["x"] == Literal(1)
        assert s.get(Variable("x")) == Literal(1)
        assert s.get("missing") is None

    def test_immutability(self):
        s = Solution()
        with pytest.raises(AttributeError):
            s.foo = 1
        s2 = s.bind("x", Literal(1))
        assert "x" not in s and "x" in s2

    def test_compatible(self):
        a = Solution({"x": Literal(1), "y": Literal(2)})
        b = Solution({"y": Literal(2), "z": Literal(3)})
        c = Solution({"y": Literal(9)})
        assert a.compatible(b)
        assert not a.compatible(c)
        assert Solution().compatible(a)

    def test_merge(self):
        a = Solution({"x": Literal(1)})
        b = Solution({"y": Literal(2)})
        merged = a.merge(b)
        assert merged["x"] == Literal(1) and merged["y"] == Literal(2)

    def test_project(self):
        s = Solution({"x": Literal(1), "y": Literal(2)})
        assert s.project(["x", "z"]).variables() == ["x"]

    def test_equality_and_hash(self):
        assert Solution({"x": Literal(1)}) == Solution({"x": Literal(1)})
        assert len({Solution({"x": Literal(1)}), Solution({"x": Literal(1)})}) == 1


class TestSolutionSet:
    def test_multiset_same_as(self):
        a = SolutionSet(["x"], [Solution({"x": Literal(1)})] * 2)
        b = SolutionSet(["x"], [Solution({"x": Literal(1)})] * 2)
        c = SolutionSet(["x"], [Solution({"x": Literal(1)})])
        assert a.same_as(b)
        assert not a.same_as(c)  # multiplicities differ

    def test_order_irrelevant(self):
        one = Solution({"x": Literal(1)})
        two = Solution({"x": Literal(2)})
        assert SolutionSet(["x"], [one, two]).same_as(
            SolutionSet(["x"], [two, one])
        )

    def test_distinct(self):
        s = Solution({"x": Literal(1)})
        dedup = SolutionSet(["x"], [s, s]).distinct()
        assert len(dedup) == 1

    def test_to_table_respects_header(self):
        s = Solution({"x": Literal(1), "y": Literal(2)})
        table = SolutionSet(["y", "x"], [s]).to_table()
        assert table == [
            (Literal(2).n3(), Literal(1).n3()),
        ]

    def test_to_table_empty_cell_for_unbound(self):
        table = SolutionSet(["x"], [Solution()]).to_table()
        assert table == [("",)]

    def test_variables_accept_variable_objects(self):
        s = SolutionSet([Variable("x")])
        assert s.variables == ["x"]
