"""Tests for the SPARQL tokenizer and parser."""

import pytest

from repro.rdf.terms import Literal, URI
from repro.rdf.vocab import RDF
from repro.sparql.ast import (
    AskQuery,
    Comparison,
    FilterPattern,
    FunctionCall,
    OptionalPattern,
    SelectQuery,
    TriplePattern,
    UnionPattern,
    Variable,
)
from repro.sparql.parser import parse_sparql
from repro.sparql.tokenizer import SparqlParseError, tokenize

EX = "PREFIX ex: <http://x/>\n"


class TestTokenizer:
    def test_variables(self):
        tokens = tokenize("?x $y")
        assert [t.kind for t in tokens[:-1]] == ["var", "var"]

    def test_keywords_case_insensitive(self):
        tokens = tokenize("select WHERE Filter")
        assert all(t.kind == "keyword" for t in tokens[:-1])

    def test_uri_and_pname(self):
        tokens = tokenize("<http://x/a> ex:b")
        assert tokens[0].kind == "uri" and tokens[1].kind == "pname"

    def test_strings_both_quotes(self):
        tokens = tokenize("\"double\" 'single'")
        assert [t.kind for t in tokens[:-1]] == ["string", "string"]

    def test_numbers(self):
        tokens = tokenize("42 -1 3.14")
        kinds = [t.kind for t in tokens[:-1]]
        assert kinds == ["integer", "integer", "double"]

    def test_comments_skipped(self):
        tokens = tokenize("?x # trailing comment\n?y")
        assert len(tokens) == 3  # two vars + eof

    def test_operators(self):
        values = [t.value for t in tokenize("<= >= != && || !")[:-1]]
        assert values == ["<=", ">=", "!=", "&&", "||", "!"]

    def test_unknown_bare_word_raises(self):
        with pytest.raises(SparqlParseError):
            tokenize("SELECT banana")


class TestSelectParsing:
    def test_basic(self):
        query = parse_sparql(EX + "SELECT ?s WHERE { ?s ex:p ?o }")
        assert isinstance(query, SelectQuery)
        assert query.variables == [Variable("s")]
        patterns = query.where.triple_patterns()
        assert patterns == [
            TriplePattern(Variable("s"), URI("http://x/p"), Variable("o"))
        ]

    def test_select_star(self):
        query = parse_sparql(EX + "SELECT * WHERE { ?s ex:p ?o }")
        assert query.variables is None
        assert query.projected() == [Variable("s"), Variable("o")]

    def test_where_keyword_optional(self):
        query = parse_sparql(EX + "SELECT ?s { ?s ex:p ?o }")
        assert len(query.where.triple_patterns()) == 1

    def test_distinct(self):
        query = parse_sparql(EX + "SELECT DISTINCT ?s WHERE { ?s ex:p ?o }")
        assert query.distinct

    def test_semicolon_comma_shorthand(self):
        query = parse_sparql(
            EX + "SELECT * WHERE { ?s ex:p ?a, ?b ; ex:q ?c . }"
        )
        assert len(query.where.triple_patterns()) == 3

    def test_a_keyword_is_rdf_type(self):
        query = parse_sparql(EX + "SELECT ?s WHERE { ?s a ex:Person }")
        assert query.where.triple_patterns()[0].predicate == RDF.type

    def test_literals_in_object(self):
        query = parse_sparql(
            EX + 'SELECT * WHERE { ?s ex:p 5 . ?s ex:q "txt" . ?s ex:r true }'
        )
        objects = [p.object for p in query.where.triple_patterns()]
        assert objects == [Literal(5), Literal("txt"), Literal(True)]

    def test_typed_literal(self):
        query = parse_sparql(
            'PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n'
            'PREFIX ex: <http://x/>\n'
            'SELECT * WHERE { ?s ex:p "5"^^xsd:integer }'
        )
        assert query.where.triple_patterns()[0].object.to_python() == 5

    def test_lang_literal(self):
        query = parse_sparql(EX + 'SELECT * WHERE { ?s ex:p "hi"@en }')
        assert query.where.triple_patterns()[0].object.language == "en"

    def test_blank_node_becomes_internal_variable(self):
        query = parse_sparql(EX + "SELECT ?s WHERE { ?s ex:p _:b }")
        obj = query.where.triple_patterns()[0].object
        assert isinstance(obj, Variable) and obj.name.startswith("__bnode_")

    def test_bnode_not_projected_by_star(self):
        query = parse_sparql(EX + "SELECT * WHERE { ?s ex:p _:b }")
        assert query.projected() == [Variable("s")]

    def test_order_by_forms(self):
        query = parse_sparql(
            EX + "SELECT ?s WHERE { ?s ex:p ?o } ORDER BY ?o DESC(?s) ASC(?o)"
        )
        assert query.order_by == [
            (Variable("o"), True),
            (Variable("s"), False),
            (Variable("o"), True),
        ]

    def test_limit_offset_any_order(self):
        q1 = parse_sparql(EX + "SELECT ?s WHERE { ?s ex:p ?o } LIMIT 5 OFFSET 2")
        q2 = parse_sparql(EX + "SELECT ?s WHERE { ?s ex:p ?o } OFFSET 2 LIMIT 5")
        assert (q1.limit, q1.offset) == (5, 2)
        assert (q2.limit, q2.offset) == (5, 2)

    def test_ask(self):
        query = parse_sparql(EX + "ASK { ex:a ex:p ex:b }")
        assert isinstance(query, AskQuery)

    def test_missing_form_raises(self):
        with pytest.raises(SparqlParseError):
            parse_sparql(EX + "{ ?s ex:p ?o }")

    def test_unterminated_group_raises(self):
        with pytest.raises(SparqlParseError):
            parse_sparql(EX + "SELECT ?s WHERE { ?s ex:p ?o")

    def test_empty_select_raises(self):
        with pytest.raises(SparqlParseError):
            parse_sparql(EX + "SELECT WHERE { ?s ex:p ?o }")


class TestGroupStructures:
    def test_filter(self):
        query = parse_sparql(
            EX + "SELECT ?s WHERE { ?s ex:age ?a . FILTER(?a > 5) }"
        )
        filters = query.where.filters()
        assert len(filters) == 1
        assert isinstance(filters[0].expression, Comparison)

    def test_filter_builtin_without_parens(self):
        query = parse_sparql(
            EX + "SELECT ?s WHERE { ?s ex:p ?o . FILTER REGEX(?o, 'x') }"
        )
        assert isinstance(query.where.filters()[0].expression, FunctionCall)

    def test_optional(self):
        query = parse_sparql(
            EX + "SELECT ?s WHERE { ?s ex:p ?o . OPTIONAL { ?s ex:q ?r } }"
        )
        optionals = [
            e for e in query.where.elements if isinstance(e, OptionalPattern)
        ]
        assert len(optionals) == 1
        assert len(optionals[0].pattern.triple_patterns()) == 1

    def test_union(self):
        query = parse_sparql(
            EX
            + "SELECT ?s WHERE { { ?s a ex:A } UNION { ?s a ex:B } UNION { ?s a ex:C } }"
        )
        unions = [
            e for e in query.where.elements if isinstance(e, UnionPattern)
        ]
        assert len(unions) == 1
        assert len(unions[0].alternatives) == 3

    def test_nested_group(self):
        query = parse_sparql(
            EX + "SELECT ?s WHERE { { ?s ex:p ?o } ?s ex:q ?r }"
        )
        assert len(query.where.triple_patterns()) == 2

    def test_complex_filter_expression(self):
        query = parse_sparql(
            EX
            + "SELECT ?s WHERE { ?s ex:age ?a . "
            "FILTER(?a > 5 && (?a < 10 || ?a = 42) && !BOUND(?s)) }"
        )
        assert query.where.filters()

    def test_filter_in_list(self):
        query = parse_sparql(
            EX + "SELECT ?s WHERE { ?s ex:p ?o . FILTER(?o IN (1, 2, 3)) }"
        )
        assert query.where.filters()

    def test_filter_not_in(self):
        query = parse_sparql(
            EX + "SELECT ?s WHERE { ?s ex:p ?o . FILTER(?o NOT IN (1)) }"
        )
        assert query.where.filters()

    def test_arithmetic_in_filter(self):
        query = parse_sparql(
            EX + "SELECT ?s WHERE { ?s ex:p ?o . FILTER(?o * 2 + 1 > 7) }"
        )
        assert query.where.filters()

    def test_builtin_arity_checked(self):
        with pytest.raises(SparqlParseError):
            parse_sparql(EX + "SELECT ?s WHERE { ?s ex:p ?o . FILTER BOUND() }")
