"""Tests for triples (position validity) and the indexed graph."""

import pytest

from repro.rdf.graph import RDFGraph
from repro.rdf.terms import BNode, Literal, URI
from repro.rdf.triple import Triple, TripleValidityError
from repro.rdf.vocab import RDF

EX = "http://example.org/"


def uri(name):
    return URI(EX + name)


@pytest.fixture
def graph():
    g = RDFGraph()
    g.add(Triple(uri("alice"), uri("knows"), uri("bob")))
    g.add(Triple(uri("alice"), uri("age"), Literal(30)))
    g.add(Triple(uri("bob"), uri("knows"), uri("carol")))
    g.add(Triple(uri("alice"), RDF.type, uri("Person")))
    g.add(Triple(uri("bob"), RDF.type, uri("Person")))
    return g


class TestTripleValidity:
    def test_valid_forms(self):
        Triple(uri("s"), uri("p"), uri("o"))
        Triple(BNode("b"), uri("p"), Literal("x"))
        Triple(uri("s"), uri("p"), BNode("b"))

    def test_literal_subject_rejected(self):
        with pytest.raises(TripleValidityError):
            Triple(Literal("x"), uri("p"), uri("o"))

    def test_literal_predicate_rejected(self):
        with pytest.raises(TripleValidityError):
            Triple(uri("s"), Literal("p"), uri("o"))

    def test_bnode_predicate_rejected(self):
        with pytest.raises(TripleValidityError):
            Triple(uri("s"), BNode("b"), uri("o"))

    def test_tuple_protocol(self):
        t = Triple(uri("s"), uri("p"), uri("o"))
        assert t[0] == uri("s")
        assert list(t) == [uri("s"), uri("p"), uri("o")]
        assert t.as_tuple() == (uri("s"), uri("p"), uri("o"))

    def test_n3(self):
        t = Triple(uri("s"), uri("p"), Literal(1))
        assert t.n3().endswith(" .")

    def test_equality_hash_order(self):
        a = Triple(uri("s"), uri("p"), uri("o"))
        b = Triple(uri("s"), uri("p"), uri("o"))
        assert a == b and hash(a) == hash(b)
        c = Triple(uri("s"), uri("p"), uri("z"))
        assert a < c

    def test_immutable(self):
        t = Triple(uri("s"), uri("p"), uri("o"))
        with pytest.raises(AttributeError):
            t.subject = uri("x")


class TestGraphMutation:
    def test_add_and_len(self, graph):
        assert len(graph) == 5

    def test_add_duplicate_returns_false(self, graph):
        assert not graph.add(Triple(uri("alice"), uri("knows"), uri("bob")))
        assert len(graph) == 5

    def test_add_all_counts_new(self, graph):
        added = graph.add_all(
            [
                Triple(uri("alice"), uri("knows"), uri("bob")),  # dup
                Triple(uri("carol"), uri("knows"), uri("alice")),
            ]
        )
        assert added == 1

    def test_remove(self, graph):
        assert graph.remove(Triple(uri("alice"), uri("knows"), uri("bob")))
        assert len(graph) == 4
        assert not graph.remove(Triple(uri("alice"), uri("knows"), uri("bob")))

    def test_contains(self, graph):
        assert Triple(uri("alice"), uri("knows"), uri("bob")) in graph
        assert Triple(uri("bob"), uri("knows"), uri("alice")) not in graph


class TestGraphLookup:
    def test_fully_bound(self, graph):
        hits = list(graph.triples((uri("alice"), uri("knows"), uri("bob"))))
        assert len(hits) == 1

    def test_subject_bound(self, graph):
        assert len(list(graph.triples((uri("alice"), None, None)))) == 3

    def test_subject_predicate_bound(self, graph):
        hits = list(graph.triples((uri("alice"), uri("knows"), None)))
        assert [t.object for t in hits] == [uri("bob")]

    def test_predicate_bound(self, graph):
        assert len(list(graph.triples((None, uri("knows"), None)))) == 2

    def test_predicate_object_bound(self, graph):
        hits = list(graph.triples((None, RDF.type, uri("Person"))))
        assert {t.subject for t in hits} == {uri("alice"), uri("bob")}

    def test_object_bound(self, graph):
        hits = list(graph.triples((None, None, uri("bob"))))
        assert len(hits) == 1

    def test_subject_object_bound(self, graph):
        hits = list(graph.triples((uri("alice"), None, uri("bob"))))
        assert [t.predicate for t in hits] == [uri("knows")]

    def test_all_wildcards(self, graph):
        assert len(list(graph.triples((None, None, None)))) == 5

    def test_no_match_is_empty(self, graph):
        assert list(graph.triples((uri("nobody"), None, None))) == []


class TestGraphViews:
    def test_subjects_predicates_objects(self, graph):
        assert uri("alice") in graph.subjects()
        assert uri("knows") in graph.predicates()
        assert Literal(30) in graph.objects()

    def test_predicate_counts(self, graph):
        counts = graph.predicate_counts()
        assert counts[uri("knows")] == 2
        assert counts[RDF.type] == 2

    def test_types_and_instances(self, graph):
        assert graph.types_of(uri("alice")) == {uri("Person")}
        assert graph.instances_of(uri("Person")) == {
            uri("alice"),
            uri("bob"),
        }
        assert graph.classes() == {uri("Person")}

    def test_copy_is_independent(self, graph):
        clone = graph.copy()
        clone.add(Triple(uri("x"), uri("p"), uri("y")))
        assert len(clone) == len(graph) + 1

    def test_equality_is_set_based(self, graph):
        assert graph == graph.copy()
        other = graph.copy()
        other.add(Triple(uri("x"), uri("p"), uri("y")))
        assert graph != other

    def test_to_list_sorted(self, graph):
        listed = graph.to_list()
        assert listed == sorted(listed)
