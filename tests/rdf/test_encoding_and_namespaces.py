"""Tests for dictionary encoding and namespace management."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rdf.encoding import (
    Dictionary,
    encoded_volume,
    encoded_volume_ratio,
    raw_volume,
)
from repro.rdf.namespaces import Namespace, NamespaceManager
from repro.rdf.terms import Literal, URI
from repro.rdf.triple import Triple


def uri(name):
    return URI("http://example.org/long/path/segment/" + name)


class TestDictionary:
    def test_dense_first_seen_ids(self):
        d = Dictionary()
        assert d.encode_term(uri("a")) == 0
        assert d.encode_term(uri("b")) == 1
        assert d.encode_term(uri("a")) == 0
        assert len(d) == 2

    def test_decode_inverse(self):
        d = Dictionary()
        term = Literal("hello", language="en")
        assert d.decode_id(d.encode_term(term)) == term

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            Dictionary().lookup_term(uri("missing"))

    def test_contains(self):
        d = Dictionary()
        d.encode_term(uri("a"))
        assert uri("a") in d and uri("b") not in d

    def test_triple_roundtrip(self):
        d = Dictionary()
        triple = Triple(uri("s"), uri("p"), Literal(5))
        assert d.decode(d.encode(triple)) == triple

    def test_encode_all_decode_all(self):
        d = Dictionary()
        triples = [
            Triple(uri("s"), uri("p"), uri("o%d" % i)) for i in range(5)
        ]
        assert d.decode_all(d.encode_all(triples)) == triples


@given(st.lists(st.integers(0, 20), min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_encoding_roundtrip_property(indices):
    d = Dictionary()
    triples = [
        Triple(uri("s%d" % i), uri("p%d" % (i % 3)), uri("o%d" % i))
        for i in indices
    ]
    assert d.decode_all(d.encode_all(triples)) == triples


class TestVolume:
    def test_repetitive_data_shrinks(self):
        triples = [
            Triple(uri("subject"), uri("predicate"), uri("object%d" % (i % 5)))
            for i in range(100)
        ]
        assert encoded_volume_ratio(triples) > 2.0

    def test_unique_data_shrinks_little(self):
        triples = [
            Triple(uri("s%d" % i), uri("p%d" % i), uri("o%d" % i))
            for i in range(20)
        ]
        ratio = encoded_volume_ratio(triples)
        assert 0.5 < ratio < 2.0

    def test_raw_volume_positive(self):
        assert raw_volume([Triple(uri("s"), uri("p"), Literal("x"))]) > 0

    def test_empty_ratio_is_one(self):
        assert encoded_volume_ratio([]) == 1.0


class TestNamespace:
    def test_attribute_minting(self):
        ns = Namespace("http://x/")
        assert ns.knows == URI("http://x/knows")
        assert ns["knows"] == ns.knows

    def test_contains(self):
        ns = Namespace("http://x/")
        assert URI("http://x/a") in ns
        assert URI("http://y/a") not in ns

    def test_private_attribute_not_minted(self):
        ns = Namespace("http://x/")
        with pytest.raises(AttributeError):
            ns._secret


class TestNamespaceManager:
    def test_expand(self):
        manager = NamespaceManager()
        manager.bind("ex", "http://x/")
        assert manager.expand("ex:alice") == URI("http://x/alice")

    def test_expand_unknown_prefix_raises(self):
        with pytest.raises(KeyError):
            NamespaceManager().expand("nope:x")

    def test_expand_requires_colon(self):
        with pytest.raises(ValueError):
            NamespaceManager().expand("plain")

    def test_shrink(self):
        manager = NamespaceManager()
        manager.bind("ex", "http://x/")
        assert manager.shrink(URI("http://x/alice")) == "ex:alice"
        assert manager.shrink(URI("http://other/alice")) is None

    def test_shrink_rejects_nested_paths(self):
        manager = NamespaceManager()
        manager.bind("ex", "http://x/")
        assert manager.shrink(URI("http://x/a/b")) is None

    def test_shrink_prefers_shortest(self):
        manager = NamespaceManager()
        manager.bind("long", "http://x/")
        manager.bind("s", "http://x/")
        assert manager.shrink(URI("http://x/a")) == "s:a"
