"""Tests for RDF terms: URIs, literals, blank nodes, ordering."""

import pytest

from repro.rdf.terms import BNode, Literal, URI
from repro.rdf.vocab import XSD


class TestURI:
    def test_n3(self):
        assert URI("http://example.org/a").n3() == "<http://example.org/a>"

    def test_equality_and_hash(self):
        assert URI("http://x/a") == URI("http://x/a")
        assert URI("http://x/a") != URI("http://x/b")
        assert len({URI("http://x/a"), URI("http://x/a")}) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            URI("")

    def test_immutable(self):
        uri = URI("http://x/a")
        with pytest.raises(AttributeError):
            uri.value = "other"

    def test_local_name(self):
        assert URI("http://x/path#frag").local_name() == "frag"
        assert URI("http://x/path/leaf").local_name() == "leaf"
        assert URI("plain").local_name() == "plain"


class TestBNode:
    def test_explicit_label(self):
        assert BNode("b1").n3() == "_:b1"

    def test_fresh_labels_unique(self):
        assert BNode() != BNode()

    def test_equality_by_label(self):
        assert BNode("x") == BNode("x")


class TestLiteral:
    def test_plain_string(self):
        literal = Literal("hello")
        assert literal.n3() == '"hello"'
        assert literal.datatype is None

    def test_escaping(self):
        literal = Literal('say "hi"\nnow')
        assert literal.n3() == '"say \\"hi\\"\\nnow"'

    def test_integer_autotyped(self):
        literal = Literal(42)
        assert literal.lexical == "42"
        assert literal.datatype == XSD.integer
        assert literal.to_python() == 42

    def test_float_autotyped(self):
        assert Literal(2.5).to_python() == 2.5

    def test_bool_autotyped(self):
        literal = Literal(True)
        assert literal.lexical == "true"
        assert literal.to_python() is True

    def test_language_tag(self):
        literal = Literal("bonjour", language="fr")
        assert literal.n3() == '"bonjour"@fr'

    def test_datatype_and_language_mutually_exclusive(self):
        with pytest.raises(ValueError):
            Literal("x", datatype=XSD.string, language="en")

    def test_typed_n3(self):
        assert Literal(7).n3().endswith("XMLSchema#integer>")

    def test_equality_considers_datatype(self):
        assert Literal("5") != Literal(5)
        assert Literal(5) == Literal(5)


class TestOrdering:
    def test_kind_order_bnode_uri_literal(self):
        bnode, uri, literal = BNode("a"), URI("http://x/a"), Literal("a")
        assert sorted([literal, uri, bnode]) == [bnode, uri, literal]

    def test_numeric_literals_sort_numerically(self):
        assert Literal(2) < Literal(10)

    def test_strings_sort_lexically(self):
        assert Literal("apple") < Literal("banana")

    def test_numbers_sort_before_strings(self):
        assert Literal(999) < Literal("a")

    def test_uris_sort_by_value(self):
        assert URI("http://a") < URI("http://b")

    def test_comparison_with_non_term(self):
        assert URI("http://a").__lt__(42) is NotImplemented
