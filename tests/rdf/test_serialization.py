"""Tests for N-Triples and Turtle parsing/serialization, incl. roundtrips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rdf.graph import RDFGraph
from repro.rdf.ntriples import (
    NTriplesParseError,
    load_ntriples_file,
    parse_ntriples,
    parse_ntriples_line,
    save_ntriples_file,
    serialize_ntriples,
)
from repro.rdf.terms import BNode, Literal, URI
from repro.rdf.triple import Triple
from repro.rdf.turtle import TurtleParseError, parse_turtle, serialize_turtle
from repro.rdf.namespaces import NamespaceManager


class TestNTriplesParsing:
    def test_basic_triple(self):
        t = parse_ntriples_line("<http://x/s> <http://x/p> <http://x/o> .")
        assert t == Triple(URI("http://x/s"), URI("http://x/p"), URI("http://x/o"))

    def test_literal_object(self):
        t = parse_ntriples_line('<http://x/s> <http://x/p> "hello" .')
        assert t.object == Literal("hello")

    def test_typed_literal(self):
        t = parse_ntriples_line(
            '<http://x/s> <http://x/p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .'
        )
        assert t.object.to_python() == 5

    def test_language_literal(self):
        t = parse_ntriples_line('<http://x/s> <http://x/p> "bonjour"@fr .')
        assert t.object.language == "fr"

    def test_bnode_subject_and_object(self):
        t = parse_ntriples_line("_:a <http://x/p> _:b .")
        assert t.subject == BNode("a") and t.object == BNode("b")

    def test_escapes(self):
        t = parse_ntriples_line(r'<http://x/s> <http://x/p> "line\nquote\"tab\t" .')
        assert t.object.lexical == 'line\nquote"tab\t'

    def test_unicode_escape(self):
        t = parse_ntriples_line(r'<http://x/s> <http://x/p> "é" .')
        assert t.object.lexical == "é"

    def test_comments_and_blank_lines_skipped(self):
        graph = parse_ntriples("# comment\n\n<http://x/s> <http://x/p> <http://x/o> .\n")
        assert len(graph) == 1

    def test_missing_dot_raises(self):
        with pytest.raises(NTriplesParseError):
            parse_ntriples_line("<http://x/s> <http://x/p> <http://x/o>")

    def test_invalid_subject_raises(self):
        with pytest.raises(NTriplesParseError):
            parse_ntriples_line('"literal" <http://x/p> <http://x/o> .')

    def test_error_reports_line_number(self):
        with pytest.raises(NTriplesParseError) as info:
            parse_ntriples("<http://x/s> <http://x/p> <http://x/o> .\nbad line\n")
        assert info.value.line_number == 2

    def test_file_roundtrip(self, tmp_path):
        graph = RDFGraph(
            [
                Triple(URI("http://x/s"), URI("http://x/p"), Literal(1)),
                Triple(URI("http://x/s"), URI("http://x/p"), Literal("text")),
            ]
        )
        path = tmp_path / "out.nt"
        written = save_ntriples_file(str(path), graph)
        assert written == 2
        assert load_ntriples_file(str(path)) == graph


_uris = st.sampled_from(
    [URI("http://x/%s" % c) for c in "abcdefgh"]
)
_literals = st.one_of(
    st.text(
        alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
        max_size=12,
    ).map(Literal),
    st.integers(-1000, 1000).map(Literal),
    st.booleans().map(Literal),
)
_subjects = st.one_of(_uris, st.sampled_from([BNode("b1"), BNode("b2")]))
_objects = st.one_of(_uris, _literals, st.just(BNode("b3")))
_triples = st.builds(Triple, _subjects, _uris, _objects)


@given(st.lists(_triples, max_size=25))
@settings(max_examples=80, deadline=None)
def test_ntriples_roundtrip_property(triples):
    graph = RDFGraph(triples)
    assert parse_ntriples(serialize_ntriples(graph)) == graph


class TestTurtle:
    def test_prefixes_and_a(self):
        graph = parse_turtle(
            """
            @prefix ex: <http://x/> .
            ex:alice a ex:Person .
            """
        )
        assert len(graph) == 1
        triple = next(iter(graph))
        assert triple.predicate.value.endswith("#type")

    def test_semicolon_and_comma(self):
        graph = parse_turtle(
            """
            @prefix ex: <http://x/> .
            ex:a ex:p ex:b, ex:c ; ex:q "v" .
            """
        )
        assert len(graph) == 3

    def test_literals(self):
        graph = parse_turtle(
            """
            @prefix ex: <http://x/> .
            ex:a ex:num 5 ; ex:pi 3.14 ; ex:flag true ; ex:s "str" .
            """
        )
        objects = {t.object.to_python() for t in graph}
        assert objects == {5, 3.14, True, "str"}

    def test_typed_and_lang_literals(self):
        graph = parse_turtle(
            """
            @prefix ex: <http://x/> .
            @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
            ex:a ex:p "5"^^xsd:integer ; ex:q "hi"@en .
            """
        )
        literals = {t.object for t in graph}
        assert Literal("hi", language="en") in literals

    def test_full_uris(self):
        graph = parse_turtle("<http://x/s> <http://x/p> <http://x/o> .")
        assert len(graph) == 1

    def test_unbound_prefix_raises(self):
        with pytest.raises(KeyError):
            parse_turtle("ex:a ex:p ex:b .")

    def test_garbage_raises(self):
        with pytest.raises(TurtleParseError):
            parse_turtle("@prefix ex <oops>")

    def test_serialize_groups_subjects(self):
        manager = NamespaceManager()
        manager.bind("ex", "http://x/")
        graph = parse_turtle(
            "@prefix ex: <http://x/> . ex:a ex:p ex:b ; ex:q ex:c ."
        )
        text = serialize_turtle(graph, manager)
        assert text.count("ex:a") == 1
        assert ";" in text

    def test_turtle_roundtrip(self):
        source = """
        @prefix ex: <http://x/> .
        ex:alice a ex:Person ; ex:age 30 ; ex:knows ex:bob .
        ex:bob ex:name "Bob" .
        """
        graph = parse_turtle(source)
        manager = NamespaceManager()
        manager.bind("ex", "http://x/")
        assert parse_turtle(serialize_turtle(graph, manager)) == graph
