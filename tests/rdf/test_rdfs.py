"""Tests for RDFS entailment rules."""

import pytest

from repro.rdf.graph import RDFGraph
from repro.rdf.rdfs import RDFSReasoner
from repro.rdf.terms import Literal, URI
from repro.rdf.triple import Triple
from repro.rdf.vocab import RDF, RDFS

EX = "http://example.org/"


def uri(name):
    return URI(EX + name)


class TestIndividualRules:
    def test_rdfs2_domain(self):
        graph = RDFGraph(
            [
                Triple(uri("knows"), RDFS.domain, uri("Person")),
                Triple(uri("a"), uri("knows"), uri("b")),
            ]
        )
        closure = RDFSReasoner().materialize(graph)
        assert Triple(uri("a"), RDF.type, uri("Person")) in closure

    def test_rdfs3_range(self):
        graph = RDFGraph(
            [
                Triple(uri("knows"), RDFS.range, uri("Person")),
                Triple(uri("a"), uri("knows"), uri("b")),
            ]
        )
        closure = RDFSReasoner().materialize(graph)
        assert Triple(uri("b"), RDF.type, uri("Person")) in closure

    def test_rdfs3_skips_literal_objects(self):
        graph = RDFGraph(
            [
                Triple(uri("age"), RDFS.range, uri("Number")),
                Triple(uri("a"), uri("age"), Literal(5)),
            ]
        )
        closure = RDFSReasoner().materialize(graph)
        assert len(closure) == len(graph)

    def test_rdfs5_subproperty_transitivity(self):
        graph = RDFGraph(
            [
                Triple(uri("p"), RDFS.subPropertyOf, uri("q")),
                Triple(uri("q"), RDFS.subPropertyOf, uri("r")),
            ]
        )
        closure = RDFSReasoner().materialize(graph)
        assert Triple(uri("p"), RDFS.subPropertyOf, uri("r")) in closure

    def test_rdfs7_subproperty_usage(self):
        graph = RDFGraph(
            [
                Triple(uri("p"), RDFS.subPropertyOf, uri("q")),
                Triple(uri("a"), uri("p"), uri("b")),
            ]
        )
        closure = RDFSReasoner().materialize(graph)
        assert Triple(uri("a"), uri("q"), uri("b")) in closure

    def test_rdfs9_subclass_instances(self):
        graph = RDFGraph(
            [
                Triple(uri("Student"), RDFS.subClassOf, uri("Person")),
                Triple(uri("a"), RDF.type, uri("Student")),
            ]
        )
        closure = RDFSReasoner().materialize(graph)
        assert Triple(uri("a"), RDF.type, uri("Person")) in closure

    def test_rdfs11_subclass_transitivity(self):
        graph = RDFGraph(
            [
                Triple(uri("A"), RDFS.subClassOf, uri("B")),
                Triple(uri("B"), RDFS.subClassOf, uri("C")),
            ]
        )
        closure = RDFSReasoner().materialize(graph)
        assert Triple(uri("A"), RDFS.subClassOf, uri("C")) in closure


class TestClosureBehaviour:
    def test_multi_step_chain(self):
        graph = RDFGraph(
            [
                Triple(uri("A"), RDFS.subClassOf, uri("B")),
                Triple(uri("B"), RDFS.subClassOf, uri("C")),
                Triple(uri("C"), RDFS.subClassOf, uri("D")),
                Triple(uri("x"), RDF.type, uri("A")),
            ]
        )
        closure = RDFSReasoner().materialize(graph)
        assert Triple(uri("x"), RDF.type, uri("D")) in closure

    def test_input_not_modified(self):
        graph = RDFGraph(
            [
                Triple(uri("A"), RDFS.subClassOf, uri("B")),
                Triple(uri("x"), RDF.type, uri("A")),
            ]
        )
        RDFSReasoner().materialize(graph)
        assert len(graph) == 2

    def test_derived_triples_only_new(self):
        graph = RDFGraph(
            [
                Triple(uri("A"), RDFS.subClassOf, uri("B")),
                Triple(uri("x"), RDF.type, uri("A")),
            ]
        )
        derived = RDFSReasoner().derived_triples(graph)
        assert derived == [Triple(uri("x"), RDF.type, uri("B"))]

    def test_idempotent(self):
        graph = RDFGraph(
            [
                Triple(uri("A"), RDFS.subClassOf, uri("B")),
                Triple(uri("x"), RDF.type, uri("A")),
            ]
        )
        reasoner = RDFSReasoner()
        once = reasoner.materialize(graph)
        twice = reasoner.materialize(once)
        assert once == twice

    def test_rule_selection(self):
        graph = RDFGraph(
            [
                Triple(uri("A"), RDFS.subClassOf, uri("B")),
                Triple(uri("x"), RDF.type, uri("A")),
                Triple(uri("p"), RDFS.domain, uri("D")),
                Triple(uri("x"), uri("p"), uri("y")),
            ]
        )
        only_subclass = RDFSReasoner(enabled_rules=["rdfs9"]).materialize(graph)
        assert Triple(uri("x"), RDF.type, uri("B")) in only_subclass
        assert Triple(uri("x"), RDF.type, uri("D")) not in only_subclass

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError):
            RDFSReasoner(enabled_rules=["rdfs99"])

    def test_cycle_terminates(self):
        graph = RDFGraph(
            [
                Triple(uri("A"), RDFS.subClassOf, uri("B")),
                Triple(uri("B"), RDFS.subClassOf, uri("A")),
                Triple(uri("x"), RDF.type, uri("A")),
            ]
        )
        closure = RDFSReasoner().materialize(graph)
        assert Triple(uri("x"), RDF.type, uri("B")) in closure

    def test_lubm_tbox_entailment(self, lubm_graph_with_tbox):
        from repro.data.lubm import LUBM

        closure = RDFSReasoner().materialize(lubm_graph_with_tbox)
        # Every graduate student becomes a Student and a Person.
        grads = lubm_graph_with_tbox.instances_of(LUBM.GraduateStudent)
        assert grads
        for grad in grads:
            assert Triple(grad, RDF.type, LUBM.Student) in closure
            assert Triple(grad, RDF.type, LUBM.Person) in closure
