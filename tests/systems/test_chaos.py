"""Chaos determinism: seeded fault schedules must be invisible in answers,
visible in recovery counters, conserved in traces, and byte-reproducible.

This is the executable form of the survey's fault-tolerance column: every
engine runs under an adversarial (but seeded, hence deterministic)
schedule of task failures, partition losses, and stragglers, and must
return exactly the fault-free answers while the recovery machinery --
retries, lineage recomputation, speculation -- does its work on the
counters and in the trace tree.
"""

import json

import pytest

from repro.data.lubm import LubmGenerator
from repro.explain import EngineExplain, verify_conservation
from repro.spark.context import SparkContext
from repro.spark.faults import FaultScheduler
from repro.spark.parallel import parallel_available
from repro.spark.tracing import normalize_spans
from repro.sparql.parser import parse_sparql
from repro.systems import (
    ALL_ENGINE_CLASSES,
    NaiveEngine,
    S2RdfEngine,
    SparqlgxEngine,
)

needs_fork = pytest.mark.skipif(
    not parallel_available(),
    reason="parallel backend needs the fork start method",
)

ENGINES = (NaiveEngine,) + ALL_ENGINE_CLASSES

#: High enough rates that every engine hits faults on the workload, with
#: an attempt budget making permanent failure astronomically unlikely.
CHAOS_SPEC = "fail:p=0.35;lose:p=0.4;straggle:p=0.15,delay=2;seed=%d"
MAX_ATTEMPTS = 12

STAR = LubmGenerator.query_star()


def engine_id(cls):
    return cls.profile.name


def canonical(solution_set):
    return sorted(
        tuple(sorted((name, term.n3()) for name, term in solution.items()))
        for solution in solution_set
    )


def chaos_run(
    engine_class,
    graph,
    query_text,
    seed,
    trace=False,
    backend="inprocess",
    workers=None,
):
    """One engine execution under the seeded chaos schedule.

    Returns (canonical rows, marginal metrics delta, context).  Tracing,
    when requested, brackets only the query (not the load), and uses the
    traced driver path that caches operator outputs -- which is exactly
    what gives ``lose`` events cached partitions to evict.

    ``backend``/``workers`` put the same seeded schedule under the
    parallel executor: fault decisions are pure functions of
    (seed, kind, stage, partition, attempt), so workers reproduce the
    serial decisions and the recovery counters must reconcile exactly.
    """
    sc = SparkContext(
        4,
        faults=FaultScheduler.from_spec(CHAOS_SPEC % seed),
        max_task_attempts=MAX_ATTEMPTS,
        speculation=True,
        backend=backend,
        workers=workers,
    )
    engine = engine_class(sc)
    engine.load(graph)
    if trace:
        sc.tracer.clear().enable()
    before = sc.metrics.snapshot()
    result = engine.execute(query_text)
    delta = sc.metrics.snapshot() - before
    if trace:
        sc.tracer.disable()
    return canonical(result), delta, sc


@pytest.fixture(scope="module")
def fault_free_star(lubm_graph):
    engine = NaiveEngine(SparkContext(4))
    engine.load(lubm_graph)
    return canonical(engine.execute(STAR))


@pytest.mark.parametrize("engine_class", ENGINES, ids=engine_id)
def test_chaos_preserves_answers_on_every_engine(
    engine_class, lubm_graph, fault_free_star
):
    rows, delta, _sc = chaos_run(engine_class, lubm_graph, STAR, seed=7)
    assert rows == fault_free_star
    # The schedule actually bit: failures happened and were retried away.
    assert delta.tasks_failed > 0
    assert delta.tasks_retried == delta.tasks_failed  # none became permanent


def test_chaos_results_byte_identical_to_fault_free(lubm_graph):
    plain = SparqlgxEngine(SparkContext(4))
    plain.load(lubm_graph)
    reference = json.dumps(canonical(plain.execute(STAR)))
    rows, _delta, _sc = chaos_run(SparqlgxEngine, lubm_graph, STAR, seed=3)
    assert json.dumps(rows) == reference


@pytest.mark.parametrize("seed", [3, 7, 23])
def test_same_seed_reproduces_counters_exactly(lubm_graph, seed):
    _rows, first, _sc = chaos_run(SparqlgxEngine, lubm_graph, STAR, seed)
    _rows, second, _sc = chaos_run(SparqlgxEngine, lubm_graph, STAR, seed)
    assert dict(first) == dict(second)


def test_same_seed_reproduces_trace_json_byte_identically(lubm_graph):
    traces = []
    for _ in range(2):
        _rows, _delta, sc = chaos_run(
            SparqlgxEngine, lubm_graph, STAR, seed=7, trace=True
        )
        traces.append(sc.tracer.to_json())
    assert traces[0] == traces[1]
    payload = json.loads(traces[0])
    kinds = set()

    def walk(span):
        kinds.add(span["kind"])
        for child in span.get("children", ()):
            walk(child)

    for span in payload["spans"]:
        walk(span)
    # The schedule's events are in the trace, not just in flat counters.
    assert "fault" in kinds and "retry" in kinds


def test_conservation_holds_with_recovery_spans(lubm_graph):
    _rows, delta, sc = chaos_run(
        SparqlgxEngine, lubm_graph, STAR, seed=7, trace=True
    )
    run = EngineExplain(
        engine="SPARQLGX",
        supported=True,
        rows=None,
        spans=list(sc.tracer.roots),
        totals=delta,
    )
    mismatches = verify_conservation(run)
    assert mismatches == {}, "span deltas diverge from totals: %r" % mismatches
    # Recovery counters participate in the conserved decomposition.
    assert delta.tasks_failed > 0
    flat = {counter: value for counter, value in delta if value}
    assert "tasks_failed" in flat


@needs_fork
@pytest.mark.parametrize("seed", [3, 7])
@pytest.mark.parametrize("workers", [2, 4])
def test_parallel_chaos_reconciles_with_inprocess(
    lubm_graph, seed, workers
):
    # Same seed, same schedule: the forked pool must land on the exact
    # answers and the exact recovery counters the serial oracle reports.
    rows_serial, delta_serial, _sc = chaos_run(
        SparqlgxEngine, lubm_graph, STAR, seed=seed
    )
    rows_parallel, delta_parallel, _sc = chaos_run(
        SparqlgxEngine,
        lubm_graph,
        STAR,
        seed=seed,
        backend="parallel",
        workers=workers,
    )
    assert rows_parallel == rows_serial
    assert dict(delta_parallel) == dict(delta_serial)
    # The reconciliation is not vacuous: the schedule actually bit.
    assert delta_parallel.tasks_failed > 0
    assert delta_parallel.tasks_retried == delta_parallel.tasks_failed


@needs_fork
@pytest.mark.parametrize(
    "engine_class", [NaiveEngine, S2RdfEngine], ids=engine_id
)
def test_parallel_chaos_traces_normalize_identically(
    lubm_graph, engine_class
):
    # Span ``seq`` numbers and cross-task sibling order are the only
    # concurrency-nondeterministic trace fields (docs/PARALLEL.md);
    # after normalize_spans() the trees must be equal, retry spans and
    # all.
    _rows, delta_serial, sc_serial = chaos_run(
        engine_class, lubm_graph, STAR, seed=7, trace=True
    )
    _rows, delta_parallel, sc_parallel = chaos_run(
        engine_class,
        lubm_graph,
        STAR,
        seed=7,
        trace=True,
        backend="parallel",
        workers=2,
    )
    serial_spans = normalize_spans(sc_serial.tracer.roots)
    parallel_spans = normalize_spans(sc_parallel.tracer.roots)
    assert parallel_spans == serial_spans
    assert dict(delta_parallel) == dict(delta_serial)

    kinds = set()

    def walk(span):
        kinds.add(span["kind"])
        for child in span.get("children", ()):
            walk(child)

    for span in parallel_spans:
        walk(span)
    assert "fault" in kinds and "retry" in kinds


@needs_fork
@pytest.mark.slow
@pytest.mark.parametrize("engine_class", ENGINES, ids=engine_id)
def test_parallel_chaos_preserves_answers_on_every_engine(
    engine_class, lubm_graph, fault_free_star
):
    rows, delta, _sc = chaos_run(
        engine_class,
        lubm_graph,
        STAR,
        seed=7,
        backend="parallel",
        workers=2,
    )
    assert rows == fault_free_star
    assert delta.tasks_failed > 0
    assert delta.tasks_retried == delta.tasks_failed


def test_partition_loss_recovery_fires_under_traced_chaos(lubm_graph):
    # Traced execution caches operator outputs, so a lose-heavy schedule
    # must evict some of them and trigger lineage recomputation.
    _rows, delta, _sc = chaos_run(
        SparqlgxEngine, lubm_graph, STAR, seed=7, trace=True
    )
    assert delta.partitions_recomputed > 0
    assert delta.recompute_comparisons > 0
