"""Mechanism tests for the graph-model engines: S2X, Kassaie's matcher,
Spar(k)ql, the GraphFrames system and SparkRDF.
"""

import pytest

from repro.data.lubm import LUBM, LubmGenerator
from repro.rdf.vocab import RDF
from repro.spark.context import SparkContext
from repro.sparql.parser import parse_sparql
from repro.systems.graphframes_sys import GraphFramesEngine
from repro.systems.graphx_sgm import (
    GraphXSubgraphEngine,
    decompose_into_paths,
)
from repro.systems.s2x import S2XEngine
from repro.systems.sparkql import SparkqlEngine
from repro.systems.sparkrdf import SparkRdfMesgEngine
from tests.systems.conftest import assert_engine_matches_reference

PREFIX = (
    "PREFIX lubm: <http://repro.example.org/lubm#>\n"
    "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
)

LINEAR = LubmGenerator.query_linear()
STAR = LubmGenerator.query_star()


class TestS2X:
    @pytest.fixture
    def engine(self, lubm_graph):
        eng = S2XEngine(SparkContext(4))
        eng.load(lubm_graph)
        return eng

    def test_property_graph_includes_literal_vertices(self, engine, lubm_graph):
        assert engine.graph.num_vertices() == len(
            lubm_graph.subjects() | lubm_graph.objects()
        )
        assert engine.graph.num_edges() == len(lubm_graph)

    def test_validation_iterates_to_fixpoint(self, engine, lubm_graph):
        assert_engine_matches_reference(engine, lubm_graph, LINEAR)
        assert engine.last_validation_rounds >= 1

    def test_validation_prunes_candidates(self, engine, lubm_graph):
        # A chain where few advisor edges continue to worksFor: at least
        # one validation round must discard something (rounds > 1 means a
        # change occurred in round 1).
        assert_engine_matches_reference(
            engine, lubm_graph, LubmGenerator.query_snowflake()
        )
        assert engine.last_validation_rounds >= 2

    def test_star_correct(self, engine, lubm_graph):
        assert_engine_matches_reference(engine, lubm_graph, STAR)


class TestKassaieSubgraphMatcher:
    def test_path_decomposition_linear(self):
        query = parse_sparql(LINEAR)
        paths = decompose_into_paths(query.where.triple_patterns())
        assert len(paths) == 1
        assert len(paths[0]) == 3

    def test_path_decomposition_star(self):
        query = parse_sparql(STAR)
        paths = decompose_into_paths(query.where.triple_patterns())
        assert len(paths) == 3
        assert all(len(p) == 1 for p in paths)

    def test_path_decomposition_handles_cycles(self):
        query = parse_sparql(
            PREFIX
            + "SELECT * WHERE { ?a lubm:p ?b . ?b lubm:q ?c . ?c lubm:r ?a }"
        )
        paths = decompose_into_paths(query.where.triple_patterns())
        assert sum(len(p) for p in paths) == 3

    def test_linear_chain_correct(self, lubm_graph):
        engine = GraphXSubgraphEngine(SparkContext(4))
        engine.load(lubm_graph)
        assert_engine_matches_reference(engine, lubm_graph, LINEAR)

    def test_mt_tables_empty_for_unmatched(self, lubm_graph):
        engine = GraphXSubgraphEngine(SparkContext(4))
        engine.load(lubm_graph)
        result = engine.execute(
            PREFIX + "SELECT ?s WHERE { ?s lubm:advisor ?p . ?p lubm:advisor ?q }"
        )
        assert len(result) == 0


class TestSparkql:
    @pytest.fixture
    def engine(self, lubm_graph):
        eng = SparkqlEngine(SparkContext(4))
        eng.load(lubm_graph)
        return eng

    def test_split_object_vs_data_properties(self, engine):
        assert LUBM.advisor in engine.object_properties
        assert LUBM.age in engine.data_properties
        assert LUBM.age not in engine.object_properties

    def test_types_stored_in_nodes(self, engine, lubm_graph):
        attrs = dict(engine.graph.vertices.collect())
        student = next(iter(lubm_graph.instances_of(LUBM.GraduateStudent)))
        assert LUBM.GraduateStudent in attrs[student]["types"]

    def test_data_properties_stored_in_nodes(self, engine, lubm_graph):
        attrs = dict(engine.graph.vertices.collect())
        student = next(iter(lubm_graph.instances_of(LUBM.GraduateStudent)))
        assert LUBM.age in attrs[student]["props"]

    def test_type_edges_not_in_graph(self, engine):
        labels = {e.attr for e in engine.graph.edges.collect()}
        assert RDF.type not in labels

    def test_star_with_types_correct(self, engine, lubm_graph):
        assert_engine_matches_reference(engine, lubm_graph, STAR)

    def test_chain_correct(self, engine, lubm_graph):
        assert_engine_matches_reference(engine, lubm_graph, LINEAR)

    def test_type_variable_falls_back(self, engine, lubm_graph):
        assert_engine_matches_reference(
            engine, lubm_graph, PREFIX + "SELECT ?s ?t WHERE { ?s rdf:type ?t }"
        )

    def test_bfs_order_root_is_most_connected(self):
        query = parse_sparql(LubmGenerator.query_snowflake())
        edges = [
            p
            for p in query.where.triple_patterns()
            if p.predicate
            in (LUBM.memberOf, LUBM.advisor, LUBM.worksFor, LUBM.teacherOf)
        ]
        plan = SparkqlEngine._bfs_order(edges)
        assert len(plan) == len(edges)


class TestGraphFramesEngine:
    @pytest.fixture
    def engine(self, lubm_graph):
        eng = GraphFramesEngine(SparkContext(4))
        eng.load(lubm_graph)
        return eng

    def test_predicate_frequency_ordering(self, engine):
        query = parse_sparql(LubmGenerator.query_snowflake())
        ordered = engine._order_patterns(query.where.triple_patterns())
        frequencies = [
            engine.predicate_frequency.get(p.predicate, 0) for p in ordered
        ]
        assert frequencies == sorted(frequencies)

    def test_local_search_space_pruning(self, engine, lubm_graph):
        query = parse_sparql(LINEAR)
        engine.execute(query)
        assert engine.last_pruned_edge_count < len(lubm_graph)

    def test_no_pruning_with_variable_predicate(self, engine, lubm_graph):
        engine.execute(
            PREFIX + "SELECT ?p WHERE { ?s ?p ?o }"
        )
        assert engine.last_pruned_edge_count == len(lubm_graph)

    def test_motif_translation_correct(self, engine, lubm_graph):
        assert_engine_matches_reference(engine, lubm_graph, LINEAR)
        assert_engine_matches_reference(engine, lubm_graph, STAR)

    def test_constant_endpoints(self, engine, lubm_graph):
        dept = next(
            iter(lubm_graph.triples((None, LUBM.subOrganizationOf, None)))
        )
        query = PREFIX + (
            "SELECT ?d WHERE { ?d lubm:subOrganizationOf %s }"
            % dept.object.n3()
        )
        assert_engine_matches_reference(engine, lubm_graph, query)


class TestSparkRdfMesg:
    @pytest.fixture
    def engine(self, lubm_graph):
        eng = SparkRdfMesgEngine(SparkContext(4))
        eng.load(lubm_graph)
        return eng

    def test_mesg_levels_built(self, engine):
        assert engine.class_index
        assert engine.relation_index
        assert engine.cr_index
        assert engine.rc_index
        assert engine.crc_index

    def test_crc_narrower_than_relation(self, engine):
        # takesCourse: Student x Course.  CRC file must be no larger than
        # the whole relation file.
        relation = engine.relation_index[LUBM.takesCourse]
        crc = engine.crc_index[
            (LUBM.UndergraduateStudent, LUBM.takesCourse, LUBM.Course)
        ]
        assert 0 < len(crc) < len(relation)

    def test_class_constraint_selects_narrow_index(self, engine, lubm_graph):
        query = PREFIX + """
        SELECT ?s ?c WHERE {
          ?s rdf:type lubm:GraduateStudent .
          ?s lubm:takesCourse ?c .
        }
        """
        assert_engine_matches_reference(engine, lubm_graph, query)
        assert engine.last_index_reads.get("CR", 0) > 0
        assert engine.last_index_reads.get("REL", 0) == 0

    def test_type_pattern_removed_but_verified(self, engine, lubm_graph):
        # Multi-class safety: constraints checked on every binding.
        query = PREFIX + """
        SELECT ?s ?d WHERE {
          ?s rdf:type lubm:GraduateStudent .
          ?s lubm:memberOf ?d .
          ?d rdf:type lubm:Department .
        }
        """
        assert_engine_matches_reference(engine, lubm_graph, query)
        assert engine.last_index_reads.get("CRC", 0) > 0

    def test_index_reads_smaller_than_full_scan(self, engine, lubm_graph):
        query = PREFIX + """
        SELECT ?s ?c WHERE {
          ?s rdf:type lubm:GraduateStudent .
          ?s lubm:takesCourse ?c .
        }
        """
        engine.execute(query)
        total_reads = sum(engine.last_index_reads.values())
        assert total_reads < len(lubm_graph)

    def test_pure_type_query_uses_class_index(self, engine, lubm_graph):
        query = PREFIX + "SELECT ?s WHERE { ?s rdf:type lubm:Course }"
        assert_engine_matches_reference(engine, lubm_graph, query)
        assert engine.last_index_reads.get("CLASS", 0) > 0

    def test_prepartitioned_joins_stay_local(self, engine, lubm_graph):
        sc = engine.ctx
        before = sc.metrics.snapshot()
        engine.execute(STAR)
        cost = sc.metrics.snapshot() - before
        # Dynamic pre-partitioning: join input already placed by the join
        # variable, so (nearly) nothing crosses executors.
        assert cost.shuffle_records > 0
        assert cost.locality_fraction() > 0.9

    def test_variable_predicate_reads_level_one(self, engine, lubm_graph):
        assert_engine_matches_reference(
            engine, lubm_graph, PREFIX + "SELECT ?p WHERE { ?s ?p ?o }"
        )
        assert engine.last_index_reads.get("REL", 0) > 0
