"""Shared helpers for engine tests."""

from __future__ import annotations

import pytest

from repro.spark.context import SparkContext
from repro.sparql.algebra import evaluate
from repro.sparql.parser import parse_sparql


def assert_engine_matches_reference(engine, graph, query_text):
    """Run a query on the engine and on the reference; compare multisets."""
    query = parse_sparql(query_text)
    expected = evaluate(query, graph)
    actual = engine.execute(query)
    assert actual.same_as(expected), (
        "engine %s disagrees with reference on:\n%s\n"
        "engine rows=%d reference rows=%d"
        % (engine.profile.name, query_text, len(actual), len(expected))
    )
    return actual


@pytest.fixture
def loaded(request, lubm_graph):
    """Parametrize with an engine class to get it loaded on LUBM data."""
    engine_class = request.param
    engine = engine_class(SparkContext(4))
    engine.load(lubm_graph)
    return engine
