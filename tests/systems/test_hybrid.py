"""Hybrid-engine tests: the four strategies of [21] and their costs."""

import pytest

from repro.data.lubm import LubmGenerator
from repro.spark.context import SparkContext
from repro.sparql.parser import parse_sparql
from repro.systems.hybrid import HybridEngine, JoinStrategy
from tests.systems.conftest import assert_engine_matches_reference

PREFIX = (
    "PREFIX lubm: <http://repro.example.org/lubm#>\n"
    "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
)

STAR = PREFIX + """
SELECT ?s ?d ?a WHERE {
  ?s rdf:type lubm:GraduateStudent .
  ?s lubm:memberOf ?d .
  ?s lubm:age ?a .
}
"""

SNOWFLAKE = LubmGenerator.query_snowflake()

DISCONNECTED = PREFIX + """
SELECT ?u ?d WHERE {
  ?u rdf:type lubm:University .
  ?d rdf:type lubm:Department .
}
"""


def build(lubm_graph, strategy, **kwargs):
    engine = HybridEngine(SparkContext(4), strategy=strategy, **kwargs)
    engine.load(lubm_graph)
    return engine


def run_cost(engine, query):
    before = engine.ctx.metrics.snapshot()
    engine.execute(query)
    return engine.ctx.metrics.snapshot() - before


class TestCorrectnessPerStrategy:
    @pytest.mark.parametrize("strategy", list(JoinStrategy), ids=lambda s: s.value)
    @pytest.mark.parametrize("query", [STAR, SNOWFLAKE, DISCONNECTED],
                             ids=["star", "snowflake", "disconnected"])
    def test_all_strategies_agree_with_reference(
        self, lubm_graph, strategy, query
    ):
        engine = build(lubm_graph, strategy)
        assert_engine_matches_reference(engine, lubm_graph, query)


class TestStrategyCostProperties:
    def test_rdd_strategy_never_broadcasts(self, lubm_graph):
        engine = build(lubm_graph, JoinStrategy.RDD)
        cost = run_cost(engine, SNOWFLAKE)
        assert cost.broadcast_bytes == 0
        assert cost.shuffle_records > 0

    def test_dataframe_strategy_broadcasts_small_sides(self, lubm_graph):
        engine = build(
            lubm_graph, JoinStrategy.DATAFRAME, broadcast_threshold=10**6
        )
        cost = run_cost(engine, SNOWFLAKE)
        assert cost.broadcast_bytes > 0

    def test_dataframe_threshold_zero_degrades_to_partitioned(self, lubm_graph):
        engine = build(
            lubm_graph, JoinStrategy.DATAFRAME, broadcast_threshold=0
        )
        cost = run_cost(engine, SNOWFLAKE)
        assert cost.broadcast_bytes == 0

    def test_hybrid_exploits_subject_partitioning_on_stars(self, lubm_graph):
        hybrid = build(lubm_graph, JoinStrategy.HYBRID)
        rdd = build(lubm_graph, JoinStrategy.RDD)
        hybrid_cost = run_cost(hybrid, STAR)
        rdd_cost = run_cost(rdd, STAR)
        # Subject-subject joins stay on their executor under hybrid.
        assert (
            hybrid_cost.shuffle_remote_records
            <= rdd_cost.shuffle_remote_records
        )

    def test_hybrid_beats_rdd_on_remote_traffic_for_snowflake(self, lubm_graph):
        hybrid = build(lubm_graph, JoinStrategy.HYBRID)
        rdd = build(lubm_graph, JoinStrategy.RDD)
        assert (
            run_cost(hybrid, SNOWFLAKE).shuffle_remote_records
            <= run_cost(rdd, SNOWFLAKE).shuffle_remote_records
        )

    def test_sql_strategy_generates_self_joins(self, lubm_graph):
        engine = build(lubm_graph, JoinStrategy.SPARK_SQL)
        engine.execute(STAR)
        assert engine.last_sql.count("triples") >= 3

    def test_sql_strategy_cross_join_on_disconnected_patterns(self, lubm_graph):
        engine = build(lubm_graph, JoinStrategy.SPARK_SQL)
        engine.execute(DISCONNECTED)
        assert "CROSS JOIN" in engine.last_sql

    def test_subject_partitioned_store(self, lubm_graph):
        engine = build(lubm_graph, JoinStrategy.HYBRID)
        partitions = engine.triples.collectPartitions()
        for index, partition in enumerate(partitions):
            for s, _p, _o in partition:
                assert engine._partitioner.partition_for(s) == index

    def test_estimated_size_uses_predicate_counts(self, lubm_graph):
        engine = build(lubm_graph, JoinStrategy.HYBRID)
        query = parse_sparql(STAR)
        patterns = query.where.triple_patterns()
        for pattern in patterns:
            assert engine._estimated_size(pattern) > 0

    def test_unknown_constant_short_circuits(self, lubm_graph):
        engine = build(lubm_graph, JoinStrategy.HYBRID)
        result = engine.execute(
            PREFIX + "SELECT ?s WHERE { ?s lubm:noSuchPredicate ?o }"
        )
        assert len(result) == 0
