"""SPARQLGX mechanism tests: vertical partitioning, stats, join order."""

import pytest

from repro.data.watdiv import WATDIV, WatdivGenerator
from repro.spark.context import SparkContext
from repro.sparql.parser import parse_sparql
from repro.systems.sparqlgx import SparqlgxEngine
from tests.systems.conftest import assert_engine_matches_reference

PREFIX = "PREFIX wd: <http://repro.example.org/watdiv#>\n"


@pytest.fixture
def engine(watdiv_graph):
    eng = SparqlgxEngine(SparkContext(4))
    eng.load(watdiv_graph)
    return eng


class TestVerticalStore:
    def test_one_table_per_predicate(self, engine, watdiv_graph):
        assert set(engine.vp_tables) == watdiv_graph.predicates()

    def test_tables_hold_subject_object_pairs_only(self, engine):
        table = engine.vp_tables[WATDIV.friendOf]
        s, o = table.first()
        assert hasattr(s, "n3") and hasattr(o, "n3")

    def test_sizes_match_data(self, engine, watdiv_graph):
        counts = watdiv_graph.predicate_counts()
        for predicate, size in engine.vp_sizes.items():
            assert counts[predicate] == size

    def test_statistics_collected(self, engine, watdiv_graph):
        assert engine.stats["distinct_subjects"] == len(
            watdiv_graph.subjects()
        )
        assert engine.stats["distinct_predicates"] == len(
            watdiv_graph.predicates()
        )
        assert engine.stats["triples"] == len(watdiv_graph)


class TestScanBehaviour:
    def test_bounded_predicate_reads_one_store(self, engine):
        sc = engine.ctx
        before = sc.metrics.snapshot()
        engine.execute(PREFIX + "SELECT ?u ?f WHERE { ?u wd:friendOf ?f }")
        cost = sc.metrics.snapshot() - before
        assert cost.records_scanned <= engine.vp_sizes[WATDIV.friendOf]

    def test_unbounded_predicate_reads_everything(self, engine, watdiv_graph):
        sc = engine.ctx
        before = sc.metrics.snapshot()
        engine.execute(
            PREFIX + "SELECT ?p ?o WHERE { wd:User0 ?p ?o }"
        )
        cost = sc.metrics.snapshot() - before
        assert cost.records_scanned >= len(watdiv_graph)

    def test_unknown_predicate_is_empty(self, engine, watdiv_graph):
        assert_engine_matches_reference(
            engine,
            watdiv_graph,
            PREFIX + "SELECT ?s WHERE { ?s wd:doesNotExist ?o }",
        )


class TestJoinOrdering:
    def test_selective_pattern_estimated_smaller(self, engine):
        query = parse_sparql(
            PREFIX
            + "SELECT * WHERE { ?u wd:friendOf ?f . ?u wd:name 'User 3' }"
        )
        unselective, selective = query.where.triple_patterns()
        assert engine._estimated_cardinality(
            selective
        ) < engine._estimated_cardinality(unselective)

    def test_order_starts_with_most_selective(self, engine):
        query = parse_sparql(
            PREFIX
            + "SELECT * WHERE { ?u wd:friendOf ?f . ?u wd:name 'User 3' }"
        )
        ordered = engine._order_patterns(query.where.triple_patterns())
        assert not isinstance(ordered[0].object, type(ordered[1].object)) or \
            engine._estimated_cardinality(ordered[0]) <= \
            engine._estimated_cardinality(ordered[1])

    def test_ordering_keeps_connectivity(self, engine):
        query = parse_sparql(
            PREFIX
            + "SELECT * WHERE { ?u wd:friendOf ?f . ?f wd:purchased ?p . "
            "?p wd:hasCategory ?c }"
        )
        ordered = engine._order_patterns(query.where.triple_patterns())
        bound = {v.name for v in ordered[0].variables()}
        for pattern in ordered[1:]:
            assert bound & {v.name for v in pattern.variables()}
            bound |= {v.name for v in pattern.variables()}


class TestCorrectness:
    @pytest.mark.parametrize(
        "name", sorted(WatdivGenerator.all_queries())
    )
    def test_canonical_queries(self, engine, watdiv_graph, name):
        assert_engine_matches_reference(
            engine, watdiv_graph, WatdivGenerator.all_queries()[name]
        )
