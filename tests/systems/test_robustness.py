"""Robustness and failure-injection tests across all engines.

Degenerate inputs an adopter will eventually feed every engine: empty
graphs, single-partition clusters, one-triple datasets, inference-closed
graphs, CONSTRUCT through the distributed path, and repeated loads.
"""

import pytest

from repro.data.lubm import LubmGenerator
from repro.rdf.graph import RDFGraph
from repro.rdf.rdfs import RDFSReasoner
from repro.rdf.terms import Literal, URI
from repro.rdf.triple import Triple
from repro.spark.context import SparkContext
from repro.sparql.algebra import evaluate
from repro.sparql.parser import parse_sparql
from repro.systems import ALL_ENGINE_CLASSES, NaiveEngine

ENGINES = (NaiveEngine,) + ALL_ENGINE_CLASSES
PREFIX = "PREFIX ex: <http://x/>\n"


def engine_id(cls):
    return cls.profile.name


def uri(name):
    return URI("http://x/" + name)


@pytest.mark.parametrize("engine_class", ENGINES, ids=engine_id)
class TestDegenerateInputs:
    def test_empty_graph(self, engine_class):
        engine = engine_class(SparkContext(4))
        engine.load(RDFGraph())
        result = engine.execute(PREFIX + "SELECT ?s WHERE { ?s ex:p ?o }")
        assert len(result) == 0

    def test_single_triple(self, engine_class):
        graph = RDFGraph([Triple(uri("a"), uri("p"), uri("b"))])
        engine = engine_class(SparkContext(4))
        engine.load(graph)
        result = engine.execute(PREFIX + "SELECT ?s ?o WHERE { ?s ex:p ?o }")
        assert len(result) == 1

    def test_single_partition_context(self, engine_class, lubm_graph):
        engine = engine_class(SparkContext(1))
        engine.load(lubm_graph)
        query = parse_sparql(LubmGenerator.query_star())
        assert engine.execute(query).same_as(evaluate(query, lubm_graph))

    def test_many_partitions_few_triples(self, engine_class):
        graph = RDFGraph(
            [
                Triple(uri("a"), uri("p"), uri("b")),
                Triple(uri("b"), uri("p"), uri("c")),
            ]
        )
        engine = engine_class(SparkContext(16))
        engine.load(graph)
        query = parse_sparql(
            PREFIX + "SELECT ?x ?z WHERE { ?x ex:p ?y . ?y ex:p ?z }"
        )
        assert engine.execute(query).same_as(evaluate(query, graph))

    def test_literal_heavy_graph(self, engine_class):
        graph = RDFGraph(
            [
                Triple(uri("s%d" % i), uri("value"), Literal(i % 3))
                for i in range(12)
            ]
        )
        engine = engine_class(SparkContext(4))
        engine.load(graph)
        query = parse_sparql(
            PREFIX + "SELECT ?a ?b WHERE { ?a ex:value ?v . ?b ex:value ?v }"
        )
        assert engine.execute(query).same_as(evaluate(query, graph))

    def test_reload_replaces_data(self, engine_class):
        first = RDFGraph([Triple(uri("a"), uri("p"), uri("b"))])
        second = RDFGraph([Triple(uri("x"), uri("q"), uri("y"))])
        engine = engine_class(SparkContext(4))
        engine.load(first)
        engine.load(second)
        assert (
            len(engine.execute(PREFIX + "SELECT ?s WHERE { ?s ex:p ?o }"))
            == 0
        )
        assert (
            len(engine.execute(PREFIX + "SELECT ?s WHERE { ?s ex:q ?o }"))
            == 1
        )


@pytest.mark.parametrize("engine_class", ENGINES, ids=engine_id)
def test_queries_over_rdfs_closure(engine_class, lubm_graph_with_tbox):
    """Engines are inference-agnostic: closed graphs load and answer."""
    closure = RDFSReasoner().materialize(lubm_graph_with_tbox)
    engine = engine_class(SparkContext(4))
    engine.load(closure)
    query = parse_sparql(
        "PREFIX lubm: <http://repro.example.org/lubm#>\n"
        "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
        "SELECT ?p WHERE { ?p rdf:type lubm:Person }"
    )
    assert engine.execute(query).same_as(evaluate(query, closure))


@pytest.mark.parametrize("engine_class", ENGINES, ids=engine_id)
def test_construct_through_engines(engine_class, lubm_graph):
    query_text = (
        "PREFIX lubm: <http://repro.example.org/lubm#>\n"
        "CONSTRUCT { ?p lubm:advises ?s } WHERE { ?s lubm:advisor ?p }"
    )
    query = parse_sparql(query_text)
    if not engine_class(SparkContext(2)).supports(query):
        pytest.skip("outside fragment")
    engine = engine_class(SparkContext(4))
    engine.load(lubm_graph)
    assert engine.execute(query) == evaluate(query, lubm_graph)


@pytest.mark.parametrize("engine_class", ENGINES, ids=engine_id)
def test_describe_through_engines(engine_class, lubm_graph):
    query_text = (
        "PREFIX lubm: <http://repro.example.org/lubm#>\n"
        "DESCRIBE ?d WHERE { ?d lubm:subOrganizationOf ?u }"
    )
    query = parse_sparql(query_text)
    engine = engine_class(SparkContext(4))
    engine.load(lubm_graph)
    assert engine.execute(query) == evaluate(query, lubm_graph)


class TestScale:
    """A larger dataset end to end (kept to the fast engines)."""

    def test_three_universities_cross_checked(self):
        from repro.systems import (
            HaqwaEngine,
            HybridEngine,
            S2RdfEngine,
            SparqlgxEngine,
            SparkRdfMesgEngine,
        )

        graph = LubmGenerator(num_universities=3, seed=9).generate()
        assert len(graph) > 1000
        query = parse_sparql(LubmGenerator.query_snowflake())
        expected = evaluate(query, graph)
        for engine_class in (
            HaqwaEngine,
            SparqlgxEngine,
            HybridEngine,
            SparkRdfMesgEngine,
        ):
            engine = engine_class(SparkContext(8))
            engine.load(graph)
            assert engine.execute(query).same_as(expected), engine_class
