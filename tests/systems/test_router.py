"""Tests for the shape-aware router (the survey's conclusions as a system)."""

import pytest

from repro.data.lubm import LubmGenerator
from repro.sparql.algebra import evaluate
from repro.sparql.parser import parse_sparql
from repro.sparql.shapes import QueryShape
from repro.systems import (
    HaqwaEngine,
    HybridEngine,
    NaiveEngine,
    S2RdfEngine,
    ShapeAwareRouter,
    SparkRdfMesgEngine,
    SparqlgxEngine,
)
from repro.systems.router import DEFAULT_ROUTING

PREFIX = (
    "PREFIX lubm: <http://repro.example.org/lubm#>\n"
    "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
)


@pytest.fixture
def router(lubm_graph):
    return ShapeAwareRouter(parallelism=4).load(lubm_graph)


class TestRoutingChoices:
    def test_star_goes_to_haqwa(self, router):
        assert router.choose(LubmGenerator.query_star()) is HaqwaEngine

    def test_linear_goes_to_s2rdf(self, router):
        assert router.choose(LubmGenerator.query_linear()) is S2RdfEngine

    def test_snowflake_goes_to_hybrid(self, router):
        assert router.choose(LubmGenerator.query_snowflake()) is HybridEngine

    def test_complex_goes_to_sparkrdf(self, router):
        assert (
            router.choose(LubmGenerator.query_complex())
            is SparkRdfMesgEngine
        )

    def test_single_goes_to_sparqlgx(self, router):
        assert (
            router.choose(
                PREFIX + "SELECT ?s WHERE { ?s lubm:age ?a }"
            )
            is SparqlgxEngine
        )

    def test_fragment_fallback(self, router):
        # Snowflake prefers Hybrid (BGP only); FILTER forces a fallback.
        query = PREFIX + """
        SELECT ?s WHERE {
          ?s rdf:type lubm:GraduateStudent .
          ?s lubm:memberOf ?d .
          ?s lubm:advisor ?p .
          ?p lubm:worksFor ?d2 .
          ?p lubm:teacherOf ?c .
          FILTER(?s != ?p)
        }
        """
        chosen = router.choose(query)
        assert chosen is not HybridEngine
        assert chosen in (SparqlgxEngine, NaiveEngine)

    def test_optional_falls_back_past_s2rdf(self, router):
        query = PREFIX + """
        SELECT ?s ?p ?dep WHERE {
          ?s lubm:advisor ?p .
          ?p lubm:worksFor ?dep .
          OPTIONAL { ?s lubm:age ?a }
        }
        """
        # Linear shape prefers S2RDF, which lacks OPTIONAL.
        assert router.choose(query) is SparqlgxEngine

    def test_custom_routing_override(self, lubm_graph):
        router = ShapeAwareRouter(
            routing={QueryShape.STAR: SparqlgxEngine}
        ).load(lubm_graph)
        assert router.choose(LubmGenerator.query_star()) is SparqlgxEngine


class TestRouterExecution:
    @pytest.mark.parametrize(
        "name", ["star", "linear", "snowflake", "complex", "filter", "optional"]
    )
    def test_matches_reference_everywhere(self, router, lubm_graph, name):
        query = parse_sparql(LubmGenerator.all_queries()[name])
        assert router.execute(query).same_as(evaluate(query, lubm_graph))

    def test_last_engine_recorded(self, router):
        router.execute(LubmGenerator.query_star())
        assert router.last_engine is HaqwaEngine

    def test_lazy_loading(self, router):
        assert router.loaded_engines() == []
        router.execute(LubmGenerator.query_star())
        assert router.loaded_engines() == ["HAQWA"]
        router.execute(LubmGenerator.query_linear())
        assert "S2RDF" in router.loaded_engines()

    def test_execute_before_load_raises(self):
        with pytest.raises(RuntimeError):
            ShapeAwareRouter().execute(LubmGenerator.query_star())

    def test_default_routing_covers_every_shape(self):
        assert set(DEFAULT_ROUTING) == set(QueryShape)

    def test_reload_resets_engines(self, router, watdiv_graph):
        router.execute(LubmGenerator.query_star())
        router.load(watdiv_graph)
        assert router.loaded_engines() == []


class TestSharedDefaults:
    """The static table delegates to repro.routing (single source of truth)."""

    def test_routing_table_derives_from_shared_preferences(self):
        from repro.routing.defaults import DEFAULT_SHAPE_PREFERENCES
        from repro.systems.router import DEFAULT_FALLBACKS

        assert {
            shape: cls.profile.name for shape, cls in DEFAULT_ROUTING.items()
        } == DEFAULT_SHAPE_PREFERENCES
        from repro.routing.defaults import DEFAULT_FALLBACK_CHAIN

        assert (
            tuple(cls.profile.name for cls in DEFAULT_FALLBACKS)
            == DEFAULT_FALLBACK_CHAIN
        )

    def test_fragment_fallback_chain_is_pinned(self):
        """Regression: the fallback order is part of the routing contract
        -- SPARQLGX (wide fragment) before Naive (full coverage)."""
        from repro.routing.defaults import DEFAULT_FALLBACK_CHAIN

        assert DEFAULT_FALLBACK_CHAIN == ("SPARQLGX", "Naive")
        assert tuple(
            cls.profile.name for cls in ShapeAwareRouter().fallbacks
        ) == DEFAULT_FALLBACK_CHAIN
