"""Property-based engine validation on random graphs and queries.

Hypothesis builds small random RDF graphs and structured BGPs; a rotating
subset of engines must agree with the reference evaluator on every one.
This is the adversarial net behind the hand-written correctness tests.
"""

from hypothesis import given, settings, strategies as st

from repro.rdf.graph import RDFGraph
from repro.rdf.terms import Literal, URI
from repro.rdf.triple import Triple
from repro.spark.context import SparkContext
from repro.sparql.algebra import evaluate
from repro.sparql.ast import (
    GroupGraphPattern,
    SelectQuery,
    TriplePattern,
    Variable,
)
from repro.systems import (
    GraphFramesEngine,
    HaqwaEngine,
    HybridEngine,
    S2RdfEngine,
    S2XEngine,
    SparkRdfMesgEngine,
    SparqlgxEngine,
)

EX = "http://x/"

_subjects = st.sampled_from([URI(EX + "s%d" % i) for i in range(6)])
_predicates = st.sampled_from([URI(EX + "p%d" % i) for i in range(3)])
_objects = st.one_of(
    st.sampled_from([URI(EX + "s%d" % i) for i in range(6)]),
    st.sampled_from([Literal(i) for i in range(3)]),
)
_triples = st.builds(Triple, _subjects, _predicates, _objects)
_graphs = st.lists(_triples, min_size=1, max_size=24).map(RDFGraph)


def _star_query(predicates):
    patterns = [
        TriplePattern(Variable("s"), predicate, Variable("o%d" % i))
        for i, predicate in enumerate(predicates)
    ]
    return SelectQuery(variables=None, where=GroupGraphPattern(patterns))


def _chain_query(predicates):
    patterns = [
        TriplePattern(Variable("v%d" % i), predicate, Variable("v%d" % (i + 1)))
        for i, predicate in enumerate(predicates)
    ]
    return SelectQuery(variables=None, where=GroupGraphPattern(patterns))


_queries = st.one_of(
    st.lists(_predicates, min_size=1, max_size=3, unique=True).map(_star_query),
    st.lists(_predicates, min_size=2, max_size=3).map(_chain_query),
)


def _check(engine_class, graph, query):
    engine = engine_class(SparkContext(4))
    engine.load(graph)
    expected = evaluate(query, graph)
    actual = engine.execute(query)
    assert actual.same_as(expected), (
        "%s: %d vs %d rows on %r over %d triples"
        % (
            engine_class.profile.name,
            len(actual),
            len(expected),
            query.where.triple_patterns(),
            len(graph),
        )
    )


@given(graph=_graphs, query=_queries)
@settings(max_examples=25, deadline=None)
def test_haqwa_matches_reference(graph, query):
    _check(HaqwaEngine, graph, query)


@given(graph=_graphs, query=_queries)
@settings(max_examples=25, deadline=None)
def test_sparqlgx_matches_reference(graph, query):
    _check(SparqlgxEngine, graph, query)


@given(graph=_graphs, query=_queries)
@settings(max_examples=20, deadline=None)
def test_s2rdf_matches_reference(graph, query):
    _check(S2RdfEngine, graph, query)


@given(graph=_graphs, query=_queries)
@settings(max_examples=20, deadline=None)
def test_hybrid_matches_reference(graph, query):
    _check(HybridEngine, graph, query)


@given(graph=_graphs, query=_queries)
@settings(max_examples=15, deadline=None)
def test_s2x_matches_reference(graph, query):
    _check(S2XEngine, graph, query)


@given(graph=_graphs, query=_queries)
@settings(max_examples=15, deadline=None)
def test_graphframes_matches_reference(graph, query):
    _check(GraphFramesEngine, graph, query)


@given(graph=_graphs, query=_queries)
@settings(max_examples=15, deadline=None)
def test_sparkrdf_matches_reference(graph, query):
    _check(SparkRdfMesgEngine, graph, query)
