"""The correctness net: every engine vs the reference evaluator.

Each engine runs the canonical LUBM and WatDiv queries plus randomly
generated queries of every shape; answers must match the reference as
multisets.  Queries outside an engine's published SPARQL fragment are
skipped (that restriction is itself asserted in test_base).
"""

import pytest

from repro.data.lubm import LubmGenerator
from repro.data.watdiv import WatdivGenerator
from repro.data.workload import generate_query
from repro.spark.context import SparkContext
from repro.sparql.algebra import evaluate
from repro.sparql.fragments import features_of
from repro.sparql.parser import parse_sparql
from repro.sparql.shapes import QueryShape
from repro.systems import ALL_ENGINE_CLASSES, NaiveEngine

ENGINES = (NaiveEngine,) + ALL_ENGINE_CLASSES


def engine_id(cls):
    return cls.profile.name


@pytest.fixture(scope="module")
def lubm_engines(lubm_graph):
    loaded = {}
    for engine_class in ENGINES:
        engine = engine_class(SparkContext(4))
        engine.load(lubm_graph)
        loaded[engine_class] = engine
    return loaded


@pytest.fixture(scope="module")
def watdiv_engines(watdiv_graph):
    loaded = {}
    for engine_class in ENGINES:
        engine = engine_class(SparkContext(4))
        engine.load(watdiv_graph)
        loaded[engine_class] = engine
    return loaded


def check(engine, graph, query):
    if not engine.supports(query):
        pytest.skip(
            "%s supports %s only"
            % (engine.profile.name, engine.profile.sparql_fragment)
        )
    expected = evaluate(query, graph)
    actual = engine.execute(query)
    assert actual.same_as(expected), (
        "%s: %d rows vs reference %d rows"
        % (engine.profile.name, len(actual), len(expected))
    )


@pytest.mark.parametrize("engine_class", ENGINES, ids=engine_id)
@pytest.mark.parametrize("query_name", sorted(LubmGenerator.all_queries()))
def test_lubm_canonical(engine_class, query_name, lubm_engines, lubm_graph):
    query = parse_sparql(LubmGenerator.all_queries()[query_name])
    check(lubm_engines[engine_class], lubm_graph, query)


@pytest.mark.parametrize("engine_class", ENGINES, ids=engine_id)
@pytest.mark.parametrize("query_name", sorted(WatdivGenerator.all_queries()))
def test_watdiv_canonical(
    engine_class, query_name, watdiv_engines, watdiv_graph
):
    query = parse_sparql(WatdivGenerator.all_queries()[query_name])
    check(watdiv_engines[engine_class], watdiv_graph, query)


GENERATED_SHAPES = [
    QueryShape.SINGLE,
    QueryShape.STAR,
    QueryShape.LINEAR,
    QueryShape.SNOWFLAKE,
    QueryShape.COMPLEX,
]


@pytest.mark.slow
@pytest.mark.parametrize("engine_class", ENGINES, ids=engine_id)
@pytest.mark.parametrize(
    "shape", GENERATED_SHAPES, ids=lambda s: s.value
)
@pytest.mark.parametrize("seed", [1, 2])
def test_generated_workload(
    engine_class, shape, seed, watdiv_engines, watdiv_graph
):
    query = generate_query(watdiv_graph, shape, seed=seed)
    check(watdiv_engines[engine_class], watdiv_graph, query)


@pytest.mark.parametrize("engine_class", ENGINES, ids=engine_id)
def test_empty_answer_query(engine_class, lubm_engines, lubm_graph):
    query = parse_sparql(
        "PREFIX lubm: <http://repro.example.org/lubm#>\n"
        "SELECT ?s WHERE { ?s lubm:advisor ?p . ?p lubm:advisor ?s }"
    )
    check(lubm_engines[engine_class], lubm_graph, query)


@pytest.mark.parametrize("engine_class", ENGINES, ids=engine_id)
def test_unknown_constant_query(engine_class, lubm_engines, lubm_graph):
    query = parse_sparql(
        "PREFIX nope: <http://nowhere.example/>\n"
        "SELECT ?s WHERE { ?s nope:pred ?o }"
    )
    check(lubm_engines[engine_class], lubm_graph, query)


@pytest.mark.slow
@pytest.mark.parametrize("engine_class", ENGINES, ids=engine_id)
def test_fully_ground_pattern(engine_class, lubm_engines, lubm_graph):
    some_triple = next(iter(lubm_graph))
    query = parse_sparql(
        "SELECT ?x WHERE { ?x ?p ?o . %s %s %s . }"
        % (
            some_triple.subject.n3(),
            some_triple.predicate.n3(),
            some_triple.object.n3(),
        )
    )
    check(lubm_engines[engine_class], lubm_graph, query)
