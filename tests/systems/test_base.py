"""Tests for the engine base: profiles, driver plumbing, helpers."""

import pytest

from repro.rdf.graph import RDFGraph
from repro.rdf.terms import Literal, URI
from repro.rdf.triple import Triple
from repro.spark.context import SparkContext
from repro.sparql.algebra import translate
from repro.sparql.parser import parse_sparql
from repro.systems import NaiveEngine, UnsupportedQueryError
from repro.systems.base import (
    fold_join_order,
    join_binding_rdds,
    node_variables,
    pattern_variables,
    triple_matches_pattern,
)
from repro.sparql.ast import TriplePattern, Variable

EX = "http://x/"
PREFIX = "PREFIX ex: <http://x/>\n"


def uri(name):
    return URI(EX + name)


@pytest.fixture
def tiny_graph():
    return RDFGraph(
        [
            Triple(uri("a"), uri("p"), uri("b")),
            Triple(uri("b"), uri("p"), uri("c")),
            Triple(uri("a"), uri("q"), Literal(5)),
        ]
    )


class TestProfile:
    def test_fragment_property(self):
        profile = NaiveEngine.profile
        assert profile.sparql_fragment == "BGP+"

    def test_bgp_only_fragment(self):
        from repro.systems import HybridEngine

        assert HybridEngine.profile.sparql_fragment == "BGP"

    def test_all_profiles_have_citations(self):
        from repro.systems import ALL_ENGINE_CLASSES

        citations = [cls.profile.citation for cls in ALL_ENGINE_CLASSES]
        assert citations == [
            "[7]", "[13]", "[24]", "[21]", "[23]", "[16]", "[12]", "[4]", "[5]",
        ]


class TestDriverGuards:
    def test_execute_before_load_raises(self):
        engine = NaiveEngine(SparkContext(2))
        with pytest.raises(RuntimeError):
            engine.execute(PREFIX + "SELECT ?s WHERE { ?s ex:p ?o }")

    def test_unsupported_fragment_raises(self, tiny_graph):
        from repro.systems import HybridEngine

        engine = HybridEngine(SparkContext(2))
        engine.load(tiny_graph)
        with pytest.raises(UnsupportedQueryError):
            engine.execute(
                PREFIX + "SELECT ?s WHERE { ?s ex:p ?o . FILTER(?o = 1) }"
            )

    def test_string_queries_parsed(self, tiny_graph):
        engine = NaiveEngine(SparkContext(2))
        engine.load(tiny_graph)
        result = engine.execute(PREFIX + "SELECT ?s WHERE { ?s ex:q ?o }")
        assert len(result) == 1

    def test_ask_query(self, tiny_graph):
        engine = NaiveEngine(SparkContext(2))
        engine.load(tiny_graph)
        assert engine.execute(PREFIX + "ASK { ex:a ex:p ex:b }") is True
        assert engine.execute(PREFIX + "ASK { ex:c ex:p ex:a }") is False


class TestHelpers:
    def test_triple_matches_pattern(self):
        pattern = TriplePattern(Variable("s"), uri("p"), Variable("o"))
        binding = triple_matches_pattern(
            (uri("a"), uri("p"), uri("b")), pattern
        )
        assert binding == {"s": uri("a"), "o": uri("b")}
        assert (
            triple_matches_pattern((uri("a"), uri("q"), uri("b")), pattern)
            is None
        )

    def test_triple_matches_repeated_variable(self):
        pattern = TriplePattern(Variable("x"), uri("p"), Variable("x"))
        assert (
            triple_matches_pattern((uri("a"), uri("p"), uri("b")), pattern)
            is None
        )
        assert triple_matches_pattern(
            (uri("a"), uri("p"), uri("a")), pattern
        ) == {"x": uri("a")}

    def test_pattern_variables_order(self):
        patterns = [
            TriplePattern(Variable("s"), uri("p"), Variable("o")),
            TriplePattern(Variable("o"), uri("q"), Variable("z")),
        ]
        assert pattern_variables(patterns) == ["s", "o", "z"]

    def test_fold_join_order_keeps_connectivity(self):
        patterns = [
            TriplePattern(Variable("a"), uri("p"), Variable("b")),
            TriplePattern(Variable("x"), uri("q"), Variable("y")),
            TriplePattern(Variable("b"), uri("r"), Variable("x")),
        ]
        ordered = fold_join_order(patterns)
        # Second position must connect to the first pattern.
        first_vars = {v.name for v in ordered[0].variables()}
        second_vars = {v.name for v in ordered[1].variables()}
        assert first_vars & second_vars

    def test_node_variables(self):
        query = parse_sparql(
            PREFIX
            + "SELECT * WHERE { ?s ex:p ?o . OPTIONAL { ?o ex:q ?r } }"
        )
        assert node_variables(translate(query)) == {"s", "o", "r"}

    def test_join_binding_rdds_inner(self):
        sc = SparkContext(2)
        left = sc.parallelize([{"x": 1, "y": 2}, {"x": 3, "y": 4}])
        right = sc.parallelize([{"x": 1, "z": 9}])
        joined = join_binding_rdds(left, right, ["x"]).collect()
        assert joined == [{"x": 1, "y": 2, "z": 9}]

    def test_join_binding_rdds_left(self):
        sc = SparkContext(2)
        left = sc.parallelize([{"x": 1}, {"x": 2}])
        right = sc.parallelize([{"x": 1, "z": 9}])
        joined = sorted(
            join_binding_rdds(left, right, ["x"], how="left").collect(),
            key=lambda b: b["x"],
        )
        assert joined == [{"x": 1, "z": 9}, {"x": 2}]

    def test_join_binding_rdds_cartesian_when_disjoint(self):
        sc = SparkContext(2)
        left = sc.parallelize([{"a": 1}])
        right = sc.parallelize([{"b": 2}, {"b": 3}])
        joined = join_binding_rdds(left, right, [])
        assert len(joined.collect()) == 2
