"""S2RDF mechanism tests: ExtVP, SF threshold, SQL compilation."""

import pytest

from repro.rdf.graph import RDFGraph
from repro.rdf.terms import URI
from repro.rdf.triple import Triple
from repro.spark.context import SparkContext
from repro.sparql.parser import parse_sparql
from repro.systems.s2rdf import S2RdfEngine
from tests.systems.conftest import assert_engine_matches_reference

EX = "http://x/"
PREFIX = "PREFIX ex: <http://x/>\n"


def uri(name):
    return URI(EX + name)


@pytest.fixture
def chain_graph():
    """likes(a, b) and follows(b, c): OS correlation likes -> follows."""
    graph = RDFGraph()
    # 10 likes edges; only 3 of their objects have follows edges.
    for i in range(10):
        graph.add(Triple(uri("u%d" % i), uri("likes"), uri("v%d" % i)))
    for i in range(3):
        graph.add(Triple(uri("v%d" % i), uri("follows"), uri("w%d" % i)))
    return graph


class TestExtVPBuild:
    def test_semi_join_reduction_size(self, chain_graph):
        engine = S2RdfEngine(SparkContext(4), sf_threshold=0.95)
        engine.load(chain_graph)
        likes = engine.dictionary.lookup_term(uri("likes"))
        follows = engine.dictionary.lookup_term(uri("follows"))
        # ExtVP_OS(likes, follows): likes rows whose object has a follows.
        name = engine._extvp_names[("os", likes, follows)]
        assert engine.table_sizes[name] == 3
        assert engine.selectivity_factors[("os", likes, follows)] == 0.3

    def test_sf_threshold_drops_large_reductions(self, chain_graph):
        tight = S2RdfEngine(SparkContext(4), sf_threshold=0.2)
        tight.load(chain_graph)
        loose = S2RdfEngine(SparkContext(4), sf_threshold=1.0)
        loose.load(chain_graph)
        assert tight.extvp_table_count() < loose.extvp_table_count()

    def test_threshold_one_keeps_everything_nonempty(self, chain_graph):
        engine = S2RdfEngine(SparkContext(4), sf_threshold=1.0)
        engine.load(chain_graph)
        assert all(
            sf < 1.0 or key not in engine._extvp_names
            for key, sf in engine.selectivity_factors.items()
        )

    def test_storage_overhead_grows_with_threshold(self, chain_graph):
        tight = S2RdfEngine(SparkContext(4), sf_threshold=0.2)
        tight.load(chain_graph)
        loose = S2RdfEngine(SparkContext(4), sf_threshold=1.0)
        loose.load(chain_graph)
        assert loose.storage_rows() >= tight.storage_rows()
        assert tight.storage_rows(include_extvp=False) == len(chain_graph)

    def test_build_extvp_can_be_disabled(self, chain_graph):
        engine = S2RdfEngine(SparkContext(4), build_extvp=False)
        engine.load(chain_graph)
        assert engine.extvp_table_count() == 0

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            S2RdfEngine(SparkContext(2), sf_threshold=0.0)


class TestSqlCompilation:
    def test_query_uses_extvp_table(self, chain_graph):
        engine = S2RdfEngine(SparkContext(4))
        engine.load(chain_graph)
        query = parse_sparql(
            PREFIX + "SELECT ?a ?b ?c WHERE { ?a ex:likes ?b . ?b ex:follows ?c }"
        )
        sql, _variables = engine.compile_sql(query.where.triple_patterns())
        assert "extvp_" in sql

    def test_compiled_sql_executes_correctly(self, chain_graph):
        engine = S2RdfEngine(SparkContext(4))
        engine.load(chain_graph)
        result = assert_engine_matches_reference(
            engine,
            chain_graph,
            PREFIX + "SELECT ?a ?c WHERE { ?a ex:likes ?b . ?b ex:follows ?c }",
        )
        assert len(result) == 3

    def test_extvp_reduces_scanned_rows(self, chain_graph):
        with_extvp = S2RdfEngine(SparkContext(4))
        with_extvp.load(chain_graph)
        without = S2RdfEngine(SparkContext(4), build_extvp=False)
        without.load(chain_graph)
        query = (
            PREFIX + "SELECT ?a ?c WHERE { ?a ex:likes ?b . ?b ex:follows ?c }"
        )
        for engine in (with_extvp, without):
            engine.ctx.metrics.reset()
            engine.execute(query)
        scanned_with = with_extvp.ctx.metrics.get("records_scanned")
        scanned_without = without.ctx.metrics.get("records_scanned")
        assert scanned_with < scanned_without

    def test_bound_constant_in_where_clause(self, chain_graph):
        engine = S2RdfEngine(SparkContext(4))
        engine.load(chain_graph)
        assert_engine_matches_reference(
            engine,
            chain_graph,
            PREFIX + "SELECT ?b WHERE { ex:u1 ex:likes ?b }",
        )

    def test_unknown_constant_returns_empty(self, chain_graph):
        engine = S2RdfEngine(SparkContext(4))
        engine.load(chain_graph)
        result = engine.execute(
            PREFIX + "SELECT ?b WHERE { ex:stranger ex:likes ?b }"
        )
        assert len(result) == 0

    def test_variable_predicate_falls_back_to_alltriples(self, chain_graph):
        engine = S2RdfEngine(SparkContext(4))
        engine.load(chain_graph)
        query = parse_sparql(PREFIX + "SELECT ?p WHERE { ex:u1 ?p ?o }")
        sql, _variables = engine.compile_sql(query.where.triple_patterns())
        assert "alltriples" in sql
        assert_engine_matches_reference(
            engine, chain_graph, PREFIX + "SELECT ?p WHERE { ex:u1 ?p ?o }"
        )

    def test_pattern_order_bound_variables_first(self, chain_graph):
        engine = S2RdfEngine(SparkContext(4))
        engine.load(chain_graph)
        query = parse_sparql(
            PREFIX
            + "SELECT * WHERE { ?a ex:likes ?b . ex:v1 ex:follows ?c }"
        )
        patterns = query.where.triple_patterns()
        order = engine._order_patterns(patterns)
        # The follows pattern has a bound subject: it must come first.
        assert patterns[order[0]].bound_count() == 2

    def test_lubm_correctness(self, lubm_graph):
        from repro.data.lubm import LubmGenerator

        engine = S2RdfEngine(SparkContext(4))
        engine.load(lubm_graph)
        for name, text in LubmGenerator.all_queries().items():
            query = parse_sparql(text)
            if engine.supports(query):
                assert_engine_matches_reference(engine, lubm_graph, text)
