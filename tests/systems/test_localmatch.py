"""Unit tests for partition-local BGP matching."""

import pytest

from repro.sparql.ast import TriplePattern, Variable
from repro.systems.localmatch import encode_pattern, match_bgp_local

V = Variable


class TestMatchBgpLocal:
    TRIPLES = [
        (1, 10, 2),
        (2, 10, 3),
        (1, 11, 5),
        (3, 10, 1),
    ]

    def test_empty_patterns_yield_empty_binding(self):
        assert match_bgp_local([], self.TRIPLES) == [{}]

    def test_single_pattern_all_variables(self):
        bindings = match_bgp_local([(V("s"), V("p"), V("o"))], self.TRIPLES)
        assert len(bindings) == 4

    def test_constant_predicate(self):
        bindings = match_bgp_local([(V("s"), 11, V("o"))], self.TRIPLES)
        assert bindings == [{"s": 1, "o": 5}]

    def test_constant_subject_uses_index(self):
        bindings = match_bgp_local([(1, 10, V("o"))], self.TRIPLES)
        assert bindings == [{"o": 2}]

    def test_chain_join(self):
        bindings = match_bgp_local(
            [(V("a"), 10, V("b")), (V("b"), 10, V("c"))], self.TRIPLES
        )
        found = {(b["a"], b["b"], b["c"]) for b in bindings}
        assert found == {(1, 2, 3), (2, 3, 1), (3, 1, 2)}

    def test_repeated_variable_within_pattern(self):
        triples = [(1, 10, 1), (1, 10, 2)]
        bindings = match_bgp_local([(V("x"), 10, V("x"))], triples)
        assert bindings == [{"x": 1}]

    def test_no_match_short_circuits(self):
        bindings = match_bgp_local(
            [(V("s"), 99, V("o")), (V("s"), 10, V("o2"))], self.TRIPLES
        )
        assert bindings == []

    def test_bound_variable_propagates(self):
        bindings = match_bgp_local(
            [(1, 10, V("x")), (V("x"), 10, V("y"))], self.TRIPLES
        )
        assert bindings == [{"x": 2, "y": 3}]

    def test_empty_store(self):
        assert match_bgp_local([(V("s"), V("p"), V("o"))], []) == []


class TestEncodePattern:
    def test_maps_constants_keeps_variables(self):
        from repro.rdf.terms import URI

        pattern = TriplePattern(V("s"), URI("http://x/p"), URI("http://x/o"))
        table = {URI("http://x/p"): 7, URI("http://x/o"): 8}
        encoded = encode_pattern(pattern, table.__getitem__)
        assert encoded == (V("s"), 7, 8)

    def test_unknown_constant_raises_keyerror(self):
        from repro.rdf.terms import URI

        pattern = TriplePattern(V("s"), URI("http://x/p"), V("o"))
        with pytest.raises(KeyError):
            encode_pattern(pattern, {}.__getitem__)
