"""Differential correctness: every engine must agree with every other.

The cross-validation suite checks each engine against the reference
evaluator; this one closes the remaining gap by comparing the engines
*to each other* on the shared star/linear/snowflake/complex workload --
the exact matrix the CLI's ``assess`` command runs.  Result sets are
canonicalized to sorted N3 rows, so any divergence shows up as a readable
diff rather than a multiset mismatch.
"""

import pytest

from repro.data.lubm import LubmGenerator
from repro.spark.context import SparkContext
from repro.sparql.parser import parse_sparql
from repro.systems import ALL_ENGINE_CLASSES, NaiveEngine

ENGINES = (NaiveEngine,) + ALL_ENGINE_CLASSES

WORKLOAD = {
    "star": LubmGenerator.query_star(),
    "linear": LubmGenerator.query_linear(),
    "snowflake": LubmGenerator.query_snowflake(),
    "complex": LubmGenerator.query_complex(),
}


def engine_id(cls):
    return cls.profile.name


def canonical_rows(solution_set):
    """A sorted list of sorted (variable, N3 term) rows: engine-neutral."""
    return sorted(
        tuple(sorted((name, term.n3()) for name, term in solution.items()))
        for solution in solution_set
    )


@pytest.fixture(scope="module")
def workload_answers(lubm_graph):
    """Canonical answers per engine per query (unsupported ones absent)."""
    parsed = {name: parse_sparql(text) for name, text in WORKLOAD.items()}
    answers = {}
    for engine_class in ENGINES:
        engine = engine_class(SparkContext(4))
        engine.load(lubm_graph)
        answers[engine_class.profile.name] = {
            name: canonical_rows(engine.execute(query))
            for name, query in parsed.items()
            if engine.supports(query)
        }
    return answers


def test_naive_supports_the_whole_workload(workload_answers):
    assert set(workload_answers["Naive"]) == set(WORKLOAD)


@pytest.mark.parametrize("engine_class", ALL_ENGINE_CLASSES, ids=engine_id)
@pytest.mark.parametrize("query_name", sorted(WORKLOAD))
def test_engines_agree_on_workload(workload_answers, engine_class, query_name):
    name = engine_class.profile.name
    mine = workload_answers[name].get(query_name)
    if mine is None:
        pytest.skip(
            "%s's fragment does not cover the %s query" % (name, query_name)
        )
    reference = workload_answers["Naive"][query_name]
    assert len(mine) == len(reference), (
        "%s returned %d rows on %s, reference %d"
        % (name, len(mine), query_name, len(reference))
    )
    assert mine == reference


def test_answers_are_nonempty(workload_answers):
    # An all-engines-return-nothing workload would make the suite vacuous.
    for rows in workload_answers["Naive"].values():
        assert rows
