"""HAQWA mechanism tests: subject hashing, replication, locality, encoding."""

import pytest

from repro.data.lubm import LubmGenerator
from repro.data.workload import QueryWorkload
from repro.spark.context import SparkContext
from repro.sparql.parser import parse_sparql
from repro.systems.haqwa import (
    HaqwaEngine,
    group_by_subject,
    linking_predicates,
)
from tests.systems.conftest import assert_engine_matches_reference

PREFIX = "PREFIX lubm: <http://repro.example.org/lubm#>\n" \
    "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"

STAR = PREFIX + """
SELECT ?s ?d ?a WHERE {
  ?s rdf:type lubm:GraduateStudent .
  ?s lubm:memberOf ?d .
  ?s lubm:age ?a .
}
"""

LINEAR = PREFIX + """
SELECT ?s ?p ?dep WHERE {
  ?s lubm:advisor ?p .
  ?p lubm:worksFor ?dep .
}
"""


class TestPatternAnalysis:
    def test_group_by_subject(self):
        query = parse_sparql(STAR)
        groups = group_by_subject(query.where.triple_patterns())
        assert len(groups) == 1
        assert len(groups[0]) == 3

    def test_linear_forms_two_groups(self):
        query = parse_sparql(LINEAR)
        groups = group_by_subject(query.where.triple_patterns())
        assert [len(g) for g in groups] == [1, 1]

    def test_linking_predicates(self):
        query = parse_sparql(LINEAR)
        links = linking_predicates(query.where.triple_patterns())
        assert {p.local_name() for p in links} == {"advisor"}

    def test_star_has_no_links(self):
        query = parse_sparql(STAR)
        assert linking_predicates(query.where.triple_patterns()) == set()


class TestPartitioning:
    def test_subject_triples_colocated(self, lubm_graph):
        engine = HaqwaEngine(SparkContext(4))
        engine.load(lubm_graph)
        partitions = engine.store.collectPartitions()
        subject_home = {}
        for index, partition in enumerate(partitions):
            for s, _p, _o in partition:
                subject_home.setdefault(s, set()).add(index)
        # Without a workload there are no replicas: one home per subject.
        assert all(len(homes) == 1 for homes in subject_home.values())

    def test_star_query_runs_without_shuffle(self, lubm_graph):
        sc = SparkContext(4)
        engine = HaqwaEngine(sc)
        engine.load(lubm_graph)
        before = sc.metrics.snapshot()
        assert_engine_matches_reference(engine, lubm_graph, STAR)
        cost = sc.metrics.snapshot() - before
        assert cost.shuffle_records == 0

    def test_linear_query_shuffles_without_workload(self, lubm_graph):
        sc = SparkContext(4)
        engine = HaqwaEngine(sc)
        engine.load(lubm_graph)
        before = sc.metrics.snapshot()
        assert_engine_matches_reference(engine, lubm_graph, LINEAR)
        cost = sc.metrics.snapshot() - before
        assert cost.shuffle_records > 0


class TestWorkloadAwareAllocation:
    @pytest.fixture
    def workload(self):
        workload = QueryWorkload()
        workload.add("linear", parse_sparql(LINEAR), frequency=10.0)
        return workload

    def test_replication_happens(self, lubm_graph, workload):
        engine = HaqwaEngine(SparkContext(4), workload=workload)
        engine.load(lubm_graph)
        assert engine.replicated_triples > 0

    def test_frequent_query_becomes_local(self, lubm_graph, workload):
        sc = SparkContext(4)
        engine = HaqwaEngine(sc, workload=workload)
        engine.load(lubm_graph)
        before = sc.metrics.snapshot()
        assert_engine_matches_reference(engine, lubm_graph, LINEAR)
        cost = sc.metrics.snapshot() - before
        assert cost.shuffle_records == 0

    def test_replicas_produce_no_duplicates(self, lubm_graph, workload):
        engine = HaqwaEngine(SparkContext(4), workload=workload)
        engine.load(lubm_graph)
        assert_engine_matches_reference(engine, lubm_graph, STAR)
        assert_engine_matches_reference(engine, lubm_graph, LINEAR)

    def test_infrequent_query_still_correct(self, lubm_graph, workload):
        engine = HaqwaEngine(SparkContext(4), workload=workload)
        engine.load(lubm_graph)
        assert_engine_matches_reference(
            engine, lubm_graph, LubmGenerator.query_complex()
        )

    def test_chain_longer_than_replication_falls_back(self, lubm_graph, workload):
        # Three-hop chain: replication is one hop deep, so this must take
        # the shuffle path yet stay correct.
        engine = HaqwaEngine(SparkContext(4), workload=workload)
        engine.load(lubm_graph)
        assert_engine_matches_reference(
            engine, lubm_graph, LubmGenerator.query_linear()
        )


class TestEncoding:
    def test_dictionary_built(self, lubm_graph):
        engine = HaqwaEngine(SparkContext(4))
        engine.load(lubm_graph)
        assert len(engine.dictionary) > 0

    def test_store_holds_integers(self, lubm_graph):
        engine = HaqwaEngine(SparkContext(4))
        engine.load(lubm_graph)
        triple = engine.store.first()
        assert all(isinstance(x, int) for x in triple)

    def test_results_decoded_to_terms(self, lubm_graph):
        engine = HaqwaEngine(SparkContext(4))
        engine.load(lubm_graph)
        result = engine.execute(STAR)
        first = result.solutions[0]
        assert first.get("s") is not None
        assert hasattr(first.get("s"), "n3")
