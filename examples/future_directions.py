"""The paper's future-work directions (Section V), running.

Three directions the survey says the field is missing, implemented and
demonstrated end to end:

1. *Smarter partitioning* -- semantic (class-driven) placement and
   edge-cut-minimizing graph placement vs the hash partitioning the
   surveyed systems use.
2. *Versioned RDF* -- "access not only to the latest version, but also to
   previous ones", with the storage/replay trade-off of the archiving
   policies.
3. *Uninterrupted evolution* -- incremental updates to a running engine.

Run with:  python examples/future_directions.py
"""

from repro.bench import format_table
from repro.data.lubm import LUBM, LubmGenerator
from repro.evolution import (
    ArchivePolicy,
    UpdatableSparqlgxEngine,
    VersionedGraph,
)
from repro.partitioning import (
    EdgeCutPartitioner,
    PartitionedTripleStore,
    SemanticPartitioner,
)
from repro.rdf.triple import Triple
from repro.spark import SparkContext
from repro.spark.partitioner import HashPartitioner


def partitioning_demo(graph) -> None:
    print("1. Partitioning policies (Section V: 'further research is")
    print("   required in the area')\n")
    sc = SparkContext(4)
    rows = []
    for name, partitioner in (
        ("hash (status quo)", HashPartitioner(4)),
        ("semantic [27]", SemanticPartitioner(4, graph)),
        ("edge-cut (LDG)", EdgeCutPartitioner(4, graph)),
    ):
        store = PartitionedTripleStore(sc, graph, partitioner)
        rows.append(
            [
                name,
                store.class_scan_partitions(LUBM.Course),
                "%.0f%%" % (100 * store.edge_cut_fraction()),
                "%.2f" % store.balance(),
            ]
        )
    print(
        format_table(
            ["policy", "partitions per class scan", "edge-cut", "balance"],
            rows,
        )
    )


def versioning_demo(graph) -> None:
    print("\n2. Versioned RDF (archiving policies)\n")
    rows = []
    for policy in ArchivePolicy:
        store = VersionedGraph(graph, policy=policy, checkpoint_every=3)
        for i in range(9):
            store.commit(
                additions=[
                    Triple(
                        LUBM["V%d_%d" % (i, j)],
                        LUBM.memberOf,
                        LUBM.Department0_0,
                    )
                    for j in range(2)
                ]
            )
        store.snapshot(5)
        rows.append(
            [policy.value, store.storage_triples(), store.last_replay_cost]
        )
    print(
        format_table(
            ["policy", "stored triples", "replay cost for v5"], rows
        )
    )
    store = VersionedGraph(graph)
    removed = next(iter(graph.triples((None, LUBM.advisor, None))))
    store.commit(deletions=[removed])
    ask = "PREFIX lubm: <http://repro.example.org/lubm#>\nASK { %s %s %s }" % (
        removed.subject.n3(), removed.predicate.n3(), removed.object.n3()
    )
    print("\n   Versions where the deleted advisor edge exists: %s" %
          store.versions_where(ask))


def live_update_demo(graph) -> None:
    print("\n3. Uninterrupted updates to a running engine\n")
    engine = UpdatableSparqlgxEngine(SparkContext(4))
    engine.load(graph)
    query = (
        "PREFIX lubm: <http://repro.example.org/lubm#>\n"
        "SELECT ?s WHERE { ?s lubm:memberOf ?d }"
    )
    before = len(engine.execute(query))
    additions = [
        Triple(LUBM["Transfer%d" % i], LUBM.memberOf, LUBM.Department0_0)
        for i in range(4)
    ]
    touched = engine.apply_update(additions=additions)
    after = len(engine.execute(query))
    print(
        "   answers %d -> %d after enrolling 4 transfer students;"
        % (before, after)
    )
    print(
        "   the update rewrote %d records (the memberOf store only) out of"
        " %d total." % (touched, engine.stats["triples"])
    )


def main() -> None:
    graph = LubmGenerator(num_universities=1, seed=42).generate()
    print("University graph: %d triples\n" % len(graph))
    partitioning_demo(graph)
    versioning_demo(graph)
    live_update_demo(graph)


if __name__ == "__main__":
    main()
