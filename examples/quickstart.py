"""Quickstart: load RDF, run SPARQL on two surveyed engines, compare.

Run with:  python examples/quickstart.py
"""

from repro.core import render_table_i, render_table_ii, render_taxonomy
from repro.rdf.turtle import parse_turtle
from repro.spark import SparkContext
from repro.systems import S2RdfEngine, SparqlgxEngine

DATA = """
@prefix ex: <http://example.org/> .

ex:alice a ex:Student ; ex:age 24 ; ex:enrolledIn ex:db101 .
ex:bob   a ex:Student ; ex:age 27 ; ex:enrolledIn ex:db101, ex:ml201 .
ex:carol a ex:Lecturer ; ex:teaches ex:db101 .
ex:dave  a ex:Lecturer ; ex:teaches ex:ml201 .
ex:db101 ex:title "Databases" .
ex:ml201 ex:title "Machine Learning" .
"""

QUERY = """
PREFIX ex: <http://example.org/>
SELECT ?student ?lecturer ?title WHERE {
  ?student a ex:Student .
  ?student ex:enrolledIn ?course .
  ?lecturer ex:teaches ?course .
  ?course ex:title ?title .
}
ORDER BY ?student
"""


def main() -> None:
    graph = parse_turtle(DATA)
    print("Loaded %d triples.\n" % len(graph))

    for engine_class in (SparqlgxEngine, S2RdfEngine):
        sc = SparkContext(default_parallelism=4)
        engine = engine_class(sc)
        engine.load(graph)
        result = engine.execute(QUERY)
        profile = engine.profile
        cost = sc.metrics.snapshot()
        print(
            "%s %s  (data model: %s; abstraction: %s)"
            % (
                profile.name,
                profile.citation,
                profile.data_model.value,
                ", ".join(a.value for a in profile.abstractions),
            )
        )
        for solution in result:
            print(
                "  %s studies %s under %s"
                % (
                    solution["student"].local_name(),
                    solution["title"].lexical,
                    solution["lecturer"].local_name(),
                )
            )
        print(
            "  cost: %d records scanned, %d shuffled, %d join comparisons\n"
            % (
                cost.records_scanned,
                cost.shuffle_records,
                cost.join_comparisons,
            )
        )

    print("The survey's taxonomy and tables, regenerated:\n")
    print(render_taxonomy())
    print()
    print(render_table_i())
    print()
    print(render_table_ii())


if __name__ == "__main__":
    main()
