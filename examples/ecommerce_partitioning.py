"""Workload-aware partitioning on an e-commerce graph (HAQWA's idea).

The paper's future-work section argues that "exploiting knowledge about
the queries previously submitted in a system, we can end up in a more
efficient partitioning scheme".  This example builds a WatDiv-like shop
graph, declares a skewed query workload (the friend-purchase query is
hot), and shows how HAQWA's two-step fragmentation turns the hot query's
shuffle traffic into zero by replicating exactly the triples it needs.

Run with:  python examples/ecommerce_partitioning.py
"""

from repro.bench import format_table
from repro.data.watdiv import WatdivGenerator
from repro.data.workload import QueryWorkload
from repro.spark import SparkContext
from repro.sparql.parser import parse_sparql
from repro.systems import HaqwaEngine

HOT_QUERY = """
PREFIX wd: <http://repro.example.org/watdiv#>
SELECT ?u ?prod WHERE {
  ?u wd:friendOf ?f .
  ?f wd:purchased ?prod .
}
"""

COLD_QUERY = """
PREFIX wd: <http://repro.example.org/watdiv#>
SELECT ?u ?ret WHERE {
  ?u wd:purchased ?prod .
  ?ret wd:offers ?prod .
}
"""


def run(engine, query_text):
    before = engine.ctx.metrics.snapshot()
    result = engine.execute(query_text)
    cost = engine.ctx.metrics.snapshot() - before
    return len(result), cost


def main() -> None:
    graph = WatdivGenerator(num_users=60, num_products=30, seed=7).generate()
    print("Shop graph: %d triples" % len(graph))

    workload = QueryWorkload()
    workload.add("friend-purchases", parse_sparql(HOT_QUERY), frequency=50.0)
    workload.add("retailer-overlap", parse_sparql(COLD_QUERY), frequency=1.0)

    plain = HaqwaEngine(SparkContext(4))
    plain.load(graph)
    aware = HaqwaEngine(SparkContext(4), workload=workload)
    aware.load(graph)
    print(
        "Workload-aware allocation replicated %d triples "
        "(%.1f%% of the dataset).\n"
        % (aware.replicated_triples, 100.0 * aware.replicated_triples / len(graph))
    )

    rows = []
    for name, query in (("hot", HOT_QUERY), ("cold", COLD_QUERY)):
        for label, engine in (("hash only", plain), ("hash+workload", aware)):
            answers, cost = run(engine, query)
            rows.append(
                [
                    name,
                    label,
                    answers,
                    cost.shuffle_records,
                    cost.shuffle_remote_records,
                ]
            )
    print(
        format_table(
            ["query", "allocation", "rows", "shuffled", "remote"], rows
        )
    )
    print(
        "\nThe hot query runs entirely partition-locally under the "
        "workload-aware scheme;\nthe cold query is unaffected (object-"
        "object joins are outside the replication rule)."
    )


if __name__ == "__main__":
    main()
