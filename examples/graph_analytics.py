"""Graph analytics over RDF with the GraphX and GraphFrames layers.

Section III notes that GraphX "comes with well known graph processing
algorithms, like pagerank, triangle counting and shortest paths" and that
GraphFrames additionally "supports queries over graphs".  This example
runs those algorithms over the social part of a WatDiv-like graph and
finds motifs with the GraphFrames API directly.

Run with:  python examples/graph_analytics.py
"""

from repro.data.watdiv import WATDIV, WatdivGenerator
from repro.spark import SparkContext, SparkSession
from repro.spark.column import col, lit
from repro.spark.graphframes import GraphFrame
from repro.spark.graphx import (
    Edge,
    Graph,
    connected_components,
    pagerank,
    shortest_paths,
    triangle_count,
)


def main() -> None:
    graph = WatdivGenerator(num_users=40, num_products=20, seed=7).generate()
    sc = SparkContext(4)

    # --- GraphX: the friendship subgraph ------------------------------
    friends = [
        (t.subject, t.object, "friendOf")
        for t in graph.triples((None, WATDIV.friendOf, None))
    ]
    social = Graph.from_edge_tuples(sc, friends)
    print(
        "Friendship graph: %d users, %d edges"
        % (social.num_vertices(), social.num_edges())
    )

    ranks = pagerank(social, num_iterations=15)
    top = sorted(ranks.items(), key=lambda kv: kv[1], reverse=True)[:5]
    print("\nMost influential users (PageRank):")
    for user, rank in top:
        print("  %-8s %.3f" % (user.local_name(), rank))

    components = connected_components(social)
    print(
        "\nConnected components: %d"
        % len(set(components.values()))
    )

    triangles = triangle_count(social)
    print("Triangles through the busiest user: %d" % max(triangles.values()))

    landmark = top[0][0]
    distances = shortest_paths(social, [landmark])
    reachable = [d[landmark] for d in distances.values() if landmark in d]
    print(
        "Users within reach of %s: %d (max %d hops)"
        % (landmark.local_name(), len(reachable), max(reachable))
    )

    # --- GraphFrames: motif queries over the whole RDF graph ----------
    session = SparkSession(sc)
    nodes = sorted(graph.subjects() | graph.objects(), key=lambda t: t.sort_key())
    vertices = session.createDataFrame([(n,) for n in nodes], ["id"])
    edges = session.createDataFrame(
        [(t.subject, t.object, t.predicate) for t in graph],
        ["src", "dst", "label"],
    )
    gframe = GraphFrame(vertices, edges)

    # "Users whose friends purchased something they also purchased."
    motif = gframe.find(
        "(u)-[f]->(v); (v)-[p1]->(prod); (u)-[p2]->(prod)"
    ).where(
        (col("f.label") == lit(WATDIV.friendOf))
        & (col("p1.label") == lit(WATDIV.purchased))
        & (col("p2.label") == lit(WATDIV.purchased))
    )
    pairs = {
        (row["u.id"].local_name(), row["prod.id"].local_name())
        for row in motif.collect()
    }
    print("\nFriends sharing a purchase (motif query): %d pairs" % len(pairs))
    for user, product in sorted(pairs)[:5]:
        print("  %s and a friend both bought %s" % (user, product))


if __name__ == "__main__":
    main()
