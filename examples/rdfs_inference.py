"""RDFS inference feeding distributed query answering.

Section II-A: "RDF Schema is a vocabulary description language that
includes a set of inference rules used to generate new, implicit triples
from explicit ones."  This example materializes the RDFS closure of a
LUBM-like graph with its TBox and shows queries that only have answers
over the entailed data -- evaluated distributedly by S2RDF.

Run with:  python examples/rdfs_inference.py
"""

from repro.data.lubm import LubmGenerator
from repro.rdf.rdfs import RDFSReasoner
from repro.spark import SparkContext
from repro.systems import S2RdfEngine

SUPER_CLASS_QUERY = """
PREFIX lubm: <http://repro.example.org/lubm#>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?p WHERE { ?p rdf:type lubm:Person }
"""

DOMAIN_QUERY = """
PREFIX lubm: <http://repro.example.org/lubm#>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?f ?d WHERE {
  ?f rdf:type lubm:Faculty .
  ?f lubm:worksFor ?d .
}
"""


def count_answers(graph, query):
    engine = S2RdfEngine(SparkContext(4))
    engine.load(graph)
    return len(engine.execute(query))


def main() -> None:
    generator = LubmGenerator(num_universities=1, seed=42)
    explicit = generator.generate(include_tbox=True)
    print("Explicit graph (with TBox): %d triples" % len(explicit))

    reasoner = RDFSReasoner()
    closure = reasoner.materialize(explicit)
    derived = len(closure) - len(explicit)
    print(
        "RDFS closure: %d triples (%d derived by rules %s)"
        % (len(closure), derived, ", ".join(sorted(reasoner.enabled)))
    )

    for name, query in (
        ("instances of the Person superclass", SUPER_CLASS_QUERY),
        ("Faculty members with their departments", DOMAIN_QUERY),
    ):
        before = count_answers(explicit, query)
        after = count_answers(closure, query)
        print(
            "\n%s:\n  explicit data: %4d answers\n  after inference: %2d answers"
            % (name, before, after)
        )

    print(
        "\nNo one is explicitly typed Person or Faculty -- every answer "
        "above exists\nonly because rdfs9 (subclass) and rdfs2 (domain) "
        "derived the implicit types."
    )


if __name__ == "__main__":
    main()
