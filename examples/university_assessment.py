"""The survey's assessment, end to end: all nine systems on one workload.

Generates a LUBM-like university graph, runs the four query shapes of
Section II-B on every surveyed engine (plus the naive baseline), verifies
every answer against the reference evaluator, and prints the cost matrix
the paper's Section IV discusses system by system.

Run with:  python examples/university_assessment.py
"""

from repro.bench import BenchRun, format_table
from repro.data.lubm import LubmGenerator
from repro.systems import ALL_ENGINE_CLASSES, NaiveEngine


def main() -> None:
    graph = LubmGenerator(num_universities=1, seed=42).generate()
    print("University graph: %d triples" % len(graph))

    queries = {
        "star": LubmGenerator.query_star(),
        "linear": LubmGenerator.query_linear(),
        "snowflake": LubmGenerator.query_snowflake(),
        "complex": LubmGenerator.query_complex(),
    }

    bench = BenchRun(graph)
    results = bench.run((NaiveEngine,) + ALL_ENGINE_CLASSES, queries)

    rows = []
    for result in results:
        summary = result.cost_summary()
        rows.append(
            [
                result.engine,
                result.query,
                result.rows,
                "ok" if result.correct else "WRONG",
                summary["records_scanned"],
                summary["shuffle_records"],
                summary["shuffle_remote"],
                summary["broadcast_bytes"],
            ]
        )
    print(
        format_table(
            [
                "engine",
                "query",
                "rows",
                "answers",
                "scanned",
                "shuffled",
                "remote",
                "broadcast B",
            ],
            rows,
        )
    )

    wrong = bench.incorrect()
    if wrong:
        raise SystemExit(
            "engines disagreed with the reference: %r"
            % [(r.engine, r.query) for r in wrong]
        )
    print("\nAll engines agree with the reference evaluator.")

    print("\nReading the matrix against the survey's observations:")
    print(
        " * subject-hash systems (HAQWA, [21], SparkRDF) answer the star\n"
        "   query with zero remote shuffle records;"
    )
    print(
        " * vertically partitioned systems (SPARQLGX, S2RDF) scan far\n"
        "   fewer records than the naive full scanner;"
    )
    print(
        " * graph-model systems pay iteration overhead but stay correct\n"
        "   across all shapes."
    )


if __name__ == "__main__":
    main()
