"""Clean exemplar: broadcast used read-only, exceptions pickle-safe.

The lookup table is broadcast once and only ever *read* in worker
closures; the worker-side failure type keeps the default single-arg
``ValueError`` constructor so it survives the worker pipe.
"""

from repro.spark.context import SparkContext

sc = SparkContext(4)
rdd = sc.parallelize([("a", 1), ("b", 2), ("d", 4)])

lookup = sc.broadcast({"a": 10, "b": 20, "c": 30})


class UnknownKeyError(ValueError):
    pass


def enrich(pair):
    key, value = pair
    if key not in lookup.value:
        raise UnknownKeyError(key)
    return key, value * lookup.value[key]


joined = rdd.filter(lambda kv: kv[0] in lookup.value).map(enrich).collect()
print(sorted(joined))
