"""Clean exemplar: the sanctioned default-argument rebinding idiom.

Each lambda freezes the loop variable's *current* value in a default
expression, which evaluates at definition time on the driver -- the
pattern the engines in :mod:`repro.systems` use for per-predicate
filters.
"""

from repro.spark.context import SparkContext

sc = SparkContext(4)
rdd = sc.parallelize(["a", "b", "c", "a"])

filtered = []
for letter in ("a", "b", "c"):
    filtered.append(rdd.filter(lambda x, letter=letter: x == letter))

counts = [f.count() for f in filtered]
print(counts)
