"""Clean exemplar: the canonical wordcount, written to the contract.

Counting happens through the shuffle (``reduceByKey``), not through
captured driver state; the accumulator is only ever ``add``-ed on
workers and only ``.value``-read on the driver after the action.
"""

from repro.spark.context import SparkContext

sc = SparkContext(4)
lines = sc.parallelize(["a b", "b c", "a a"])

malformed = sc.accumulator(0)


def tokens(line):
    out = []
    for token in line.split():
        if token:
            out.append(token)
        else:
            malformed.add(1)
    return out


counts = (
    lines.flatMap(tokens)
    .map(lambda w: (w, 1))
    .reduceByKey(lambda a, b: a + b)
    .collect()
)
print(sorted(counts), "malformed:", malformed.value)
