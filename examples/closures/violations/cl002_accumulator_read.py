"""CL002: an accumulator's ``.value`` is read inside a transformation.

Accumulators are write-only on workers: ``.value`` is only defined on
the driver after the job completes.  Reading it mid-transformation
observes a partial, partition-order-dependent count.
"""

from repro.spark.context import SparkContext

sc = SparkContext(4)
rdd = sc.parallelize(range(100))

processed = sc.accumulator(0)

out = rdd.map(lambda x: x + processed.value).collect()
