"""CL000: a worker closure captures the driver-side SparkContext.

The context owns the virtual cluster; shipping it through the worker
pipe either fails to pickle or, worse, gives every worker its own
divergent copy of the scheduler state.
"""

from repro.spark.context import SparkContext

sc = SparkContext(4)
rdd = sc.parallelize(range(100))

# The lambda reaches back into the driver to launch a nested job.
nested = rdd.map(lambda x: sc.parallelize([x]).count()).collect()
