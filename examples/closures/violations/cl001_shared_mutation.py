"""CL001: worker code mutates driver-side mutable state.

Each worker process mutates its *own copy* of the captured container;
the driver's original never changes, so the job silently computes
nothing (the in-process oracle, meanwhile, would see every write --
the two backends diverge).
"""

from repro.spark.context import SparkContext

sc = SparkContext(4)
rdd = sc.parallelize(range(100))

seen = {}


def mark(x):
    seen[x] = True  # lost on a real cluster: the write stays in the worker


rdd.foreach(mark)

counts = []
rdd.map(lambda x: counts.append(x)).collect()
