"""CL003: a broadcast value is mutated after capture.

Broadcasts ship one immutable snapshot to every executor; mutating
``.value`` afterwards changes the driver's copy only, so workers that
already received the snapshot disagree with workers that have not.
"""

from repro.spark.context import SparkContext

sc = SparkContext(4)
rdd = sc.parallelize(range(100))

lookup = sc.broadcast({"a": 1})

hits = rdd.filter(lambda x: str(x) in lookup.value).count()

lookup.value["b"] = 2  # mutates the driver snapshot only
lookup.value.update({"c": 3})
