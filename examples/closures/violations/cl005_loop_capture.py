"""CL005: a closure captures the loop variable by reference.

Python closures bind *names*, not values: every lambda built in the
loop sees the loop variable's final value by the time a lazy RDD
actually evaluates, so all three filters test for ``"c"``.
"""

from repro.spark.context import SparkContext

sc = SparkContext(4)
rdd = sc.parallelize(["a", "b", "c", "a"])

filtered = []
for letter in ("a", "b", "c"):
    filtered.append(rdd.filter(lambda x: x == letter))

counts = [f.count() for f in filtered]
