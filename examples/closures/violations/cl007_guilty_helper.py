"""CL007: a worker closure calls a helper that itself violates the
contract.

The lambda looks innocent; the violation lives one call away in
``weight``, which reads an accumulator mid-flight.  The analyzer
follows one level of module-local calls so the laundering does not
hide the bug.
"""

from repro.spark.context import SparkContext

sc = SparkContext(4)
rdd = sc.parallelize(range(100))

progress = sc.accumulator(0)


def weight(x):
    return x * (1 + progress.value)  # accumulator read in worker code


out = rdd.map(lambda x: weight(x)).collect()
