"""CL004: a multi-argument exception type crosses the worker pipe.

Worker failures are pickled back to the driver.  Exception classes
whose ``__init__`` takes extra required arguments round-trip through
``pickle`` as ``TypeError: __init__() missing ... arguments`` unless
they define ``__reduce__`` (or another pickle hook) -- the original
error is swallowed and the driver sees a confusing secondary failure.
"""

from repro.spark.context import SparkContext

sc = SparkContext(4)
rdd = sc.parallelize(range(100))


class MalformedRecordError(ValueError):
    def __init__(self, record, reason):
        super().__init__("%r: %s" % (record, reason))
        self.record = record
        self.reason = reason


def parse(x):
    if x % 7 == 0:
        raise MalformedRecordError(x, "divisible by seven")
    return x


out = rdd.map(parse).collect()
