"""CL006: worker code writes a global.

The ``global`` write lands in each worker process's module namespace,
not the driver's; the counter stays zero on the driver while the job
"works".  Use an accumulator for worker-side counting.
"""

from repro.spark.context import SparkContext

sc = SparkContext(4)
rdd = sc.parallelize(range(100))

TOTAL = 0


def bump(x):
    global TOTAL
    TOTAL += x


rdd.foreach(bump)
